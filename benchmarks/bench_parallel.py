"""The parallel executor's three contract benchmarks.

1. **Equality** — the Fig. 11 sweep produced by a 4-worker executor is
   byte-identical (as versioned JSON) to the serial one, and a cached
   rerun is byte-identical again.  Runs everywhere.
2. **Resume equality** — the same sweep interrupted mid-flight
   (SIGINT) and resumed from its write-ahead journal is byte-identical
   to an uninterrupted run.  Runs everywhere.
3. **Speedup** — on a machine with ≥ 4 cores, the 4-worker sweep is at
   least 2.5× faster than the serial sweep.  Skipped on smaller boxes
   (CI containers often expose 1–2 cores), where the equality halves
   still guard the semantics.
"""

import os
import signal
import time

import pytest

from benchmarks.conftest import save_report
from repro.errors import InterruptedSweepError
from repro.harness import experiments
from repro.parallel import Executor, ResultCache

ROUNDS = 200
JOBS = 4
MIN_SPEEDUP = 2.5


def _fig11(executor=None):
    return experiments.fig11(rounds=ROUNDS, executor=executor)


def test_parallel_sweep_identical_to_serial(benchmark, tmp_path):
    serial = _fig11()
    parallel = benchmark.pedantic(
        _fig11, kwargs={"executor": Executor(jobs=JOBS)}, rounds=1, iterations=1
    )
    assert parallel.to_json() == serial.to_json()

    cache = ResultCache(tmp_path / "cache")
    warm = _fig11(executor=Executor(jobs=1, cache=cache))
    cached = _fig11(executor=Executor(jobs=1, cache=cache))
    assert cache.hits == cache.misses  # second pass fully served from disk
    assert warm.to_json() == serial.to_json()
    assert cached.to_json() == serial.to_json()

    save_report(
        "parallel_equality",
        f"fig11 x {JOBS} workers: JSON byte-identical to serial "
        f"({len(serial.to_json())} bytes); cached rerun identical "
        f"({cache.hits} hits / {cache.hits + cache.misses} lookups)",
    )


def test_interrupted_sweep_resumes_identical(benchmark, tmp_path):
    serial = _fig11()

    def tripwire(done, total, cached):
        if done == total // 2:
            signal.raise_signal(signal.SIGINT)

    tripped = Executor(journal_dir=tmp_path, progress=tripwire)
    with pytest.raises(InterruptedSweepError) as info:
        _fig11(executor=tripped)
    run_id = info.value.run_id
    assert info.value.done < info.value.total

    def resume():
        return experiments.fig11(
            rounds=ROUNDS,
            executor=Executor(journal_dir=tmp_path),
            resume=run_id,
        )

    resumed = benchmark.pedantic(resume, rounds=1, iterations=1)
    assert resumed.to_json() == serial.to_json()
    assert resumed.resumed_from == run_id

    save_report(
        "parallel_resume_equality",
        f"fig11 interrupted at {info.value.done}/{info.value.total} cells, "
        f"resumed from journal {run_id}: JSON byte-identical to the "
        f"uninterrupted sweep ({len(serial.to_json())} bytes)",
    )


def test_parallel_sweep_speedup(benchmark):
    cores = os.cpu_count() or 1
    if cores < JOBS:
        pytest.skip(
            f"speedup bench needs >= {JOBS} cores, machine has {cores}"
        )

    t0 = time.perf_counter()
    serial = _fig11()
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        _fig11, kwargs={"executor": Executor(jobs=JOBS)}, rounds=1, iterations=1
    )
    parallel_s = time.perf_counter() - t0

    assert parallel.to_json() == serial.to_json()
    speedup = serial_s / parallel_s
    save_report(
        "parallel_speedup",
        f"fig11: serial {serial_s:.2f}s, {JOBS} workers {parallel_s:.2f}s "
        f"-> {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{JOBS}-worker fig11 sweep only {speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)"
    )
