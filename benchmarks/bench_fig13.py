"""Fig. 13 (a,b,c) — kernel execution time vs number of blocks.

FFT / SWat / bitonic under CPU implicit and the four GPU barriers.
Paper shapes: time falls as blocks increase; lock-free is always best;
GPU simple loses its lead past its crossover with the 2-level tree.
"""

import pytest

from benchmarks.conftest import save_report, shared_algorithm_sweep
from repro.harness import report


def _check_shape(sweep) -> None:
    last = len(sweep.blocks) - 1
    # More blocks → faster kernels (paper §7.2 point 1).
    for strat in ("cpu-implicit", "gpu-lockfree", "gpu-tree-2"):
        assert sweep.totals[strat][0] > sweep.totals[strat][last], strat
    # Lock-free is the best strategy at every block count (point 3).
    for i in range(len(sweep.blocks)):
        best = min(series[i] for series in sweep.totals.values())
        assert sweep.totals["gpu-lockfree"][i] == best
    # 2-level tree is never worse than 3-level in range (point 2).
    for i in range(len(sweep.blocks)):
        assert sweep.totals["gpu-tree-2"][i] <= sweep.totals["gpu-tree-3"][i]


@pytest.mark.parametrize("algorithm", ["fft", "swat", "bitonic"])
def test_fig13(benchmark, algorithm):
    sweep = benchmark.pedantic(
        shared_algorithm_sweep, args=(algorithm,), rounds=1, iterations=1
    )
    _check_shape(sweep)
    save_report(
        f"fig13_{algorithm}",
        report.render_sweep_totals(sweep, f"Fig. 13 ({algorithm})"),
    )
