"""Fig. 14 (a,b,c) — synchronization time vs number of blocks.

In the paper this is the same measurement as Fig. 13 re-plotted with the
compute-only run subtracted (§7.3); the sweep is therefore shared with
``bench_fig13.py`` (an lru-cached session fixture) and this bench times
the subtraction + rendering on top of it.  Run it standalone and the
sweep cost is paid here instead.

Paper shapes: lock-free lowest and flat; simple/tree grow with N;
3-level tree dearest of the tree variants; CPU implicit flat and highest
of the scalable strategies.
"""

import pytest

from benchmarks.conftest import save_report, shared_algorithm_sweep
from repro.harness import report


def _check_shape(sweep) -> None:
    b = sweep.blocks
    sync = {s: sweep.sync_series(s) for s in sweep.totals}
    # Lock-free: flat and lowest everywhere.
    lockfree = sync["gpu-lockfree"]
    assert max(lockfree) - min(lockfree) <= 0.02 * max(lockfree)
    for i in range(len(b)):
        assert lockfree[i] == min(s[i] for s in sync.values())
    # CPU implicit: flat (scalable) and above both trees everywhere.
    implicit = sync["cpu-implicit"]
    assert max(implicit) - min(implicit) <= 0.05 * max(implicit)
    for i in range(len(b)):
        assert implicit[i] > sync["gpu-tree-2"][i]
        assert implicit[i] > sync["gpu-tree-3"][i]
    # Simple and the trees grow with the block count.
    for strat in ("gpu-simple", "gpu-tree-2"):
        assert sync[strat][-1] > sync[strat][0], strat
    # 3-level tree needs the most time among the tree variants.
    for i in range(len(b)):
        assert sync["gpu-tree-3"][i] >= sync["gpu-tree-2"][i]


@pytest.mark.parametrize("algorithm", ["fft", "swat", "bitonic"])
def test_fig14(benchmark, algorithm):
    def derive():
        sweep = shared_algorithm_sweep(algorithm)
        return sweep, report.render_sweep_sync(sweep, f"Fig. 14 ({algorithm})")

    sweep, rendered = benchmark.pedantic(derive, rounds=1, iterations=1)
    _check_shape(sweep)
    save_report(f"fig14_{algorithm}", rendered)
