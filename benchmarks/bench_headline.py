"""The abstract's headline numbers.

* micro-benchmark: lock-free 7.8× faster than CPU explicit, 3.7× faster
  than CPU implicit (synchronization time);
* kernel-time improvement over CPU implicit: FFT 8 %, SWat 24 %,
  bitonic 39 %.

Our improvements run higher (≈13 %/37 %/43 %) because the simulator's
lock-free barrier does not pay the memory-interference tax real hardware
adds when barrier polling competes with algorithm traffic; the ordering
FFT < SWat < bitonic — the claim the paper builds on Eq. 2 — holds.
See EXPERIMENTS.md.
"""

from benchmarks.conftest import save_report
from repro.harness import experiments, report


def _check_shape(numbers) -> None:
    assert 7.0 < numbers["micro_lockfree_vs_explicit"] < 8.6
    assert 3.3 < numbers["micro_lockfree_vs_implicit"] < 4.1
    fft = numbers["fft_improvement_pct"]
    swat = numbers["swat_improvement_pct"]
    bitonic = numbers["bitonic_improvement_pct"]
    assert fft < swat < bitonic  # the ρ-driven ordering (Eq. 2)
    assert 5 < fft < 20
    assert 20 < swat < 45
    assert 30 < bitonic < 50


def test_headline(benchmark):
    numbers = benchmark.pedantic(experiments.headline, rounds=1, iterations=1)
    _check_shape(numbers)
    save_report("headline", report.render_headline(numbers))
