"""Figs. 7/10 — barrier time composition, measured from spans.

The paper presents these as conceptual diagrams: GPU simple sync =
serialized atomic adds + mutex checking (Fig. 7); lock-free sync = five
non-atomic phases (Fig. 10).  The simulator records a span per
primitive, so the decomposition is measured and its structure asserted:

* simple sync's time is dominated by atomics (absent entirely from
  lock-free) and its per-block atomic average is ~(N+1)/2·t_a;
* lock-free's composition is flat, small, and atomic-free;
* the tree sits between, with most atomic time removed.
"""

from benchmarks.conftest import save_report
from repro.harness.tracestats import composition_study, render_composition
from repro.model.calibration import default_timings

BLOCKS = 30
ROUNDS = 20


def test_composition(benchmark):
    study = benchmark.pedantic(
        composition_study,
        kwargs={"num_blocks": BLOCKS, "rounds": ROUNDS},
        rounds=1,
        iterations=1,
    )
    t = default_timings()
    simple, tree, lockfree = (
        study["gpu-simple"],
        study["gpu-tree-2"],
        study["gpu-lockfree"],
    )
    # Fig. 7 structure: atomics dominate GPU simple sync.
    assert simple["atomic"] > simple["spin"] * 0.9
    assert abs(simple["atomic"] - (BLOCKS + 1) / 2 * t.atomic_ns) < 0.05 * simple["atomic"]
    # Fig. 10 structure: lock-free uses no atomics at all.
    assert lockfree["atomic"] == 0.0
    assert lockfree["total-sync"] < tree["total-sync"] < simple["total-sync"]
    # The tree removes most of the atomic serialization.
    assert tree["atomic"] < 0.3 * simple["atomic"]
    save_report("composition", render_composition(study))
