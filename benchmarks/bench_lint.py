"""Linter wall-time: the full-tree `repro lint` pass must stay cheap.

The static linter's value proposition is "runs on every commit": pure
AST work, no simulation, no imports of the linted code.  That only
holds if a full pass over the shipped tree (all of ``src/repro`` plus
``examples`` — every kernel unit and strategy class, CFGs included)
finishes in interactive time.  This bench measures it and pins the
budget at 2 seconds; the per-file cost is written to
``benchmarks/out/lint_walltime.txt``.

The repair engine rides on the same budget: ``repro lint --fix
--check`` is the CI gate, and a dry-run ``fix_paths`` pass over the
whole tree (lint + fixed-point repair + verification re-lint per file)
must also finish under the same 2 seconds, or the gate stops being
free to run on every commit.
"""

from pathlib import Path
from time import perf_counter

from benchmarks.conftest import save_report
from repro.harness.report import format_table
from repro.staticcheck import lint_paths
from repro.staticcheck.repair import fix_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_ROOTS = [REPO_ROOT / "src" / "repro", REPO_ROOT / "examples"]

#: hard wall-clock budget for one full-tree pass (seconds).
BUDGET_S = 2.0


def test_lint_walltime(benchmark):
    def measure():
        t0 = perf_counter()
        report = lint_paths(LINT_ROOTS)
        return perf_counter() - t0, report

    elapsed_s, report = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The tree must actually be the shipped one: non-trivial, clean,
    # with exactly the deliberate sites suppressed (see
    # tests/staticcheck/test_crossval.py, which pins the count).
    n_files = len(report.files)
    assert n_files >= 50, f"only {n_files} files linted — wrong roots?"
    assert report.units_checked >= 10
    assert report.clean, report.render()

    table = format_table(
        ["quantity", "value"],
        [
            ["files linted", str(n_files)],
            ["kernel units", str(report.units_checked)],
            ["suppressed findings", str(report.suppressed)],
            ["wall time (s)", f"{elapsed_s:.3f}"],
            ["per file (ms)", f"{1e3 * elapsed_s / n_files:.2f}"],
            ["budget (s)", f"{BUDGET_S:.1f}"],
        ],
        title="Static linter wall-time — full src/repro + examples tree",
    )
    save_report("lint_walltime", table)

    assert elapsed_s < BUDGET_S, (
        f"full-tree lint took {elapsed_s:.2f}s, budget {BUDGET_S:.1f}s"
    )


def test_fix_walltime(benchmark):
    """The full-tree repair dry-run (the `--fix --check` CI gate)."""

    def measure():
        t0 = perf_counter()
        results = fix_paths(LINT_ROOTS)
        return perf_counter() - t0, results

    elapsed_s, results = benchmark.pedantic(measure, rounds=1, iterations=1)

    n_files = len(results)
    assert n_files >= 50, f"only {n_files} files checked — wrong roots?"
    # The shipped tree is fix-clean: a dry-run pass applies nothing.
    changed = [r for r in results if r.changed]
    assert not changed, [r.path for r in changed]

    table = format_table(
        ["quantity", "value"],
        [
            ["files checked", str(n_files)],
            ["files needing repair", str(len(changed))],
            ["wall time (s)", f"{elapsed_s:.3f}"],
            ["per file (ms)", f"{1e3 * elapsed_s / n_files:.2f}"],
            ["budget (s)", f"{BUDGET_S:.1f}"],
        ],
        title="Repair engine wall-time — full-tree `lint --fix --check` dry-run",
    )
    save_report("fix_walltime", table)

    assert elapsed_s < BUDGET_S, (
        f"full-tree fix pass took {elapsed_s:.2f}s, budget {BUDGET_S:.1f}s"
    )
