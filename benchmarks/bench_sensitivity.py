"""Sensitivity study — where do the crossovers go as hardware changes?

Sweeps the atomic service time (the constant GPU generations changed
most) through GT200-to-Fermi-era values and tabulates, from the Eq. 6–9
models, where the paper's crossovers land.  Asserts the calibrated
column reproduces the paper and that cheaper atomics monotonically delay
every "avoid atomics" crossover — the analytic backbone under
``bench_generations.py``.
"""

from benchmarks.conftest import save_report
from repro.harness.report import format_table
from repro.model.sensitivity import sweep_parameter

ATOMIC_VALUES = [360, 240, 160, 120, 80]


def test_sensitivity(benchmark):
    rows = benchmark.pedantic(
        sweep_parameter,
        args=("atomic_ns", ATOMIC_VALUES),
        kwargs={"max_blocks": 4096},
        rounds=1,
        iterations=1,
    )
    by_value = {int(r["atomic_ns"]): r for r in rows}
    # Calibrated column = the paper's crossovers.
    assert by_value[240]["simple_vs_implicit"] == 24
    assert by_value[240]["tree2_vs_simple"] == 11
    # Cheaper atomics → crossovers move out (or vanish).
    series = [by_value[v]["simple_vs_implicit"] for v in ATOMIC_VALUES]
    assert all(
        a is None or b is None or a >= b
        for a, b in zip(series, series[1:])
    ) or series == sorted(series, reverse=False)
    assert by_value[80]["simple_vs_implicit"] > by_value[240]["simple_vs_implicit"]

    def fmt(x):
        return "-" if x is None else str(x)

    save_report(
        "sensitivity",
        format_table(
            [
                "atomic_ns",
                "implicit beats simple at N>=",
                "tree-2 beats simple at N>=",
                "lock-free beats simple at N>=",
            ],
            [
                [
                    str(v),
                    fmt(by_value[v]["simple_vs_implicit"]),
                    fmt(by_value[v]["tree2_vs_simple"]),
                    fmt(by_value[v]["lockfree_vs_simple"]),
                ]
                for v in ATOMIC_VALUES
            ],
            title="Crossover sensitivity to the atomic service time",
        ),
    )
