"""Ablations of the design choices DESIGN.md §5 calls out.

1. **Per-cell vs device-wide atomic units** — the tree barrier's whole
   advantage is concurrent group atomics; a single device-wide atomic
   unit (ablation) erases it.
2. **Accumulating goalVal vs mutex reset** (paper §5.1) — the reset
   variant pays an extra store + spin phase per round.
3. **Parallel vs serial Arrayin gather** (paper §5.3) — the serial scan
   grows linearly in N and loses the lock-free barrier's flat profile.
"""

from benchmarks.conftest import save_report
from repro.algorithms import MeanMicrobench
from repro.gpu.presets import get_preset
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.harness import run
from repro.harness.report import format_table
from repro.sync import get_strategy

ROUNDS = 100
BLOCKS = 30


def _micro():
    return MeanMicrobench(rounds=ROUNDS, num_blocks_hint=BLOCKS)


def _run_with_device_wide_atomics(strategy_name: str, num_blocks: int) -> int:
    """Like harness.run for a device strategy, but on a device whose
    atomics all serialize through one unit."""
    micro = _micro()
    micro.reset()
    device = Device(get_preset("gtx280"), device_wide_atomics=True)
    host = Host(device)
    strategy = get_strategy(strategy_name)
    strategy.prepare(device, num_blocks)

    def program(ctx):
        for r in range(micro.num_rounds()):
            yield from ctx.compute(
                micro.round_cost(r, ctx.block_id, num_blocks),
                micro.round_work(r, ctx.block_id, num_blocks),
            )
            yield from strategy.barrier(ctx, r)

    spec = KernelSpec(
        name=f"ablate:{strategy_name}",
        program=program,
        grid_blocks=num_blocks,
        block_threads=micro.threads_per_block,
        shared_mem_per_block=strategy.shared_mem_request(device.config),
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    return device.run()


def test_ablation_atomic_unit_granularity(benchmark):
    """Device-wide atomics collapse the tree barrier back to simple-like
    serialization: 2-level tree stops beating GPU simple."""

    def measure():
        per_cell_tree = run(_micro(), "gpu-tree-2", BLOCKS).total_ns
        per_cell_simple = run(_micro(), "gpu-simple", BLOCKS).total_ns
        wide_tree = _run_with_device_wide_atomics("gpu-tree-2", BLOCKS)
        wide_simple = _run_with_device_wide_atomics("gpu-simple", BLOCKS)
        return per_cell_tree, per_cell_simple, wide_tree, wide_simple

    per_cell_tree, per_cell_simple, wide_tree, wide_simple = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert per_cell_tree < per_cell_simple  # the paper's result
    assert wide_tree >= wide_simple  # collapses without parallel atomics
    save_report(
        "ablation_atomics",
        format_table(
            ["configuration", "tree-2 (ms)", "simple (ms)"],
            [
                ["per-cell atomic units (hardware-like)",
                 f"{per_cell_tree/1e6:.3f}", f"{per_cell_simple/1e6:.3f}"],
                ["one device-wide atomic unit (ablation)",
                 f"{wide_tree/1e6:.3f}", f"{wide_simple/1e6:.3f}"],
            ],
            title="Ablation 1 — atomic-unit granularity",
        ),
    )


def test_ablation_goalval_accumulation(benchmark):
    """Paper §5.1: accumulating goalVal beats resetting the mutex."""

    def measure():
        accumulate = run(_micro(), "gpu-simple", BLOCKS).total_ns
        reset = run(_micro(), "gpu-simple-reset", BLOCKS).total_ns
        return accumulate, reset

    accumulate, reset = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert accumulate < reset
    save_report(
        "ablation_goalval",
        format_table(
            ["variant", "total (ms)", "per-round overhead vs accumulate (µs)"],
            [
                ["accumulating goalVal (paper)", f"{accumulate/1e6:.3f}", "0.00"],
                ["reset per round (rejected)", f"{reset/1e6:.3f}",
                 f"{(reset-accumulate)/ROUNDS/1e3:.2f}"],
            ],
            title="Ablation 2 — goalVal accumulation (paper §5.1)",
        ),
    )


def test_ablation_parallel_gather(benchmark):
    """Paper §5.3: N checker threads in parallel vs one serial scanner."""

    def measure():
        rows = []
        for n in (8, 16, 30):
            parallel = run(_micro(), "gpu-lockfree", n).total_ns
            serial = run(_micro(), "gpu-lockfree-serial", n).total_ns
            rows.append((n, parallel, serial))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Serial gather grows with N; parallel stays flat and always wins.
    serial_costs = [serial for _n, _p, serial in rows]
    assert serial_costs == sorted(serial_costs)
    for _n, parallel, serial in rows:
        assert parallel < serial
    parallel_costs = {p for _n, p, _s in rows}
    assert len(parallel_costs) == 1
    save_report(
        "ablation_gather",
        format_table(
            ["blocks", "parallel gather (ms)", "serial gather (ms)"],
            [[str(n), f"{p/1e6:.3f}", f"{s/1e6:.3f}"] for n, p, s in rows],
            title="Ablation 3 — Arrayin gather strategy (paper §5.3)",
        ),
    )
