"""Extension study — the two classic barriers and the scan workload.

Beyond the paper: how do a centralized sense-reversing barrier and a
dissemination barrier (the shapes the later grid-sync literature
explored) stack up against the paper's three proposals on this device
model, and does the ranking carry to a fourth workload (prefix scan)?

Expected shape: lock-free < dissemination < tree-2 < sense-reversal ≈
simple-plus-two-stores at 30 blocks; dissemination's O(log N) depth
makes it the best *decentralized* barrier.
"""

from benchmarks.conftest import save_report
from repro.algorithms import MeanMicrobench, PrefixSum
from repro.harness import run
from repro.harness.phases import compute_only, sync_time_ns
from repro.harness.report import format_table

ROUNDS = 100
BLOCKS = 30

DEVICE_BARRIERS = [
    "gpu-simple",
    "gpu-sense-reversal",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-dissemination",
    "gpu-lockfree",
]


def test_extension_barriers_micro(benchmark):
    """Per-round barrier cost of all six device barriers at 30 blocks."""

    def measure():
        micro = MeanMicrobench(rounds=ROUNDS, num_blocks_hint=BLOCKS)
        null = compute_only(micro, BLOCKS)
        costs = {}
        for strat in DEVICE_BARRIERS:
            result = run(micro, strat, BLOCKS)
            assert result.verified
            costs[strat] = sync_time_ns(result, null) / ROUNDS
        return costs

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The expected ranking at 30 blocks.
    assert costs["gpu-lockfree"] < costs["gpu-dissemination"]
    assert costs["gpu-dissemination"] < costs["gpu-tree-2"]
    assert costs["gpu-tree-2"] < costs["gpu-simple"]
    assert costs["gpu-simple"] < costs["gpu-sense-reversal"]
    save_report(
        "extensions_micro",
        format_table(
            ["barrier", "per-round cost (µs)"],
            [
                [name, f"{cost/1e3:.2f}"]
                for name, cost in sorted(costs.items(), key=lambda kv: kv[1])
            ],
            title=f"Extension barriers — micro, {BLOCKS} blocks",
        ),
    )


def test_extension_workload_scan(benchmark):
    """Prefix scan end-to-end under the main strategy families."""

    def measure():
        scan = PrefixSum(n=2**14)
        totals = {}
        for strat in ("cpu-implicit", "gpu-tree-2", "gpu-dissemination",
                      "gpu-lockfree"):
            result = run(scan, strat, BLOCKS)
            assert result.verified
            totals[strat] = result.total_ns
        return totals

    totals = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert totals["gpu-lockfree"] < totals["gpu-dissemination"]
    assert totals["gpu-dissemination"] < totals["cpu-implicit"]
    save_report(
        "extensions_scan",
        format_table(
            ["strategy", "scan time (ms)"],
            [
                [name, f"{ns/1e6:.3f}"]
                for name, ns in sorted(totals.items(), key=lambda kv: kv[1])
            ],
            title="Prefix scan (n=2^14) — extension workload",
        ),
    )
