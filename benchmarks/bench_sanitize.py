"""Sanitizer overhead: fuzzed + instrumented replay vs plain simulation.

The sanitizer's value proposition includes "cheap enough to run in CI":
probes hang off an empty-by-default list and the fuzzer only perturbs
heap tie-breaks, so a sanitized schedule should cost a small constant
factor over a plain run of the same configuration — not an order of
magnitude.  This bench measures that factor on the lock-free barrier
and writes it to ``benchmarks/out/sanitize_overhead.txt``.
"""

from time import perf_counter

from benchmarks.conftest import save_report
from repro.harness.report import format_table
from repro.harness.runner import run
from repro.sanitize import SkewedMicrobench, sanitize_run

STRATEGY = "gpu-lockfree"


def _algo(blocks: int, rounds: int) -> SkewedMicrobench:
    return SkewedMicrobench(
        rounds=rounds, num_blocks_hint=blocks, threads_per_block=64
    )


def test_sanitizer_overhead(
    benchmark, sanitize_bench_shape, fuzz_seed, fuzz_schedule_count
):
    blocks, rounds = sanitize_bench_shape
    schedules = fuzz_schedule_count

    def measure():
        t0 = perf_counter()
        for _ in range(schedules):
            result = run(
                _algo(blocks, rounds),
                STRATEGY,
                blocks,
                threads_per_block=64,
            )
            assert result.verified is True
        plain_s = perf_counter() - t0

        t0 = perf_counter()
        report = sanitize_run(
            _algo(blocks, rounds),
            STRATEGY,
            blocks,
            seed=fuzz_seed,
            schedules=schedules,
        )
        sanitized_s = perf_counter() - t0
        return plain_s, sanitized_s, report

    plain_s, sanitized_s, report = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert report.clean, report.render()
    assert report.schedules_run == schedules

    ratio = sanitized_s / plain_s
    table = format_table(
        ["configuration", "wall time (s)", "per schedule (ms)"],
        [
            [
                f"plain ×{schedules}",
                f"{plain_s:.3f}",
                f"{1e3 * plain_s / schedules:.1f}",
            ],
            [
                f"sanitized ×{schedules}",
                f"{sanitized_s:.3f}",
                f"{1e3 * sanitized_s / schedules:.1f}",
            ],
            ["overhead factor", f"{ratio:.2f}×", ""],
        ],
        title=(
            f"Sanitizer overhead — {STRATEGY}, {blocks} blocks × "
            f"{rounds} rounds, {report.barrier_events} barrier / "
            f"{report.access_events} access events"
        ),
    )
    save_report("sanitize_overhead", table)

    # Generous wall-clock bound: instrumentation must stay a small
    # constant factor, CI noise included.
    assert ratio < 20, f"sanitizer overhead {ratio:.1f}× exceeds budget"
