"""Simulator throughput — the one bench where host wall-clock matters.

Measures the discrete-event engine's event rate and the end-to-end cost
of a representative barrier kernel, so regressions in the simulation
core show up as real-time numbers in pytest-benchmark's report.
"""

from repro.algorithms import MeanMicrobench
from repro.harness import run
from repro.simcore import Delay, Engine


def test_engine_event_throughput(benchmark):
    """Raw event dispatch rate (pure Delay ping-pong)."""

    def spin(n_events: int):
        engine = Engine()

        def proc():
            for _ in range(n_events):
                yield Delay(1)

        engine.spawn(proc())
        engine.run()
        return engine.events_dispatched

    dispatched = benchmark(spin, 20_000)
    assert dispatched == 20_001


def test_lockfree_micro_wallclock(benchmark):
    """End-to-end: 30-block lock-free micro-benchmark, 100 rounds."""
    micro = MeanMicrobench(rounds=100)

    def go():
        return run(micro, "gpu-lockfree", 30)

    result = benchmark.pedantic(go, rounds=3, iterations=1)
    assert result.verified is True


def test_simple_micro_wallclock(benchmark):
    """End-to-end: 30-block GPU-simple micro-benchmark, 100 rounds
    (atomic-heavy path)."""
    micro = MeanMicrobench(rounds=100)

    def go():
        return run(micro, "gpu-simple", 30)

    result = benchmark.pedantic(go, rounds=3, iterations=1)
    assert result.verified is True
