"""Simulator throughput — the one bench where host wall-clock matters.

Measures the discrete-event engine's event rate and the end-to-end cost
of a representative barrier kernel, so regressions in the simulation
core show up as real-time numbers in pytest-benchmark's report.

``test_engine_mode_throughput`` additionally races the fast-path engine
(``engine_mode="fast"``, see docs/engine.md) against the reference
oracle on the canonical workload set and persists the comparison as
schema-versioned ``benchmarks/out/BENCH_engine.json`` — the artifact
CI's ``engine-equiv`` job checks so the fast engine stays fast.
"""

from benchmarks.conftest import OUT_DIR
from repro.algorithms import MeanMicrobench
from repro.harness import run
from repro.harness.perf import ENGINE_WORKLOADS, compare_modes, render_bench
from repro.simcore import Delay, Engine


def test_engine_event_throughput(benchmark):
    """Raw event dispatch rate (pure Delay ping-pong)."""

    def spin(n_events: int):
        engine = Engine()

        def proc():
            for _ in range(n_events):
                yield Delay(1)

        engine.spawn(proc())
        engine.run()
        return engine.events_dispatched

    dispatched = benchmark(spin, 20_000)
    assert dispatched == 20_001


def test_engine_mode_throughput(benchmark):
    """Fast engine vs reference on the canonical workloads.

    Shapes (see :mod:`repro.harness.perf`): the epoch-jump pump carries
    pure-Delay chains, the calendar queue carries same-time wake bursts,
    and the flag index turns the paper's spin wall — the O(spinners x
    stores) predicate-poll explosion — into one cell probe per store;
    that workload is the headline (>= 10x measured here).
    ``compare_modes`` refuses to report if the two engines' event counts
    or final clocks diverge, so this bench is also an equivalence check.
    """

    def race():
        return {
            name: compare_modes(build)
            for name, build in ENGINE_WORKLOADS.items()
        }

    results = benchmark.pedantic(race, rounds=1, iterations=1)
    # The floor asserted here is deliberately below the measured
    # speedups (pingpong ~4x, spin_wall ~20x): CI boxes are noisy, and
    # the regression tripwire only needs to catch "fast mode stopped
    # being fast", not defend the headline number.
    assert results["spin_wall"]["speedup"] >= 2.0
    assert results["pingpong"]["speedup"] >= 1.2
    assert results["barrier_storm"]["speedup"] >= 0.9
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_engine.json"
    path.write_text(render_bench("engine", results) + "\n")


def test_lockfree_micro_wallclock(benchmark):
    """End-to-end: 30-block lock-free micro-benchmark, 100 rounds."""
    micro = MeanMicrobench(rounds=100)

    def go():
        return run(micro, "gpu-lockfree", 30)

    result = benchmark.pedantic(go, rounds=3, iterations=1)
    assert result.verified is True


def test_simple_micro_wallclock(benchmark):
    """End-to-end: 30-block GPU-simple micro-benchmark, 100 rounds
    (atomic-heavy path)."""
    micro = MeanMicrobench(rounds=100)

    def go():
        return run(micro, "gpu-simple", 30)

    result = benchmark.pedantic(go, rounds=3, iterations=1)
    assert result.verified is True
