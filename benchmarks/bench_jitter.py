"""Robustness — do the paper's conclusions survive hardware noise?

The deterministic runs reproduce every crossover exactly; real GPUs have
run-to-run variability.  This bench re-measures the headline comparisons
with ±5 % lognormal jitter on every block's round computation (averaged
over three seeds, like the paper's three runs) and asserts the
*conclusions* are unchanged: strategy ordering at 30 blocks and the
existence of the simple/implicit crossover.
"""

from benchmarks.conftest import save_report
from repro.algorithms import MeanMicrobench
from repro.harness.report import format_table
from repro.harness.stats import repeat_run

ROUNDS = 100
JITTER = 5.0
REPEATS = 3


def test_ordering_robust_to_jitter(benchmark):
    def measure():
        micro = MeanMicrobench(rounds=ROUNDS, num_blocks_hint=30)
        stats = {}
        for strat in (
            "cpu-explicit",
            "cpu-implicit",
            "gpu-simple",
            "gpu-tree-2",
            "gpu-lockfree",
        ):
            stats[strat] = repeat_run(
                micro, strat, 30, repeats=REPEATS, jitter_pct=JITTER
            )
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    means = {k: v.mean_ns for k, v in stats.items()}
    # The full ordering at 30 blocks must hold on noisy means.
    assert (
        means["gpu-lockfree"]
        < means["gpu-tree-2"]
        < means["cpu-implicit"]
        < means["gpu-simple"]
        < means["cpu-explicit"]
    )
    # Spread sanity: relative std stays near the injected noise level.
    for name, s in stats.items():
        assert s.relative_std < 0.10, name
    save_report(
        "jitter",
        format_table(
            ["strategy", "mean (ms)", "std (ms)", "rel. std"],
            [
                [
                    name,
                    f"{s.mean_ns/1e6:.3f}",
                    f"{s.std_ns/1e6:.4f}",
                    f"{100*s.relative_std:.2f}%",
                ]
                for name, s in sorted(
                    stats.items(), key=lambda kv: kv[1].mean_ns
                )
            ],
            title=(
                f"Robustness — {JITTER:.0f}% compute jitter, "
                f"{REPEATS} seeds, 30 blocks"
            ),
        ),
    )


def test_crossover_survives_jitter(benchmark):
    """GPU simple still beats CPU implicit well below 24 blocks and
    loses well above it, under noise."""

    def measure():
        micro = MeanMicrobench(rounds=ROUNDS, num_blocks_hint=30)
        out = {}
        for n in (12, 30):
            out[n] = {
                strat: repeat_run(
                    micro, strat, n, repeats=REPEATS, jitter_pct=JITTER
                ).mean_ns
                for strat in ("cpu-implicit", "gpu-simple")
            }
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert out[12]["gpu-simple"] < out[12]["cpu-implicit"]
    assert out[30]["gpu-simple"] > out[30]["cpu-implicit"]
