"""Fig. 15 — percentage breakdown: computation vs synchronization.

Paper shapes at 30 blocks: under CPU implicit sync the synchronization
share is ~50 % for SWat, ~60 % for bitonic and ~20 % for FFT; GPU
lock-free cuts those to roughly 30 %/30 %/10 %.
"""

from benchmarks.conftest import save_report
from repro.harness import experiments, report


def _check_shape(results) -> None:
    for algo, per_strategy in results.items():
        implicit = per_strategy["cpu-implicit"].sync_pct
        lockfree = per_strategy["gpu-lockfree"].sync_pct
        assert lockfree < implicit, algo
        # Every strategy's split is a valid percentage stack.
        for b in per_strategy.values():
            assert 0 <= b.sync_pct <= 100
    # FFT is compute-dominated; SWat/bitonic are sync-heavy under implicit.
    assert results["fft"]["cpu-implicit"].sync_pct < 30
    assert results["swat"]["cpu-implicit"].sync_pct > 40
    assert results["bitonic"]["cpu-implicit"].sync_pct > 50
    # Lock-free pushes FFT's sync share into single digits/teens.
    assert results["fft"]["gpu-lockfree"].sync_pct < 15


def test_fig15(benchmark):
    results = benchmark.pedantic(experiments.fig15, rounds=1, iterations=1)
    _check_shape(results)
    save_report("fig15", report.render_fig15(results))
