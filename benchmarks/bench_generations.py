"""Cross-generation study — would the paper's conclusions hold on Fermi?

Runs the micro-benchmark barrier comparison on the calibrated GTX 280
and on an illustrative Fermi-class device (L2-cached atomics, fewer but
wider SMs, leaner launches; see :mod:`repro.gpu.presets`).  Qualitative
expectations, which this bench asserts:

* the **ordering is preserved** on both generations — lock-free wins,
  relaunch-based CPU sync loses; the paper's contribution is not an
  artifact of GT200's slow atomics;
* the **gaps compress**: cheap atomics pull GPU simple sync down hard
  (its slope *is* the atomic cost), so the case for avoiding atomics is
  weaker on Fermi — foreshadowing why later grid barriers were content
  to use atomic counters.
"""

from benchmarks.conftest import save_report
from repro.algorithms import MeanMicrobench
from repro.gpu.presets import get_preset
from repro.gpu.presets import get_preset
from repro.harness.phases import compute_only, sync_time_ns
from repro.harness.report import format_table
from repro.harness.runner import run

ROUNDS = 100
STRATEGIES = ("cpu-implicit", "gpu-simple", "gpu-tree-2", "gpu-lockfree")


def _barrier_costs(config):
    blocks = config.num_sms  # each device's full co-residency
    micro = MeanMicrobench(rounds=ROUNDS, num_blocks_hint=blocks)
    null = compute_only(micro, blocks, config=config)
    out = {}
    for strat in STRATEGIES:
        result = run(micro, strat, blocks, config=config)
        assert result.verified
        out[strat] = sync_time_ns(result, null) / ROUNDS
    return blocks, out


def test_generations(benchmark):
    def measure():
        return {
            "GTX 280 (calibrated)": _barrier_costs(get_preset("gtx280")),
            "Fermi-class (illustrative)": _barrier_costs(get_preset("fermi_class")),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    for device, (_blocks, costs) in results.items():
        # Ordering preserved on both generations.
        assert costs["gpu-lockfree"] < costs["gpu-tree-2"], device
        assert costs["gpu-lockfree"] < costs["cpu-implicit"], device

    # The atomic-avoidance gap compresses on Fermi: simple/lock-free
    # cost ratio shrinks relative to the GT200 one.
    _b, gt200 = results["GTX 280 (calibrated)"]
    _b, fermi = results["Fermi-class (illustrative)"]
    gt200_ratio = gt200["gpu-simple"] / gt200["gpu-lockfree"]
    fermi_ratio = fermi["gpu-simple"] / fermi["gpu-lockfree"]
    assert fermi_ratio < gt200_ratio

    rows = []
    for device, (blocks, costs) in results.items():
        for strat in STRATEGIES:
            rows.append([device, str(blocks), strat, f"{costs[strat]/1e3:.2f}"])
    save_report(
        "generations",
        format_table(
            ["device", "blocks", "strategy", "per-round sync (µs)"],
            rows,
            title="Cross-generation barrier costs (micro-benchmark)",
        ),
    )
