"""Model validation — measured barrier cost vs Eqs. 6, 7 and 9 (§5.4).

The paper claims "the time needed for each GPU synchronization approach
matches the time consumption model well"; here the match is exact for
GPU simple and lock-free and within ~25 % (always ≤ model) for the
trees, whose Eq. 7 assumes simultaneous arrival at every level — with
unbalanced groups, early representatives overlap their atomics with
late groups' level-1 adds and beat the bound.
"""

from benchmarks.conftest import save_report
from repro.harness import experiments, report


def _check_shape(results) -> None:
    for strat, per_n in results.items():
        for n, pair in per_n.items():
            measured, predicted = pair["measured"], pair["predicted"]
            assert measured <= predicted * 1.001, (strat, n)
            assert measured >= predicted * 0.75, (strat, n)
    # Exact matches where the model's arrival assumption holds.
    for n, pair in results["gpu-simple"].items():
        assert pair["measured"] == pair["predicted"], n
    for n, pair in results["gpu-lockfree"].items():
        assert pair["measured"] == pair["predicted"], n


def test_models(benchmark):
    results = benchmark.pedantic(
        experiments.model_validation,
        kwargs={"blocks": list(range(1, 31)), "rounds": 20},
        rounds=1,
        iterations=1,
    )
    _check_shape(results)
    save_report("models", report.render_model_validation(results))
