"""Sweep-service recovery overhead — what one crashed attempt costs.

Measures the same job twice through a real :class:`JobTable` and
in-process :class:`Worker`:

* **undisturbed** — submit, claim, execute, complete;
* **recovered** — submit, let a ghost owner claim the lease and die
  (never heartbeats, never completes), wait out the lease, reap, then
  execute the requeued attempt.

The difference is the recovery tax the crash matrix
(``repro crashtest``, docs/crashtest.md) proves correct but does not
price: lease expiry plus a reaper sweep plus the journal-replaying
re-execution.  Persisted as schema-versioned
``benchmarks/out/BENCH_service.json`` for CI's ``service-chaos`` job.
"""

import time
from pathlib import Path

from benchmarks.conftest import OUT_DIR
from repro.harness.perf import render_bench
from repro.service.jobs import JobTable, job_id_for
from repro.service.runners import validate_spec
from repro.service.worker import Worker

SPEC = {"experiment": "fig11", "params": {"rounds": 3}}
LEASE_S = 0.3


def _table(service_dir: Path) -> JobTable:
    return JobTable(
        service_dir / "jobs.sqlite3",
        lease_s=LEASE_S,
        retry_budget=3,
        backoff_base_s=0.05,
        backoff_cap_s=0.2,
    )


def _run_job(service_dir: Path, *, crash_first_attempt: bool) -> dict:
    """Submit one job and drive it to ``done``; returns the final row
    plus the measured submit→done latency."""
    spec = validate_spec(SPEC)
    job_id = job_id_for(spec)
    table = _table(service_dir)
    worker = Worker(
        table,
        service_dir=service_dir,
        owner="worker-1@bench",
        poll_s=0.01,
    )
    started = time.perf_counter()
    table.submit(spec)
    if crash_first_attempt:
        # A ghost host wins the lease and dies without a trace: no
        # heartbeat, no complete.  Production recovery is the lease
        # expiring plus a reaper sweep; the requeued attempt then pays
        # the (journal-replaying) re-execution.
        ghost = table.claim("worker-99999@ghost-host")
        assert ghost is not None and ghost["id"] == job_id
        deadline = time.perf_counter() + 30.0
        while job_id not in table.requeue_expired()[0]:
            if time.perf_counter() > deadline:
                raise AssertionError("orphaned lease never expired")
            time.sleep(0.02)
    # A requeued job carries a retry backoff before it is claimable
    # again — poll, like a real worker loop would.
    deadline = time.perf_counter() + 30.0
    while not worker.run_once():
        if time.perf_counter() > deadline:
            raise AssertionError("worker never claimed the job")
        time.sleep(0.01)
    seconds = time.perf_counter() - started
    job = table.get(job_id)
    assert job is not None
    job["seconds"] = seconds
    return job


def test_recovery_overhead(benchmark, tmp_path):
    """Requeued-attempt latency vs. undisturbed, same job, same table."""

    def measure():
        undisturbed = _run_job(
            tmp_path / "undisturbed", crash_first_attempt=False
        )
        recovered = _run_job(tmp_path / "recovered", crash_first_attempt=True)
        return undisturbed, recovered

    undisturbed, recovered = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    for job, attempts in ((undisturbed, 1), (recovered, 2)):
        assert job["state"] == "done"
        assert job["attempts"] == attempts
        assert job["completions"] == 1
        assert str(job["completed_by"]).endswith("@bench")
    # Recovery must change the price, never the bytes.
    assert recovered["result"] == undisturbed["result"]
    overhead = recovered["seconds"] - undisturbed["seconds"]
    assert overhead > 0.0  # at minimum the lease had to run out

    workloads = {
        "undisturbed": {
            "seconds": round(undisturbed["seconds"], 6),
            "attempts": undisturbed["attempts"],
        },
        "recovered": {
            "seconds": round(recovered["seconds"], 6),
            "attempts": recovered["attempts"],
            "lease_s": LEASE_S,
            "overhead_seconds": round(overhead, 6),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_service.json"
    path.write_text(render_bench("service", workloads) + "\n")
