"""Shared benchmark infrastructure.

Each ``bench_*.py`` regenerates one paper artifact (DESIGN.md §4):
running ``pytest benchmarks/ --benchmark-only`` re-measures every table
and figure, asserts its qualitative shape, and writes the rendered
text tables to ``benchmarks/out/``.

Simulation runs are deterministic, so benches use
``benchmark.pedantic(..., rounds=1)`` — wall-clock variance of the
*simulator* is not the quantity under study; the simulated clock is.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.harness import experiments

OUT_DIR = Path(__file__).parent / "out"


def save_report(name: str, text: str) -> Path:
    """Persist a rendered report under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@functools.lru_cache(maxsize=None)
def shared_algorithm_sweep(algorithm: str) -> "experiments.SweepResult":
    """One sweep per algorithm, shared between the Fig. 13 and Fig. 14
    benches — in the paper they are the same measurement plotted twice
    (total time vs total-minus-compute time)."""
    blocks = {
        "fft": list(range(9, 31, 3)),
        "bitonic": list(range(9, 31, 3)),
        # SWat simulates 2 047 barrier rounds per run; sample the sweep
        # more coarsely to keep the bench under a couple of minutes.
        "swat": [9, 16, 23, 30],
    }[algorithm]
    return experiments.algorithm_sweep(algorithm, blocks=blocks)


@pytest.fixture(scope="session")
def algorithm_sweep():
    return shared_algorithm_sweep


# -- sanitizer knobs ---------------------------------------------------------
#
# bench_sanitize.py measures instrumented-and-fuzzed replay against plain
# simulation.  The schedule seed and count come from the sanitizer's own
# pytest options (--fuzz-seed / --fuzz-schedules, loaded by the root
# conftest), so one flag reconfigures tests and benches alike; the grid
# shape below is the bench's own knob.


@pytest.fixture(scope="session")
def sanitize_bench_shape():
    """(num_blocks, rounds) the overhead bench simulates per run."""
    return (8, 50)
