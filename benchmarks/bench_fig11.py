"""Fig. 11 — micro-benchmark execution time vs number of blocks.

All six strategies over the full 1–30 block grid.  Paper shapes: CPU
explicit ≫ CPU implicit (both flat); GPU simple linear, crossing
implicit between 23 and 24 blocks; 2-level tree beats simple from ~11
blocks; lock-free flat and cheapest at scale.
"""

import time

from benchmarks.conftest import OUT_DIR, save_report
from repro.harness import experiments, report
from repro.harness.perf import compare_micro, render_bench
from repro.simcore import use_engine_mode

ROUNDS = 200  # paper: 10 000; per-round quantities are unchanged


def _check_shape(sweep) -> None:
    b = sweep.blocks
    sync = {s: sweep.sync_series(s) for s in sweep.totals}
    at = lambda s, n: sync[s][b.index(n)]  # noqa: E731

    # Explicit dominates implicit everywhere.
    assert all(e > i for e, i in zip(sync["cpu-explicit"], sync["cpu-implicit"]))
    # Simple is strictly increasing and crosses implicit between 23 and 24.
    simple = sync["gpu-simple"]
    assert all(x < y for x, y in zip(simple, simple[1:]))
    assert at("gpu-simple", 23) < at("cpu-implicit", 23)
    assert at("gpu-simple", 24) > at("cpu-implicit", 24)
    # 2-level tree crossover with simple near 11 blocks (paper: 11; our
    # measured crossover is 10 because unbalanced groups let early
    # representatives overlap their atomics and beat the Eq. 7 bound —
    # the Eq. 7 *model* crossover is exactly 11, see tests/model).
    assert at("gpu-tree-2", 9) > at("gpu-simple", 9)
    assert at("gpu-tree-2", 12) < at("gpu-simple", 12)
    # Lock-free is flat and the cheapest strategy from 6 blocks up.
    lockfree = sync["gpu-lockfree"]
    assert max(lockfree) == min(lockfree)
    for n in range(6, 31):
        for strat in sweep.totals:
            if strat != "gpu-lockfree":
                assert at("gpu-lockfree", n) < at(strat, n), (strat, n)


def test_fig11(benchmark):
    sweep = benchmark.pedantic(
        experiments.fig11, kwargs={"rounds": ROUNDS}, rounds=1, iterations=1
    )
    _check_shape(sweep)
    save_report(
        "fig11",
        report.render_sweep_totals(sweep, f"Fig. 11 (micro, {ROUNDS} rounds)")
        + "\n\n"
        + report.render_sweep_sync(sweep, f"Fig. 11 sync time (micro, {ROUNDS} rounds)"),
    )


def test_fig11_engine_modes(benchmark):
    """Fig. 11 under both event cores: identical sweeps, faster clock.

    Runs a reduced Fig. 11 grid under the reference engine and the fast
    engine (docs/engine.md) and demands byte-identical ``to_json``
    output — the driver-level differential check.  Per-strategy cell
    timings at the paper's full 30-block grid are persisted as
    schema-versioned ``benchmarks/out/BENCH_fig11.json`` alongside the
    whole-sweep wall-clock for both modes.
    """
    grid = {"rounds": 50, "blocks": [1, 8, 16, 24, 30]}

    def sweep_both():
        out = {}
        for mode in ("reference", "fast"):
            with use_engine_mode(mode):
                start = time.perf_counter()
                sweep = experiments.fig11(**grid)
                out[mode] = (time.perf_counter() - start, sweep)
        return out

    pair = benchmark.pedantic(sweep_both, rounds=1, iterations=1)
    ref_seconds, ref_sweep = pair["reference"]
    fast_seconds, fast_sweep = pair["fast"]
    assert ref_sweep.to_json() == fast_sweep.to_json()

    workloads = {
        f"{strategy}@30": compare_micro(strategy, 30, grid["rounds"])
        for strategy in ("gpu-simple", "gpu-tree-2", "gpu-lockfree")
    }
    workloads["fig11_sweep"] = {
        "reference": {
            "engine_mode": "reference",
            "seconds": round(ref_seconds, 6),
            "cells": len(ref_sweep.blocks) * (len(ref_sweep.totals) + 1),
        },
        "fast": {
            "engine_mode": "fast",
            "seconds": round(fast_seconds, 6),
            "cells": len(fast_sweep.blocks) * (len(fast_sweep.totals) + 1),
        },
        "speedup": round(ref_seconds / fast_seconds, 2),
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_fig11.json"
    path.write_text(render_bench("fig11", workloads) + "\n")
