"""Fig. 11 — micro-benchmark execution time vs number of blocks.

All six strategies over the full 1–30 block grid.  Paper shapes: CPU
explicit ≫ CPU implicit (both flat); GPU simple linear, crossing
implicit between 23 and 24 blocks; 2-level tree beats simple from ~11
blocks; lock-free flat and cheapest at scale.
"""

from benchmarks.conftest import save_report
from repro.harness import experiments, report

ROUNDS = 200  # paper: 10 000; per-round quantities are unchanged


def _check_shape(sweep) -> None:
    b = sweep.blocks
    sync = {s: sweep.sync_series(s) for s in sweep.totals}
    at = lambda s, n: sync[s][b.index(n)]  # noqa: E731

    # Explicit dominates implicit everywhere.
    assert all(e > i for e, i in zip(sync["cpu-explicit"], sync["cpu-implicit"]))
    # Simple is strictly increasing and crosses implicit between 23 and 24.
    simple = sync["gpu-simple"]
    assert all(x < y for x, y in zip(simple, simple[1:]))
    assert at("gpu-simple", 23) < at("cpu-implicit", 23)
    assert at("gpu-simple", 24) > at("cpu-implicit", 24)
    # 2-level tree crossover with simple near 11 blocks (paper: 11; our
    # measured crossover is 10 because unbalanced groups let early
    # representatives overlap their atomics and beat the Eq. 7 bound —
    # the Eq. 7 *model* crossover is exactly 11, see tests/model).
    assert at("gpu-tree-2", 9) > at("gpu-simple", 9)
    assert at("gpu-tree-2", 12) < at("gpu-simple", 12)
    # Lock-free is flat and the cheapest strategy from 6 blocks up.
    lockfree = sync["gpu-lockfree"]
    assert max(lockfree) == min(lockfree)
    for n in range(6, 31):
        for strat in sweep.totals:
            if strat != "gpu-lockfree":
                assert at("gpu-lockfree", n) < at(strat, n), (strat, n)


def test_fig11(benchmark):
    sweep = benchmark.pedantic(
        experiments.fig11, kwargs={"rounds": ROUNDS}, rounds=1, iterations=1
    )
    _check_shape(sweep)
    save_report(
        "fig11",
        report.render_sweep_totals(sweep, f"Fig. 11 (micro, {ROUNDS} rounds)")
        + "\n\n"
        + report.render_sweep_sync(sweep, f"Fig. 11 sync time (micro, {ROUNDS} rounds)"),
    )
