"""Fault-injection overhead: unarmed hooks vs plain simulation.

The injection points in :class:`~repro.gpu.context.BlockCtx`, the
kernel dispatcher and the barrier wrapper all sit behind a single
``device.faults is not None`` check — the same zero-overhead pattern as
the sanitizer's probe list.  This bench proves the claim: a run with
fault injection compiled in but *disarmed* (``faults=None``) must cost
the same as the pre-subsystem plain run, within noise, and a run armed
with an empty-effect plan must stay a small constant factor.  Writes
``benchmarks/out/faults_overhead.txt``.
"""

from time import perf_counter

from benchmarks.conftest import save_report
from repro.faults import FaultPlan, FaultSpec
from repro.harness.report import format_table
from repro.harness.runner import run
from repro.sanitize import SkewedMicrobench

STRATEGY = "gpu-lockfree"
REPS = 10


def _algo(blocks: int, rounds: int) -> SkewedMicrobench:
    return SkewedMicrobench(
        rounds=rounds, num_blocks_hint=blocks, threads_per_block=64
    )


def test_disarmed_injection_adds_no_measurable_overhead(
    benchmark, sanitize_bench_shape
):
    blocks, rounds = sanitize_bench_shape

    def measure():
        # Interleave the two configurations so cache/JIT warmup noise
        # lands on both sides equally.
        plain_s = armed_s = 0.0
        for _ in range(REPS):
            t0 = perf_counter()
            result = run(_algo(blocks, rounds), STRATEGY, blocks)
            plain_s += perf_counter() - t0
            assert result.verified is True

            # Armed with a plan that targets a block outside the grid:
            # every hook runs its guard, no fault ever fires.
            plan = FaultPlan(
                [FaultSpec("spurious-wakeup", block=blocks + 7, count=1)]
            )
            t0 = perf_counter()
            result = run(
                _algo(blocks, rounds), STRATEGY, blocks, faults=plan
            )
            armed_s += perf_counter() - t0
            assert result.verified is True
            assert plan.fired == []
        return plain_s, armed_s

    plain_s, armed_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = armed_s / plain_s
    table = format_table(
        ["configuration", "wall time (s)", "per run (ms)"],
        [
            [f"plain ×{REPS}", f"{plain_s:.3f}", f"{1e3 * plain_s / REPS:.1f}"],
            [
                f"armed, no-op plan ×{REPS}",
                f"{armed_s:.3f}",
                f"{1e3 * armed_s / REPS:.1f}",
            ],
            ["overhead factor", f"{ratio:.2f}×", ""],
        ],
        title=(
            f"Fault-injection overhead — {STRATEGY}, {blocks} blocks × "
            f"{rounds} rounds (armed side includes the barrier watchdog)"
        ),
    )
    save_report("faults_overhead", table)

    # Generous wall-clock bound (CI noise included): the armed side adds
    # one predicate per hook plus one watchdog process, nothing more.
    assert ratio < 3, f"disarmed-injection overhead {ratio:.1f}× exceeds budget"
