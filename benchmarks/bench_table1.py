"""Table 1 — % of time spent on inter-block communication (CPU implicit).

Paper: FFT 19.6 %, SWat 49.7 %, bitonic sort 59.6 % at the best
configuration (30 blocks).
"""

from benchmarks.conftest import save_report
from repro.harness import experiments, report


def _check_shape(results) -> None:
    fft = results["fft"].sync_pct
    swat = results["swat"].sync_pct
    bitonic = results["bitonic"].sync_pct
    # Ordering: FFT ≪ SWat < bitonic; absolute bands around the paper's.
    assert fft < swat < bitonic
    assert 10.0 < fft < 30.0, f"fft sync share {fft:.1f}% (paper 19.6%)"
    assert 40.0 < swat < 60.0, f"swat sync share {swat:.1f}% (paper 49.7%)"
    assert 50.0 < bitonic < 70.0, f"bitonic sync share {bitonic:.1f}% (paper 59.6%)"


def test_table1(benchmark):
    results = benchmark.pedantic(experiments.table1, rounds=1, iterations=1)
    _check_shape(results)
    save_report("table1", report.render_table1(results))
