"""Repo-root pytest configuration.

Loads the sanitizer's pytest plugin (``--sanitize``, ``--fuzz-seed``,
``--fuzz-schedules`` and the ``fuzz_schedules``/``sanitized_run``
fixtures — see docs/sanitizer.md).  ``pytest_plugins`` must live in the
rootdir conftest, hence this file.
"""

import sys
from pathlib import Path

# The suite is normally run with PYTHONPATH=src; make the plugin import
# (which happens before any test) work without it too.
_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# pytester drives the plugin's own tests (tests/sanitize/test_plugin.py).
pytest_plugins = ("repro.sanitize.pytest_plugin", "pytester")
