"""Repo-root pytest configuration.

Loads the sanitizer's pytest plugin (``--sanitize``, ``--fuzz-seed``,
``--fuzz-schedules`` and the ``fuzz_schedules``/``sanitized_run``
fixtures — see docs/sanitizer.md) and the static linter's plugin
(``--staticcheck`` plus the ``lint_strategy_report``/
``lint_source_report`` fixtures — see docs/staticcheck.md).
``pytest_plugins`` must live in the rootdir conftest, hence this file.
"""

import sys
from pathlib import Path

# The suite is normally run with PYTHONPATH=src; make the plugin import
# (which happens before any test) work without it too.
_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# pytester drives the plugins' own tests (tests/sanitize/test_plugin.py,
# tests/staticcheck/test_plugin.py).
pytest_plugins = (
    "repro.sanitize.pytest_plugin",
    "repro.staticcheck.pytest_plugin",
    "pytester",
)
