"""Exception hierarchy for the ``repro`` package.

All errors raised by the simulator, the GPU device model, the barrier
strategies and the harness derive from :class:`ReproError`, so callers can
catch one type at an API boundary.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "ProcessError",
    "KernelTimeoutError",
    "BarrierTimeoutError",
    "FaultError",
    "RetryExhaustedError",
    "ConfigError",
    "MemoryError_",
    "LaunchError",
    "OccupancyError",
    "SyncProtocolError",
    "ExperimentError",
    "ExecutorError",
    "JournalError",
    "InterruptedSweepError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """An invariant of the discrete-event engine was violated."""


class DeadlockError(SimulationError):
    """The simulation cannot make progress.

    Raised when the event queue drains while live processes remain blocked
    on signals, resources or joins.  This is the simulated analogue of a
    real CUDA grid hanging forever: e.g. launching more blocks than can be
    co-resident while using a device-side spin barrier (paper §5).

    Attributes
    ----------
    blocked:
        A list of ``(process_name, reason)`` pairs describing each process
        that was still waiting when the queue drained.
    """

    def __init__(self, blocked: list[tuple[str, str]]):
        self.blocked = list(blocked)
        detail = "; ".join(f"{name}: {reason}" for name, reason in self.blocked)
        super().__init__(
            f"deadlock: event queue drained with {len(self.blocked)} "
            f"blocked process(es) [{detail}]"
        )


class ProcessError(SimulationError):
    """A simulated process raised or misused the effect protocol."""


class KernelTimeoutError(SimulationError):
    """The device watchdog killed a kernel (CUDA: "the launch timed out").

    Display-attached GPUs abort kernels that run longer than the
    watchdog interval (~a few seconds).  This is how a deadlocked
    device-side barrier actually *manifests* on such a card — a launch
    failure after the timeout, not an eternal hang.  Enable via
    ``DeviceConfig(watchdog_ns=...)``.
    """

    def __init__(self, kernel_name: str, watchdog_ns: int, started_ns: int):
        self.kernel_name = kernel_name
        self.watchdog_ns = watchdog_ns
        self.started_ns = started_ns
        super().__init__(
            f"kernel {kernel_name!r} exceeded the {watchdog_ns} ns watchdog "
            f"(started at {started_ns} ns); on a display-attached GPU the "
            "driver kills such launches"
        )


class BarrierTimeoutError(SimulationError):
    """The barrier watchdog detected a stalled barrier round and killed it.

    Unlike :class:`DeadlockError` (raised only once the event heap has
    drained, i.e. after the fact), this is raised by the *resilient*
    runtime path: a :class:`repro.faults.BarrierWatchdog` armed on the
    run noticed that no process could ever make progress again, killed
    the kernel, and surfaced a typed, recoverable error.  The
    ``stuck`` list names each parked process and what it was waiting on
    — for injected faults, the reason string names the fault.
    """

    def __init__(
        self,
        strategy: str,
        deadline_ns: int,
        fired_at_ns: int,
        stuck: list[tuple[str, str]],
        faults: list[str] | None = None,
    ):
        self.strategy = strategy
        self.deadline_ns = deadline_ns
        self.fired_at_ns = fired_at_ns
        self.stuck = list(stuck)
        self.faults = list(faults or [])
        detail = "; ".join(f"{name}: {reason}" for name, reason in self.stuck)
        fault_note = (
            f" (injected: {', '.join(self.faults)})" if self.faults else ""
        )
        super().__init__(
            f"barrier watchdog: {strategy} round stalled past the "
            f"{deadline_ns} ns deadline at t={fired_at_ns} ns with "
            f"{len(self.stuck)} process(es) parked [{detail}]{fault_note}"
        )


class FaultError(ReproError):
    """A fault plan was malformed or injected inconsistently."""


class RetryExhaustedError(ReproError):
    """Every recovery attempt failed and no degradation path remained.

    Carries the per-attempt failure history so callers (and the chaos
    report) can see exactly how the run died.
    """

    def __init__(self, strategy: str, attempts: int, history: list[str]):
        self.strategy = strategy
        self.attempts = attempts
        self.history = list(history)
        trail = " | ".join(self.history) or "no recorded failures"
        super().__init__(
            f"{strategy}: all {attempts} attempt(s) failed and graceful "
            f"degradation was unavailable [{trail}]"
        )


class ConfigError(ReproError):
    """Invalid device, kernel or experiment configuration."""


class MemoryError_(ReproError):
    """Invalid access to simulated global or shared memory."""


class LaunchError(ReproError):
    """A kernel launch request was malformed."""


class OccupancyError(LaunchError):
    """A kernel cannot satisfy its resource/co-residency requirements.

    Raised *before* launching when a device-side barrier requires all
    blocks to be co-resident (one block per SM, paper §5) but the grid is
    larger than the number of SMs.
    """


class SyncProtocolError(ReproError):
    """A barrier implementation violated its own protocol invariants."""


class ExperimentError(ReproError):
    """An experiment driver was asked for an impossible configuration."""


class ExecutorError(ReproError):
    """A parallel-executor task failed, timed out, or could not dispatch.

    Raised by :class:`repro.parallel.Executor` — never from inside a
    worker process.  ``kind`` classifies the failure:

    * ``"timeout"`` — the task exceeded the executor's per-task deadline
      on every allowed attempt.  The error surfaces only after sibling
      in-flight tasks were drained (and journaled, when the batch is
      journaled), so a timeout loses one cell, not the batch;
    * ``"worker"`` — the worker function raised (the original error's
      type and message are embedded in this message and chained as
      ``__cause__`` when available);
    * ``"pool"`` — the process pool itself broke (a worker died) and
      could not be rebuilt;
    * ``"poison"`` — one or more payloads killed their worker process
      repeatedly and were quarantined; every other task completed (and
      was journaled) before this surfaced;
    * ``"resume"`` — a requested ``resume=`` run-id does not match this
      batch (the configuration changed) or has no journal on disk;
    * ``"unknown-worker"`` — the requested worker name is not registered.
    """

    def __init__(
        self,
        message: str,
        *,
        worker: str | None = None,
        task_index: int | None = None,
        kind: str = "worker",
    ):
        self.worker = worker
        self.task_index = task_index
        self.kind = kind
        super().__init__(message)


class JournalError(ReproError):
    """A run journal is unreadable, mismatched, or malformed.

    Raised when loading a write-ahead journal whose header does not
    match the batch being resumed (different run-id, worker, or task
    count) or whose header line cannot be parsed at all.  A truncated
    *trailing* entry — the signature of a crash mid-append — is **not**
    an error: write-ahead semantics mean every fully written line is
    trusted and the torn tail is simply re-run.
    """


class ServiceError(ReproError):
    """The sweep service refused or could not process a request.

    Raised by :mod:`repro.service` — the job table, the runner
    registry, the HTTP app and the client.  ``kind`` classifies the
    refusal so callers can map it onto an HTTP status (and the client
    can map it back):

    * ``"spec"`` — the submitted job spec is malformed (unknown
      experiment, bad parameter types) → 400;
    * ``"queue-full"`` — the bounded queue is at capacity; the
      submission was **not** enqueued and should be retried after
      backing off → 429;
    * ``"draining"`` — the service received SIGTERM and no longer
      accepts submissions → 503;
    * ``"not-found"`` — no job with the requested id → 404;
    * ``"state"`` — the request is invalid for the job's current state
      (e.g. fetching the result of a job that failed) → 409;
    * ``"protocol"`` — the client got a response it cannot interpret.
    """

    def __init__(self, message: str, *, kind: str = "protocol"):
        self.kind = kind
        super().__init__(message)


class InterruptedSweepError(ReproError):
    """A journaled sweep was interrupted (SIGINT/SIGTERM) and drained.

    The supervisor caught the signal, let in-flight tasks finish,
    flushed their results to the write-ahead journal, and raised this
    instead of dying mid-batch.  ``run_id`` is the content-derived
    batch identity to pass back as ``--resume <run_id>`` (or
    ``resume=`` on the driver): the resumed sweep replays the journal
    and executes only the remainder, bit-identical to an uninterrupted
    run.
    """

    def __init__(
        self,
        run_id: str,
        *,
        worker: str,
        done: int,
        total: int,
        signal_name: str = "signal",
        journal_path: str | None = None,
    ):
        self.run_id = run_id
        self.worker = worker
        self.done = done
        self.total = total
        self.signal_name = signal_name
        self.journal_path = journal_path
        where = f" (journal: {journal_path})" if journal_path else ""
        super().__init__(
            f"sweep {run_id} ({worker}) interrupted by {signal_name} with "
            f"{done}/{total} task(s) journaled{where}; rerun with "
            f"resume={run_id!r} to execute only the remainder"
        )
