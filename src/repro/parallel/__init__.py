"""Parallel sweep execution: deterministic fan-out + result memoization.

The paper's evaluation is a grid of sweeps — Table 1, Figs. 11/13/14/15,
three kernels × four barriers × block counts — and each cell is an
*independent, seeded* simulation.  This package exploits that:

* :class:`Executor` shards independent runs across
  ``ProcessPoolExecutor`` workers with bounded in-flight work, per-task
  timeouts that surface as typed
  :class:`~repro.errors.ExecutorError`\\ s, and a progress callback.
  Results come back in submission order, so a parallel sweep is
  **bit-identical** to the serial one.
* :class:`ResultCache` memoizes each run under a content-addressed key —
  the sha256 of the canonical JSON of (worker, algorithm config,
  strategy, device config, seed, cache schema version) — stored under
  ``benchmarks/out/cache/``.  Re-running a sweep after a doc-only change
  is instant; any config change misses cleanly because the key changes.

Every batch driver accepts an ``executor=``:
:mod:`repro.harness.experiments` (all figure/table drivers),
:func:`repro.faults.chaos.chaos_campaign` and
:func:`repro.sanitize.sanitize_run` fan out per cell / per seed.  The
CLI exposes the same via ``--jobs N`` and ``--cache``.

See docs/parallel.md for semantics and determinism guarantees.
"""

from repro.errors import ExecutorError
from repro.parallel.cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
)
from repro.parallel.executor import Executor

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "Executor",
    "ExecutorError",
    "ResultCache",
    "cache_key",
]
