"""Parallel sweep execution: deterministic fan-out + memoization + crash safety.

The paper's evaluation is a grid of sweeps — Table 1, Figs. 11/13/14/15,
three kernels × four barriers × block counts — and each cell is an
*independent, seeded* simulation.  This package exploits that:

* :class:`Executor` shards independent runs across
  ``ProcessPoolExecutor`` workers with bounded in-flight work, a
  per-task timeout *and retry budget*, and a progress callback.
  Results come back in submission order, so a parallel sweep is
  **bit-identical** to the serial one.
* A **supervisor** keeps one bad task from costing the batch: timed-out
  and crashed tasks are retried, a broken pool is rebuilt, and a
  payload that repeatedly kills its worker is quarantined as a typed
  ``poison`` :class:`~repro.errors.ExecutorError` while every sibling
  completes.
* :class:`RunJournal` write-ahead-journals every completion under a
  deterministic run-id (:func:`run_id_for`); SIGINT/SIGTERM drain
  in-flight tasks, flush the journal and raise
  :class:`~repro.errors.InterruptedSweepError` — ``map(...,
  resume=run_id)`` replays the journal and executes only the
  remainder.
* :class:`ResultCache` memoizes each run under a content-addressed key —
  the sha256 of the canonical JSON of (worker, algorithm config,
  strategy, device config, seed, cache schema version) — stored under
  ``benchmarks/out/cache/``.  Re-running a sweep after a doc-only change
  is instant; any config change misses cleanly because the key changes.

Every batch driver accepts an ``executor=`` (and ``resume=``):
:mod:`repro.harness.experiments` (all figure/table drivers),
:func:`repro.faults.chaos.chaos_campaign` and
:func:`repro.sanitize.sanitize_run` fan out per cell / per seed.  The
CLI exposes the same via ``--jobs N``, ``--cache``, ``--journal`` and
``--resume``.

See docs/parallel.md for determinism guarantees and docs/resilience.md
for the journal/resume/quarantine semantics.
"""

from repro.errors import ExecutorError, InterruptedSweepError, JournalError
from repro.parallel.cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
)
from repro.parallel.executor import BatchStats, Executor, Quarantined
from repro.parallel.journal import (
    DEFAULT_JOURNAL_DIR,
    JOURNAL_SCHEMA_VERSION,
    JournalEntry,
    RunJournal,
    run_id_for,
)

__all__ = [
    "BatchStats",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_JOURNAL_DIR",
    "Executor",
    "ExecutorError",
    "InterruptedSweepError",
    "JOURNAL_SCHEMA_VERSION",
    "JournalEntry",
    "JournalError",
    "Quarantined",
    "ResultCache",
    "RunJournal",
    "cache_key",
    "run_id_for",
]
