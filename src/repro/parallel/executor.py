"""The deterministic fan-out executor.

One :meth:`Executor.map` call runs one *batch*: a named worker function
(:mod:`repro.parallel.workers`) applied to a list of payload dicts.
Three properties make parallel batches drop-in replacements for serial
loops:

* **Determinism** — every payload fully seeds its simulation and results
  are returned in submission order, so the output is bit-identical to a
  serial run regardless of worker count or completion order.
* **Bounded in-flight work** — at most ``max_inflight`` tasks are
  submitted at once (default ``4 × jobs``), so a million-cell sweep
  never materializes a million pickled futures.
* **Typed failure** — a task exceeding ``timeout_s`` or a worker raising
  surfaces as an :class:`~repro.errors.ExecutorError` (with ``kind``
  ``"timeout"`` / ``"worker"`` / ``"pool"``), never a bare pool
  traceback.

``jobs=1`` executes inline in-process (no pool, no pickling) through the
exact same worker functions — the serial reference path every driver
uses by default.  The optional :class:`~repro.parallel.cache.ResultCache`
short-circuits tasks whose content-addressed key is already stored.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError, ExecutorError
from repro.parallel.cache import ResultCache

__all__ = ["Executor"]

#: a progress callback: ``progress(done, total, cached)`` after every
#: task that completes (``cached=True`` when served from the cache).
ProgressFn = Callable[[int, int, bool], None]


class Executor:
    """Shard independent simulation runs across worker processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs inline in-process.
    cache:
        Optional :class:`~repro.parallel.ResultCache`; tasks whose key
        is stored are served without running, fresh results are stored.
    timeout_s:
        Per-task wall-clock deadline.  A task that exceeds it raises
        :class:`~repro.errors.ExecutorError` (``kind="timeout"``) and
        the batch is abandoned.  ``None`` (default) waits forever.
    max_inflight:
        Cap on concurrently submitted tasks (default ``4 × jobs``).
    progress:
        ``progress(done, total, cached)`` callback, invoked in the
        calling process after every completed task.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        max_inflight: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
        if max_inflight is not None and max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_inflight = max_inflight or 4 * jobs
        self.progress = progress
        #: tasks actually executed (cache misses) across this instance.
        self.tasks_run = 0
        #: tasks served from the cache across this instance.
        self.tasks_cached = 0

    # -- public API ---------------------------------------------------------

    def map(self, worker: str, payloads: Sequence[Dict[str, Any]]) -> List[Any]:
        """Run ``worker`` over every payload; results in payload order.

        ``worker`` names a registered function in
        :mod:`repro.parallel.workers`; each payload must be a plain
        JSON-serializable dict that fully determines the task (that is
        what the cache keys on).
        """
        from repro.parallel.workers import resolve

        fn = resolve(worker)
        total = len(payloads)
        results: List[Any] = [None] * total
        done = 0

        # Cache pass: fill hits, queue misses.
        pending: List[tuple] = []  # (index, key-or-None, payload)
        for index, payload in enumerate(payloads):
            if self.cache is not None:
                key = self.cache.key(worker, payload)
                hit, value = self.cache.get(key)
                if hit:
                    results[index] = value
                    self.tasks_cached += 1
                    done += 1
                    if self.progress is not None:
                        self.progress(done, total, True)
                    continue
                pending.append((index, key, payload))
            else:
                pending.append((index, None, payload))

        if not pending:
            return results

        if self.jobs == 1:
            self._run_inline(fn, worker, pending, results, done, total)
        else:
            self._run_pool(worker, pending, results, done, total)
        return results

    # -- serial reference path ----------------------------------------------

    def _run_inline(self, fn, worker, pending, results, done, total) -> None:
        for index, key, payload in pending:
            try:
                value = fn(dict(payload))
            except ExecutorError:
                raise
            except Exception as exc:
                raise ExecutorError(
                    f"worker {worker!r} task {index} failed: "
                    f"{type(exc).__name__}: {exc}",
                    worker=worker,
                    task_index=index,
                    kind="worker",
                ) from exc
            results[index] = value
            self.tasks_run += 1
            if key is not None:
                self.cache.put(key, value)
            done += 1
            if self.progress is not None:
                self.progress(done, total, False)

    # -- process-pool path --------------------------------------------------

    def _run_pool(self, worker, pending, results, done, total) -> None:
        from repro.parallel.workers import dispatch

        queue = deque(pending)
        inflight: Dict[Any, tuple] = {}  # future -> (index, key, deadline)
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while queue or inflight:
                while queue and len(inflight) < self.max_inflight:
                    index, key, payload = queue.popleft()
                    future = pool.submit(dispatch, worker, dict(payload))
                    deadline = (
                        time.monotonic() + self.timeout_s
                        if self.timeout_s is not None
                        else None
                    )
                    inflight[future] = (index, key, deadline)

                wait_s = None
                if self.timeout_s is not None:
                    now = time.monotonic()
                    wait_s = max(
                        0.0,
                        min(d for _, _, d in inflight.values()) - now,
                    )
                completed, _ = wait(
                    set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
                )

                if not completed:
                    now = time.monotonic()
                    expired = [
                        index
                        for future, (index, _, deadline) in inflight.items()
                        if deadline is not None
                        and deadline <= now
                        and not future.done()
                    ]
                    if expired:
                        raise ExecutorError(
                            f"worker {worker!r} task {expired[0]} exceeded "
                            f"the {self.timeout_s} s per-task deadline "
                            f"({len(expired)} task(s) overdue); the batch "
                            "was abandoned",
                            worker=worker,
                            task_index=expired[0],
                            kind="timeout",
                        )
                    continue

                for future in completed:
                    index, key, _ = inflight.pop(future)
                    try:
                        value = future.result()
                    except ExecutorError:
                        raise
                    except BrokenProcessPool as exc:
                        raise ExecutorError(
                            f"worker pool broke while running {worker!r} "
                            f"task {index}: {exc}",
                            worker=worker,
                            task_index=index,
                            kind="pool",
                        ) from exc
                    except Exception as exc:
                        raise ExecutorError(
                            f"worker {worker!r} task {index} failed: "
                            f"{type(exc).__name__}: {exc}",
                            worker=worker,
                            task_index=index,
                            kind="worker",
                        ) from exc
                    results[index] = value
                    self.tasks_run += 1
                    if key is not None:
                        self.cache.put(key, value)
                    done += 1
                    if self.progress is not None:
                        self.progress(done, total, False)
        except BaseException:
            # Abandon outstanding work without joining possibly-hung
            # workers; the processes exit on their own once done.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cached = "+cache" if self.cache is not None else ""
        return f"Executor(jobs={self.jobs}{cached})"
