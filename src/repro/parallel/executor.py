"""The deterministic, crash-safe fan-out executor.

One :meth:`Executor.map` call runs one *batch*: a named worker function
(:mod:`repro.parallel.workers`) applied to a list of payload dicts.
Three properties make parallel batches drop-in replacements for serial
loops:

* **Determinism** — every payload fully seeds its simulation and results
  are returned in submission order, so the output is bit-identical to a
  serial run regardless of worker count, completion order, retries, or
  how many times the batch was interrupted and resumed.
* **Bounded in-flight work** — at most ``max_inflight`` tasks are
  submitted at once (default ``4 × jobs``), so a million-cell sweep
  never materializes a million pickled futures.
* **Typed failure** — worker errors, exhausted per-task timeouts,
  quarantined poison payloads, and signal interruptions surface as
  :class:`~repro.errors.ExecutorError` /
  :class:`~repro.errors.InterruptedSweepError`, never a bare pool
  traceback.

On top of the PR-3 fan-out sits a **supervisor** (this module) and a
**write-ahead journal** (:mod:`repro.parallel.journal`):

* a task that exceeds ``timeout_s`` is retried under a per-task budget
  (``retries``); only when the budget is spent does the batch fail —
  and even then sibling in-flight tasks are drained and journaled
  first, so one hung cell costs one cell, not the sweep;
* a worker-process death (``BrokenProcessPool``) rebuilds the pool and
  re-runs the in-flight suspects one at a time; a payload that kills
  its worker ``poison_kills`` times (attributed kills, i.e. it was the
  only task in flight) is quarantined as a typed ``poison`` failure
  while every other task completes;
* with a journal armed, SIGINT/SIGTERM drain in-flight tasks, flush
  the journal, and raise :class:`~repro.errors.InterruptedSweepError`
  carrying the run-id; ``map(..., resume=run_id)`` replays the journal
  and executes only the remainder.

``jobs=1`` executes inline in-process (no pool, no pickling) through the
exact same worker functions — the serial reference path every driver
uses by default.  Inline runs support journaling and interruption but
not per-task timeouts or poison quarantine (there is no worker process
to outlive or kill).  The optional
:class:`~repro.parallel.cache.ResultCache` short-circuits tasks whose
content-addressed key is already stored.
"""

from __future__ import annotations

import signal as _signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigError, ExecutorError, InterruptedSweepError
from repro.parallel.cache import ResultCache
from repro.parallel.journal import (
    DEFAULT_JOURNAL_DIR,
    JournalEntry,
    RunJournal,
    run_id_for,
)

__all__ = ["BatchStats", "Executor", "Quarantined"]

#: a progress callback: ``progress(done, total, cached)`` after every
#: task that completes (``cached=True`` when served from the cache or
#: replayed from a journal).
ProgressFn = Callable[[int, int, bool], None]

#: how often (s) the supervisor wakes to notice signals and deadlines.
_SUPERVISE_TICK_S = 0.25


@dataclass(frozen=True)
class Quarantined:
    """Placeholder for a poison payload's missing result.

    Appears in :meth:`Executor.map` results only under
    ``on_poison="mark"``; the default ``"raise"`` policy surfaces a
    typed :class:`~repro.errors.ExecutorError` (``kind="poison"``)
    after the rest of the batch has completed.
    """

    index: int
    error: str


@dataclass
class BatchStats:
    """Provenance of one :meth:`Executor.map` call.

    Exposed as :attr:`Executor.last_batch` so drivers can stamp sweep
    and campaign reports with partial-failure provenance: how many
    re-executions the supervisor forced (``retries``), which payload
    indices were quarantined as poison (``quarantined``), and the
    run-id the batch was resumed from, if any (``resumed_from``).
    """

    run_id: str
    worker: str
    total: int
    #: results replayed from the journal instead of executed.
    replayed: int = 0
    #: task re-executions forced by timeouts or worker deaths (the
    #: culpable task and any collateral in-flight siblings).
    retries: int = 0
    #: payload indices quarantined as poison.
    quarantined: List[int] = field(default_factory=list)
    #: run-id the batch resumed from (always equals ``run_id``).
    resumed_from: Optional[str] = None
    journal_path: Optional[str] = None


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without joining possibly-hung workers.

    ``cancel_futures`` drops queued tasks; live worker processes are
    then terminated so a hung task cannot outlive the batch as an
    orphan (the stdlib offers no public kill-one-task API).
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


class Executor:
    """Shard independent simulation runs across supervised workers.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs inline in-process.
    cache:
        Optional :class:`~repro.parallel.ResultCache`; tasks whose key
        is stored are served without running, fresh results are stored.
    timeout_s:
        Per-task wall-clock deadline.  An expired task is re-run under
        the per-task ``retries`` budget; once the budget is spent the
        batch drains its in-flight siblings (journaling them) and
        raises :class:`~repro.errors.ExecutorError`
        (``kind="timeout"``) naming the payload index.  ``None``
        (default) waits forever.
    retries:
        Per-task re-execution budget for timed-out or crashed tasks
        (default 1: each task may be re-run once before its failure
        becomes fatal / quarantining).
    max_inflight:
        Cap on concurrently submitted tasks (default ``4 × jobs``).
    progress:
        ``progress(done, total, cached)`` callback, invoked in the
        calling process after every completed task.
    journal_dir:
        Root directory for write-ahead run journals.  ``None``
        (default) disables journaling — and with it signal supervision
        — preserving plain fan-out semantics.  Passing a directory
        arms both: every batch journals each completion under
        ``journal_dir/<run-id>/journal.jsonl`` and SIGINT/SIGTERM
        raise a resumable
        :class:`~repro.errors.InterruptedSweepError`.
    poison_kills:
        Attributed worker-process kills before a payload is
        quarantined as poison (default 2).
    on_poison:
        ``"raise"`` (default): after every other task completes, raise
        a typed :class:`~repro.errors.ExecutorError`
        (``kind="poison"``).  ``"mark"``: return a
        :class:`Quarantined` placeholder at the poisoned index so
        campaign drivers can report partial failure.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        max_inflight: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        poison_kills: int = 2,
        on_poison: str = "raise",
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if max_inflight is not None and max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if poison_kills < 1:
            raise ConfigError(f"poison_kills must be >= 1, got {poison_kills}")
        if on_poison not in ("raise", "mark"):
            raise ConfigError(
                f"on_poison must be 'raise' or 'mark', got {on_poison!r}"
            )
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.max_inflight = max_inflight or 4 * jobs
        self.progress = progress
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.poison_kills = poison_kills
        self.on_poison = on_poison
        #: tasks actually executed (cache misses) across this instance.
        self.tasks_run = 0
        #: tasks served from the cache across this instance.
        self.tasks_cached = 0
        #: provenance of the most recent :meth:`map` call.
        self.last_batch: Optional[BatchStats] = None

    # -- public API ---------------------------------------------------------

    def map(
        self,
        worker: str,
        payloads: Sequence[Dict[str, Any]],
        *,
        resume: Optional[str] = None,
    ) -> List[Any]:
        """Run ``worker`` over every payload; results in payload order.

        ``worker`` names a registered function in
        :mod:`repro.parallel.workers`; each payload must be a plain
        JSON-serializable dict that fully determines the task (that is
        what the cache, the run-id and the journal key on).

        ``resume`` replays a previous journaled invocation of this
        exact batch: pass the run-id from an
        :class:`~repro.errors.InterruptedSweepError` (it must match
        this batch's content-derived run-id — a changed configuration
        is a typed error, never a silent splice) or the string
        ``"auto"`` to resume whatever journal exists for this batch
        and start fresh when none does.  Replayed results are placed
        by submission index, so a resumed batch is bit-identical to an
        uninterrupted one.
        """
        from repro.parallel.workers import resolve

        fn = resolve(worker)
        total = len(payloads)
        run_id = run_id_for(worker, payloads)
        stats = BatchStats(run_id=run_id, worker=worker, total=total)
        self.last_batch = stats

        journal_root = self.journal_dir
        if resume is not None and journal_root is None:
            journal_root = DEFAULT_JOURNAL_DIR
        journal: Optional[RunJournal] = None
        replayed: Dict[int, JournalEntry] = {}
        if journal_root is not None:
            journal = RunJournal(journal_root, run_id)
            stats.journal_path = str(journal.path)
            if resume is not None:
                if resume not in ("auto", run_id):
                    raise ExecutorError(
                        f"cannot resume run {resume!r}: this batch's "
                        f"run-id is {run_id!r} (the id is derived from "
                        "the worker and payloads, so a changed "
                        "configuration resumes nothing)",
                        worker=worker,
                        kind="resume",
                    )
                if journal.exists():
                    _, replayed = journal.load(worker=worker, total=total)
                    stats.resumed_from = run_id
                elif resume != "auto":
                    raise ExecutorError(
                        f"no journal for run {run_id!r} under "
                        f"{journal_root} — nothing to resume",
                        worker=worker,
                        kind="resume",
                    )
            journal.start(
                worker=worker, total=total, fresh=stats.resumed_from is None
            )

        supervisor = _Supervisor(self, worker, fn, stats, journal, total)
        try:
            # Replay pass: journaled completions land by index, first.
            for index in sorted(replayed):
                if 0 <= index < total:
                    supervisor.replay(replayed[index])

            # Cache pass: fill hits, queue misses.
            pending: List[Tuple[int, Optional[str], Dict[str, Any]]] = []
            for index, payload in enumerate(payloads):
                if index in replayed:
                    continue
                if self.cache is not None:
                    key = self.cache.key(worker, payload)
                    hit, value = self.cache.get(key)
                    if hit:
                        supervisor.complete(index, None, value, cached=True)
                        continue
                    pending.append((index, key, payload))
                else:
                    pending.append((index, None, payload))

            if pending:
                with supervisor.signal_guard():
                    if self.jobs == 1:
                        supervisor.run_inline(pending)
                    else:
                        supervisor.run_pool(pending)
        finally:
            if journal is not None:
                journal.close()

        if stats.quarantined and self.on_poison == "raise":
            hint = (
                f"; journal: {stats.journal_path}" if journal is not None else ""
            )
            raise ExecutorError(
                f"worker {worker!r} payload(s) "
                f"{', '.join(map(str, stats.quarantined))} killed their "
                f"worker process repeatedly and were quarantined as "
                f"poison; the other "
                f"{total - len(stats.quarantined)} task(s) completed"
                f"{hint}",
                worker=worker,
                task_index=stats.quarantined[0],
                kind="poison",
            )
        return supervisor.results

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cached = "+cache" if self.cache is not None else ""
        journaled = "+journal" if self.journal_dir is not None else ""
        return f"Executor(jobs={self.jobs}{cached}{journaled})"


class _Supervisor:
    """One :meth:`Executor.map` call's mutable state and loops."""

    def __init__(
        self,
        executor: Executor,
        worker: str,
        fn: Callable[[Dict[str, Any]], Any],
        stats: BatchStats,
        journal: Optional[RunJournal],
        total: int,
    ):
        self.ex = executor
        self.worker = worker
        self.fn = fn
        self.stats = stats
        self.journal = journal
        self.total = total
        self.results: List[Any] = [None] * total
        self.done = 0
        self.interrupt: Optional[str] = None
        self.interrupt_again = False
        self.signals_armed = False
        self.timeout_retries: Dict[int, int] = {}
        self.kills: Dict[int, int] = {}
        #: index -> (cache key, payload), filled by run_pool.
        self._tasks: Dict[int, Tuple[Optional[str], Dict[str, Any]]] = {}

    # -- bookkeeping --------------------------------------------------------

    def _attempts_of(self, index: int) -> int:
        return self.timeout_retries.get(index, 0) + self.kills.get(index, 0)

    def complete(
        self, index: int, key: Optional[str], value: Any, *, cached: bool = False
    ) -> None:
        """Record one finished task: result slot, cache, journal, progress."""
        self.results[index] = value
        if cached:
            self.ex.tasks_cached += 1
        else:
            self.ex.tasks_run += 1
            if key is not None and self.ex.cache is not None:
                self.ex.cache.put(key, value)
        if self.journal is not None:
            self.journal.record(
                JournalEntry(
                    index, "ok", value, retries=self._attempts_of(index)
                )
            )
        self.done += 1
        if self.ex.progress is not None:
            self.ex.progress(self.done, self.total, cached)

    def replay(self, entry: JournalEntry) -> None:
        """Place one journaled completion without executing anything."""
        if entry.status == "ok":
            self.results[entry.index] = entry.value
        else:
            error = entry.error or "quarantined as poison"
            self.results[entry.index] = Quarantined(
                index=entry.index, error=error
            )
            self.stats.quarantined.append(entry.index)
        self.stats.retries += entry.retries
        self.stats.replayed += 1
        self.done += 1
        if self.ex.progress is not None:
            self.ex.progress(self.done, self.total, True)

    def quarantine(self, index: int, error: str) -> None:
        """Mark a poison payload resolved-without-result and journal it."""
        self.results[index] = Quarantined(index=index, error=error)
        self.stats.quarantined.append(index)
        if self.journal is not None:
            self.journal.record(
                JournalEntry(
                    index,
                    "poison",
                    None,
                    error=error,
                    retries=self._attempts_of(index),
                )
            )
        self.done += 1
        if self.ex.progress is not None:
            self.ex.progress(self.done, self.total, False)

    def _flush_journal(self) -> None:
        if self.journal is not None:
            self.journal.flush()

    def _raise_interrupted(self) -> None:
        self._flush_journal()
        raise InterruptedSweepError(
            self.stats.run_id,
            worker=self.worker,
            done=self.done,
            total=self.total,
            signal_name=self.interrupt or "signal",
            journal_path=self.stats.journal_path,
        )

    # -- signal supervision -------------------------------------------------

    @contextmanager
    def signal_guard(self) -> Iterator[bool]:
        """Install SIGINT/SIGTERM capture for the batch (journaled runs).

        Without a journal an interrupt has nothing durable to offer, so
        default delivery (KeyboardInterrupt / termination) is left
        untouched.  Handlers can only live on the main thread; anywhere
        else supervision degrades gracefully to unarmed.
        """
        if (
            self.journal is None
            or threading.current_thread() is not threading.main_thread()
        ):
            yield False
            return

        def handler(signum: int, frame: Any) -> None:
            if self.interrupt is not None:
                self.interrupt_again = True
            else:
                self.interrupt = _signal.Signals(signum).name

        previous: Dict[int, Any] = {}
        try:
            for sig in (_signal.SIGINT, _signal.SIGTERM):
                previous[sig] = _signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            for sig, old in previous.items():
                _signal.signal(sig, old)
            yield False
            return
        self.signals_armed = True
        try:
            yield True
        finally:
            self.signals_armed = False
            for sig, old in previous.items():
                _signal.signal(sig, old)

    # -- serial reference path ----------------------------------------------

    def run_inline(
        self, pending: List[Tuple[int, Optional[str], Dict[str, Any]]]
    ) -> None:
        for index, key, payload in pending:
            if self.interrupt is not None:
                self._raise_interrupted()
            try:
                value = self.fn(dict(payload))
            except ExecutorError:
                self._flush_journal()
                raise
            except Exception as exc:
                self._flush_journal()
                raise ExecutorError(
                    f"worker {self.worker!r} task {index} failed: "
                    f"{type(exc).__name__}: {exc}",
                    worker=self.worker,
                    task_index=index,
                    kind="worker",
                ) from exc
            self.complete(index, key, value)
        if self.interrupt is not None:
            # Signal during the last task's completion callback: the
            # per-task check above never runs again, but the interrupt
            # must still surface (see run_pool).
            self._raise_interrupted()

    # -- supervised process-pool path ----------------------------------------

    def run_pool(
        self, pending: List[Tuple[int, Optional[str], Dict[str, Any]]]
    ) -> None:
        from repro.parallel.workers import dispatch

        tasks: Dict[int, Tuple[Optional[str], Dict[str, Any]]] = {
            index: (key, payload) for index, key, payload in pending
        }
        self._tasks = tasks
        queue: deque = deque(index for index, _, _ in pending)
        isolation: deque = deque()
        #: future -> (index, deadline)
        inflight: Dict[Any, Tuple[int, Optional[float]]] = {}
        pool = ProcessPoolExecutor(max_workers=self.ex.jobs)

        def rebuild() -> None:
            nonlocal pool
            _terminate_pool(pool)
            try:
                pool = ProcessPoolExecutor(max_workers=self.ex.jobs)
            except Exception as exc:  # pragma: no cover - OS resource limits
                raise ExecutorError(
                    f"worker pool for {self.worker!r} could not be "
                    f"rebuilt: {exc}",
                    worker=self.worker,
                    kind="pool",
                ) from exc

        def submit(index: int) -> None:
            key, payload = tasks[index]
            future = pool.submit(dispatch, self.worker, dict(payload))
            deadline = (
                time.monotonic() + self.ex.timeout_s
                if self.ex.timeout_s is not None
                else None
            )
            inflight[future] = (index, deadline)

        def harvest(future: Any, index: int) -> None:
            key, _ = tasks[index]
            try:
                value = future.result()
            except ExecutorError:
                self._flush_journal()
                _terminate_pool(pool)
                raise
            except BrokenProcessPool:
                raise
            except Exception as exc:
                self._flush_journal()
                _terminate_pool(pool)
                raise ExecutorError(
                    f"worker {self.worker!r} task {index} failed: "
                    f"{type(exc).__name__}: {exc}",
                    worker=self.worker,
                    task_index=index,
                    kind="worker",
                ) from exc
            self.complete(index, key, value)

        def pool_broke() -> None:
            """Salvage finished futures, suspect the rest, rebuild."""
            suspects: List[int] = []
            for future, (index, _) in list(inflight.items()):
                salvaged = False
                if future.done():
                    try:
                        value = future.result()
                    except Exception:
                        pass
                    else:
                        key, _payload = tasks[index]
                        self.complete(index, key, value)
                        salvaged = True
                if not salvaged:
                    suspects.append(index)
            inflight.clear()
            rebuild()
            suspects.sort()
            if len(suspects) == 1:
                # Alone in flight: the kill is attributed.
                index = suspects[0]
                self.kills[index] = self.kills.get(index, 0) + 1
                if self.kills[index] >= self.ex.poison_kills:
                    self.quarantine(
                        index,
                        f"payload {index} killed its worker process "
                        f"{self.kills[index]} time(s); quarantined as "
                        "poison",
                    )
                    return
            for index in suspects:
                self.stats.retries += 1
                isolation.append(index)

        def check_deadlines() -> None:
            now = time.monotonic()
            expired = [
                (future, index)
                for future, (index, deadline) in inflight.items()
                if deadline is not None
                and deadline <= now
                and not future.done()
            ]
            if not expired:
                return
            over_budget = sorted(
                index
                for _, index in expired
                if self.timeout_retries.get(index, 0) >= self.ex.retries
            )
            if over_budget:
                index = over_budget[0]
                attempts = self.timeout_retries.get(index, 0) + 1
                for future, _ in expired:
                    inflight.pop(future, None)
                self.drain(inflight)
                self._flush_journal()
                _terminate_pool(pool)
                hint = (
                    f"; completed siblings were journaled to "
                    f"{self.stats.journal_path} — resume with "
                    f"run-id {self.stats.run_id}"
                    if self.journal is not None
                    else ""
                )
                raise ExecutorError(
                    f"worker {self.worker!r} task {index} exceeded the "
                    f"{self.ex.timeout_s} s per-task deadline on all "
                    f"{attempts} attempt(s); sibling in-flight tasks "
                    f"were drained first, so only this payload is lost"
                    f"{hint}",
                    worker=self.worker,
                    task_index=index,
                    kind="timeout",
                )
            # Within budget: the hung worker is killed with the pool;
            # expired tasks are charged a retry, collateral in-flight
            # siblings are requeued without charge against their own
            # timeout budget (but counted in the batch's retry tally).
            expired_indices = {index for _, index in expired}
            for future, (index, _) in list(inflight.items()):
                if future.done():
                    try:
                        value = future.result()
                    except Exception:
                        expired_indices.add(index)
                    else:
                        key, _payload = tasks[index]
                        self.complete(index, key, value)
                        continue
                if index in expired_indices:
                    self.timeout_retries[index] = (
                        self.timeout_retries.get(index, 0) + 1
                    )
                self.stats.retries += 1
                queue.appendleft(index)
            inflight.clear()
            rebuild()

        try:
            while queue or isolation or inflight:
                if self.interrupt is not None:
                    self.drain(inflight)
                    _terminate_pool(pool)
                    self._raise_interrupted()

                if isolation:
                    # Suspects re-run alone so a repeat kill is
                    # attributable to exactly one payload.
                    if not inflight:
                        try:
                            submit(isolation.popleft())
                        except BrokenProcessPool:
                            pool_broke()
                            continue
                elif queue:
                    try:
                        while queue and len(inflight) < self.ex.max_inflight:
                            submit(queue.popleft())
                    except BrokenProcessPool:
                        pool_broke()
                        continue

                if not inflight:
                    continue

                wait_s: Optional[float] = (
                    _SUPERVISE_TICK_S if self.signals_armed else None
                )
                if self.ex.timeout_s is not None:
                    now = time.monotonic()
                    nearest = min(
                        deadline
                        for _, deadline in inflight.values()
                        if deadline is not None
                    )
                    until = max(0.0, nearest - now)
                    wait_s = until if wait_s is None else min(wait_s, until)
                completed, _ = wait(
                    set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
                )

                if not completed:
                    check_deadlines()
                    continue

                broke = False
                for future in completed:
                    index, deadline = inflight.pop(future)
                    try:
                        harvest(future, index)
                    except BrokenProcessPool:
                        inflight[future] = (index, deadline)
                        broke = True
                if broke:
                    pool_broke()
        except BaseException:
            self._flush_journal()
            _terminate_pool(pool)
            raise
        else:
            pool.shutdown(wait=True)
            if self.interrupt is not None:
                # The signal landed during the final harvest batch, after
                # the loop's last top-of-iteration check.  Every task is
                # journaled; the interrupt must still surface, or a
                # trapped SIGINT/SIGTERM would be silently swallowed.
                self._raise_interrupted()

    def drain(self, inflight: Dict[Any, Tuple[int, Optional[float]]]) -> None:
        """Let in-flight siblings finish and journal their results.

        Runs before a timeout failure or an interrupt surfaces, so
        already-spent work reaches the journal instead of evaporating.
        Tasks past their own deadline are abandoned; a second interrupt
        abandons everything still running.
        """
        while inflight:
            if self.interrupt_again:
                break
            now = time.monotonic()
            for future, (index, deadline) in list(inflight.items()):
                if future.done():
                    del inflight[future]
                    try:
                        value = future.result()
                    except Exception:
                        continue  # lost to the failure being surfaced
                    key = self._tasks.get(index, (None, None))[0]
                    self.complete(index, key, value)
                elif deadline is not None and deadline <= now:
                    del inflight[future]  # hung past its own deadline
            if not inflight:
                break
            wait(set(inflight), timeout=_SUPERVISE_TICK_S,
                 return_when=FIRST_COMPLETED)
