"""Registered worker functions the executor fans out.

Workers are module-level functions (picklable by reference) taking one
plain-dict payload and returning a plain JSON-serializable value — the
contract the :class:`~repro.parallel.cache.ResultCache` needs.  Each
payload fully determines the task: algorithm *spec* (not instance),
strategy name, device-config dict, seeds.  Workers rebuild the seeded
algorithm fresh, which is bit-identical to reusing one instance because
every run :meth:`~repro.algorithms.base.RoundAlgorithm.reset`\\ s it
anyway and all inputs derive from fixed seeds.

Registry:

* ``run-total`` — one (algorithm × strategy × grid) simulation; returns
  its ``total_ns``.  ``strategy="null"`` is the compute-only baseline.
* ``chaos-plan`` — one seeded fault plan under the resilient runtime;
  returns a :class:`~repro.faults.chaos.ChaosRunRecord` as a dict.
* ``sanitize-schedule`` — one fuzzed sanitizer schedule; returns its
  findings and event counts as a dict.
* ``sleep`` — diagnostic/self-test worker: sleeps then echoes a value
  (used by the executor's own timeout and cache tests).
* ``fragile`` — diagnostic worker that kills its own process on demand
  (used by the supervisor's crash-recovery and poison-quarantine tests;
  pool mode only — inline it would kill the calling process).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import ExecutorError, ExperimentError
from repro.serialization import device_config_from_dict

__all__ = ["WORKERS", "build_algorithm", "dispatch", "resolve", "worker"]

WORKERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {}


def worker(name: str) -> Callable:
    """Register a worker function under ``name``."""

    def register(fn: Callable[[Dict[str, Any]], Any]) -> Callable:
        WORKERS[name] = fn
        return fn

    return register


def resolve(name: str) -> Callable[[Dict[str, Any]], Any]:
    """Look up a worker, or fail with a typed error."""
    try:
        return WORKERS[name]
    except KeyError:
        raise ExecutorError(
            f"unknown worker {name!r}; registered: "
            f"{', '.join(sorted(WORKERS))}",
            worker=name,
            kind="unknown-worker",
        ) from None


def dispatch(name: str, payload: Dict[str, Any]) -> Any:
    """Run one task (the function the pool pickles by reference)."""
    return resolve(name)(payload)


def build_algorithm(spec: Dict[str, Any]):
    """Instantiate an algorithm from its serializable spec.

    ``{"name": "fft" | "swat" | "bitonic"}`` builds the calibrated paper
    workload; ``{"name": "micro", ...}`` / ``{"name": "micro-skewed",
    ...}`` forward their remaining keys to the micro-benchmark
    constructors.  Specs stay tiny and hashable; the (seeded) data is
    regenerated in the worker.
    """
    spec = dict(spec)
    try:
        name = spec.pop("name")
    except KeyError:
        raise ExperimentError(f"algorithm spec {spec!r} lacks a 'name'") from None
    if name == "micro":
        from repro.algorithms import MeanMicrobench

        return MeanMicrobench(**spec)
    if name == "micro-skewed":
        from repro.sanitize.sanitizer import SkewedMicrobench

        return SkewedMicrobench(**spec)
    if spec:
        raise ExperimentError(
            f"algorithm {name!r} takes no spec parameters, got {spec!r}"
        )
    from repro.harness.experiments import make_algorithm

    return make_algorithm(name)


def _config_from(payload: Dict[str, Any]):
    device = payload.get("device")
    return device_config_from_dict(device) if device is not None else None


@worker("run-total")
def _run_total(payload: Dict[str, Any]) -> int:
    """One measured simulation; returns total virtual time (ns)."""
    from repro.harness.phases import compute_only
    from repro.harness.runner import run

    algorithm = build_algorithm(payload["algorithm"])
    config = _config_from(payload)
    num_blocks = payload["num_blocks"]
    threads: Optional[int] = payload.get("threads_per_block")
    if payload["strategy"] == "null":
        result = compute_only(
            algorithm, num_blocks, threads_per_block=threads, config=config
        )
    else:
        result = run(
            algorithm,
            payload["strategy"],
            num_blocks,
            threads_per_block=threads,
            config=config,
            jitter_pct=payload.get("jitter_pct", 0.0),
            jitter_seed=payload.get("jitter_seed", 0),
        )
    return int(result.total_ns)


@worker("chaos-plan")
def _chaos_plan(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One fault plan under the resilient runtime → record dict."""
    from repro.faults.chaos import plan_record_from_payload

    return plan_record_from_payload(payload)


@worker("sanitize-schedule")
def _sanitize_schedule(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One fuzzed sanitizer schedule → findings + event counts."""
    from repro.sanitize.sanitizer import schedule_result_from_payload

    return schedule_result_from_payload(payload)


@worker("sleep")
def _sleep(payload: Dict[str, Any]) -> Any:
    """Sleep ``seconds`` then echo ``value`` (timeout/cache self-tests)."""
    time.sleep(payload.get("seconds", 0.0))
    return payload.get("value")


@worker("fragile")
def _fragile(payload: Dict[str, Any]) -> Any:
    """Die on demand, then echo ``value`` (supervisor self-tests).

    ``{"die": true}`` always kills the worker process (a poison
    payload); ``{"once_marker": path}`` dies on first execution and
    succeeds on the retry (a transient crash).  ``os._exit`` skips
    every ``finally``/atexit hook — the closest a pure-Python worker
    gets to a segfault.  Pool mode only.
    """
    if payload.get("die"):
        os._exit(13)
    marker = payload.get("once_marker")
    if marker is not None and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return payload.get("value")
