"""Content-addressed result cache for simulation runs.

A cache entry memoizes one worker task (one simulation run, one chaos
plan, one fuzzed schedule).  The key is the sha256 of the canonical JSON
of ``{"cache-schema": V, "worker": name, "payload": payload}`` — the
payload fully determines the run (algorithm config, strategy, device
config, seed), so:

* a byte-identical re-request hits instantly;
* *any* change to the configuration — a different seed, one timing
  parameter, a schema bump — changes the key and misses cleanly;
* entries never go stale, because a stale key is simply never asked for
  again (unreferenced entries are garbage ``repro cache clear`` sweeps).

Entries live as one JSON file per key under ``benchmarks/out/cache/``
(two-hex-char shards), written atomically so a crashed run never leaves
a half-written entry a later run would trust.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from repro.errors import ConfigError
from repro.faults import crashpoints
from repro.serialization import canonical_json, plain

__all__ = ["CACHE_SCHEMA_VERSION", "CacheStats", "DEFAULT_CACHE_DIR", "ResultCache", "cache_key"]

#: bumped whenever the meaning of a cached value changes; part of every
#: key, so a bump invalidates the whole cache without deleting a file.
CACHE_SCHEMA_VERSION = 1

#: default on-disk location (relative to the invocation directory, which
#: for the CLI and CI is the repo root).
DEFAULT_CACHE_DIR = Path("benchmarks") / "out" / "cache"

_PUT_PRE_RENAME = crashpoints.register_crashpoint(
    "cache.put.pre-rename",
    "the entry's temp file is written and fsync'd but not yet renamed "
    "over the final path — a crash here must leave only a stray .tmp, "
    "never a half-entry a later run would trust",
    actions=("kill", "raise-oserror"),
    scenario="success",
)

_PUT_POST_RENAME = crashpoints.register_crashpoint(
    "cache.put.post-rename",
    "the atomic rename just landed — the entry is durable but the "
    "putter never learns it succeeded",
    actions=("kill", "raise-oserror"),
    scenario="success",
)


def cache_key(worker: str, payload: Dict[str, Any]) -> str:
    """The content-addressed key of one task.

    Canonical JSON (sorted keys, minimal separators) makes semantically
    equal payloads hash equal regardless of dict construction order.
    """
    body = {
        "cache-schema": CACHE_SCHEMA_VERSION,
        "worker": worker,
        "payload": payload,
    }
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """On-disk shape of a cache directory."""

    root: str
    entries: int
    bytes: int
    #: entries quarantined to ``<key>.corrupt`` after a decode failure.
    corrupt: int = 0

    def render(self) -> str:
        """One-line human-readable summary."""
        note = f", {self.corrupt} corrupt" if self.corrupt else ""
        return (
            f"cache at {self.root}: {self.entries} entr"
            f"{'y' if self.entries == 1 else 'ies'}, {self.bytes} bytes"
            f"{note}"
        )


class ResultCache:
    """Content-addressed, JSON-valued, atomic on-disk cache.

    Values must be JSON-serializable (workers return plain ints/dicts).
    ``hits`` and ``misses`` count this instance's lookups, so a driver
    can report the hit rate of one invocation.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: corrupt entries this instance quarantined to ``<key>.corrupt``.
        self.corrupt = 0

    def key(self, worker: str, payload: Dict[str, Any]) -> str:
        """See :func:`cache_key`."""
        return cache_key(worker, payload)

    def _path(self, key: str) -> Path:
        if len(key) < 3:
            raise ConfigError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Look up a key; returns ``(hit, value)``.

        A corrupt, unreadable or schema-mismatched entry is treated as a
        miss (and will be overwritten by the next ``put``) — the cache
        must never turn disk rot into a wrong result.  An entry that
        fails to *decode* is additionally quarantined to
        ``<key>.corrupt`` on first sight, so it is re-parsed (and
        logged in :class:`CacheStats`) once, not on every lookup.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            return False, None
        except json.JSONDecodeError:
            try:
                path.replace(path.with_suffix(".corrupt"))
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
            self.corrupt += 1
            self.misses += 1
            return False, None
        if (
            not isinstance(entry, dict)
            or entry.get("cache-schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
            or "value" not in entry
        ):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry["value"]

    def put(self, key: str, value: Any) -> Path:
        """Store a value atomically; safe under concurrent writers.

        The entry is written to a uniquely named temp file in the same
        directory (``mkstemp``, so two workers — even two threads in
        one process — never share a scratch file), fsync'd, and
        renamed over the final path.  ``rename`` is atomic on POSIX:
        when two workers complete the same key concurrently, readers
        see one complete entry or the other, never a torn mix — and
        since entries are content-addressed, both writers carry
        identical bytes anyway.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache-schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "value": plain(value),
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=path.parent
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(entry))
                handle.flush()
                os.fsync(handle.fileno())
            crashpoints.fire(_PUT_PRE_RENAME)
            tmp.replace(path)
            crashpoints.fire(_PUT_POST_RENAME)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - already renamed/gone
                pass
            raise
        return path

    def stats(self) -> CacheStats:
        """Count entries, bytes, and quarantined corpses on disk."""
        entries = 0
        size = 0
        corrupt = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                entries += 1
                size += path.stat().st_size
            corrupt = sum(1 for _ in self.root.glob("*/*.corrupt"))
        return CacheStats(
            root=str(self.root), entries=entries, bytes=size, corrupt=corrupt
        )

    def clear(self) -> int:
        """Delete every entry (and quarantined corpse); returns the
        number of live entries removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                path.unlink()
                removed += 1
            for path in self.root.glob("*/*.corrupt"):
                path.unlink()
            for shard in self.root.iterdir():
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache(root={str(self.root)!r})"
