"""Write-ahead run journal: crash-safe progress for one executor batch.

A batch (one :meth:`repro.parallel.Executor.map` call) is identified by
a deterministic **run-id**: the sha256 of the canonical JSON of the
worker name plus the full payload list.  Two invocations with the same
configuration share a run-id; changing *anything* — one seed, one
timing parameter — changes it, so a resume can never silently splice
results from a different sweep.

The journal is one JSONL file per run under
``benchmarks/out/journal/<run-id>/journal.jsonl``:

* line 1 is a header stamping the journal schema, run-id, worker and
  task count (validated on load — a mismatch is a typed
  :class:`~repro.errors.JournalError`);
* every later line records one task's completion — index, status
  (``"ok"`` or ``"poison"``), value, retry count — appended as a single
  ``write`` and **fsync'd before the record counts as durable**, so a
  crash loses at most the torn trailing line, never a fully recorded
  result.

Loading tolerates exactly that torn tail — including a tear that
splits a UTF-8 multi-byte sequence mid-character, which is what a real
power cut leaves behind: lines are decoded individually from bytes, and
parsing stops at the first undecodable or unparsable line; everything
before it is trusted — write-ahead semantics.  Resume
(:meth:`Executor.map(..., resume=...) <repro.parallel.Executor.map>`)
replays loaded entries by submission index and executes only the
remainder.

The append and the replay are named crash points
(``journal.append`` — which can deliberately tear a record's bytes —
and ``journal.replay``; see :mod:`repro.faults.crashpoints`), so the
crash matrix proves both tolerances instead of assuming them.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, IO, Optional, Sequence, Tuple, Union

from repro.errors import JournalError
from repro.faults import crashpoints
from repro.serialization import canonical_json, plain

__all__ = [
    "DEFAULT_JOURNAL_DIR",
    "JOURNAL_SCHEMA_VERSION",
    "JournalEntry",
    "RunJournal",
    "run_id_for",
]

#: bumped whenever the journal line format changes; stamped in every
#: header so a resume against an old journal fails loudly.
JOURNAL_SCHEMA_VERSION = 1

#: default on-disk location (relative to the invocation directory,
#: which for the CLI and CI is the repo root) — a sibling of the
#: result cache.
DEFAULT_JOURNAL_DIR = Path("benchmarks") / "out" / "journal"

#: run-ids are the leading 16 hex chars of the sha256 — short enough to
#: retype from a terminal, far past collision risk for any real sweep
#: population.
_RUN_ID_HEX_CHARS = 16

logger = logging.getLogger(__name__)

_APPEND_POINT = crashpoints.register_crashpoint(
    "journal.append",
    "one task-completion record is being appended — a torn or lost "
    "tail line must cost one task's re-execution, nothing more",
    actions=("kill", "raise-oserror", "torn-write"),
    scenario="success",
)

_REPLAY_POINT = crashpoints.register_crashpoint(
    "journal.replay",
    "an existing journal is being replayed for a resume — a crash here "
    "must leave the journal replayable again",
    actions=("kill", "raise-oserror"),
    scenario="resume",
)


def run_id_for(worker: str, payloads: Sequence[Dict[str, Any]]) -> str:
    """The deterministic identity of one batch.

    Canonical JSON (sorted keys, minimal separators) makes semantically
    equal batches hash equal regardless of dict construction order —
    the same property the result cache keys on, lifted to whole
    batches.
    """
    body = {
        "journal-schema": JOURNAL_SCHEMA_VERSION,
        "worker": worker,
        "payloads": list(payloads),
    }
    digest = hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()
    return digest[:_RUN_ID_HEX_CHARS]


@dataclass(frozen=True)
class JournalEntry:
    """One journaled task completion.

    ``status`` is ``"ok"`` (``value`` holds the worker's result) or
    ``"poison"`` (the payload killed its worker repeatedly; ``error``
    holds the quarantine reason and ``value`` is meaningless).
    """

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    retries: int = 0


class RunJournal:
    """Append-only JSONL journal for one run-id.

    Typical lifecycle: :meth:`load` (when resuming), :meth:`start`,
    then :meth:`record` per completion, :meth:`flush` at drain points,
    :meth:`close` when the batch settles.  All paths live under
    ``root/run_id/``.
    """

    def __init__(self, root: Union[str, Path], run_id: str):
        self.root = Path(root)
        self.run_id = run_id
        self.path = self.root / run_id / "journal.jsonl"
        #: duplicate index records tolerated by the most recent
        #: :meth:`load` (0 for a single-writer journal; positive when a
        #: lease requeue produced overlapping writers).
        self.last_load_duplicates = 0
        self._handle: Optional[IO[str]] = None

    # -- reading ------------------------------------------------------------

    def exists(self) -> bool:
        """True when a journal file for this run-id is on disk."""
        return self.path.is_file()

    def load(
        self, *, worker: Optional[str] = None, total: Optional[int] = None
    ) -> Tuple[Dict[str, Any], Dict[int, JournalEntry]]:
        """Read the journal; returns ``(header, {index: entry})``.

        Validates the header against this journal's run-id and, when
        given, the expected ``worker`` and ``total`` — every mismatch
        is a typed :class:`~repro.errors.JournalError` naming the file.
        A torn trailing line (crash mid-append) truncates the replay,
        it does not fail it — even when the tear split a UTF-8
        multi-byte sequence, so the file is not decodable as a whole:
        lines are decoded from bytes one at a time, and the first
        undecodable line ends the trusted prefix.

        Duplicate indices are *expected* under lease-based recovery:
        when a sweep-service lease expires and the job is requeued
        while the original worker is merely slow (not dead), two
        writers append completions for the same tasks.  The records
        describe the same deterministic execution, so replay is
        last-write-wins; the tolerated count is logged and kept on
        :attr:`last_load_duplicates` so provenance is never silent.
        """
        self.last_load_duplicates = 0
        crashpoints.fire(_REPLAY_POINT)
        try:
            data = self.path.read_bytes()
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        raw_lines = data.split(b"\n")
        lines: list[str] = []
        for raw in raw_lines:
            try:
                lines.append(raw.decode("utf-8"))
            except UnicodeDecodeError:
                # A tear mid-character: the line is torn by definition.
                # For the header that is fatal (below); for the body the
                # torn tail simply ends the trusted prefix.
                break
        if not lines or not lines[0]:
            raise JournalError(f"journal {self.path} is empty (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal {self.path} has an unreadable header: {exc}"
            ) from exc
        if (
            not isinstance(header, dict)
            or header.get("journal-schema") != JOURNAL_SCHEMA_VERSION
        ):
            raise JournalError(
                f"journal {self.path} has schema "
                f"{header.get('journal-schema') if isinstance(header, dict) else header!r}; "
                f"this build writes version {JOURNAL_SCHEMA_VERSION}"
            )
        for key, want in (
            ("run-id", self.run_id),
            ("worker", worker),
            ("total", total),
        ):
            if want is not None and header.get(key) != want:
                raise JournalError(
                    f"journal {self.path} records {key} "
                    f"{header.get(key)!r} but this batch has {want!r}; "
                    "the run-id is derived from the batch contents, so a "
                    "changed configuration cannot resume an old journal"
                )
        entries: Dict[int, JournalEntry] = {}
        for line in lines[1:]:
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: trust everything before it
            if (
                not isinstance(raw, dict)
                or not isinstance(raw.get("index"), int)
                or raw.get("status") not in ("ok", "poison")
            ):
                break
            if raw["index"] in entries:
                self.last_load_duplicates += 1
            entries[raw["index"]] = JournalEntry(
                index=raw["index"],
                status=raw["status"],
                value=raw.get("value"),
                error=raw.get("error"),
                retries=int(raw.get("retries", 0)),
            )
        if self.last_load_duplicates:
            logger.warning(
                "journal %s: tolerated %d duplicate task record(s) "
                "(lease requeue with overlapping writers); "
                "last write wins per index",
                self.path,
                self.last_load_duplicates,
            )
        return header, entries

    # -- writing ------------------------------------------------------------

    def start(self, *, worker: str, total: int, fresh: bool) -> None:
        """Open the journal for appending.

        ``fresh=True`` truncates and writes a new header (a new batch);
        ``fresh=False`` appends to an existing, already-validated
        journal (a resume) — after truncating any torn tail left by a
        crash mid-append, so the resumed writer's first record starts
        on a clean line instead of gluing itself onto half of the dead
        writer's last one (which would corrupt *both* records for the
        next replay).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "w" if fresh or not self.exists() else "a"
        if mode == "a":
            self._truncate_torn_tail()
        self._handle = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            header = {
                "journal-schema": JOURNAL_SCHEMA_VERSION,
                "run-id": self.run_id,
                "worker": worker,
                "total": total,
            }
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self.flush()

    def _truncate_torn_tail(self) -> None:
        """Drop bytes after the last newline (a crash mid-append).

        Every complete record ends in ``\\n`` (written last), so
        anything after the final newline is a torn record the loader
        would ignore anyway; cutting it keeps the append point
        line-aligned.
        """
        try:
            data = self.path.read_bytes()
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        keep = data.rfind(b"\n") + 1
        if keep < len(data):
            logger.warning(
                "journal %s: truncating %d torn trailing byte(s) "
                "before resuming appends",
                self.path,
                len(data) - keep,
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())

    def record(self, entry: JournalEntry) -> None:
        """Append one completion as a single write, then fsync.

        The record is not considered durable — and the caller must not
        act as if it were (mark the task done, release a lease) — until
        the fsync returns.  Write-ahead discipline: a crash between the
        write and the fsync costs that one record, never a recorded
        one.
        """
        if self._handle is None:
            raise JournalError(
                f"journal {self.path} is not open for writing "
                "(call start() first)"
            )
        body = asdict(entry)
        body["value"] = plain(body["value"])
        line = json.dumps(body, sort_keys=True) + "\n"
        crashpoints.fire_write(_APPEND_POINT, self._handle, line)
        self.flush()

    def flush(self) -> None:
        """Force journaled lines to disk (flush + fsync)."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._handle is None:
            return
        self.flush()
        self._handle.close()
        self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunJournal(run_id={self.run_id!r}, path={str(self.path)!r})"
