"""A stdlib-only client for the service wire protocol.

Thin ``urllib`` wrappers that speak the envelopes in
:mod:`repro.serialization` and turn HTTP refusals back into the typed
:class:`~repro.errors.ServiceError` kinds the server raised them as —
so a test (or the smoke tool) handles backpressure and drain the same
way the service expresses them.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.serialization import parse_job_status

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one service instance at ``base_url``."""

    def __init__(self, base_url: str, *, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- raw HTTP ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> Tuple[int, str]:
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}",
                kind="protocol",
            ) from exc

    @staticmethod
    def _refusal(status: int, text: str) -> ServiceError:
        """Rebuild the typed error a non-2xx response carries."""
        try:
            payload = json.loads(text)
            error = payload["error"]
            return ServiceError(error["message"], kind=error["kind"])
        except (json.JSONDecodeError, KeyError, TypeError):
            return ServiceError(
                f"service returned HTTP {status}: {text[:200]}",
                kind="protocol",
            )

    # -- protocol ------------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a job spec; returns the ``job-status`` envelope payload.

        Raises the server's typed refusal: ``kind="spec"`` (400),
        ``"queue-full"`` (429), ``"draining"`` (503).
        """
        status, text = self._request(
            "POST", "/jobs", json.dumps(spec).encode("utf-8")
        )
        if status in (200, 201):
            return parse_job_status(text, source=f"{self.base_url}/jobs")
        raise self._refusal(status, text)

    def status(self, job_id: str) -> Dict[str, Any]:
        """GET one job's ``job-status`` envelope payload."""
        status, text = self._request("GET", f"/jobs/{job_id}")
        if status == 200:
            return parse_job_status(
                text, source=f"{self.base_url}/jobs/{job_id}"
            )
        raise self._refusal(status, text)

    def result_text(self, job_id: str) -> str:
        """GET a finished job's result envelope, byte-for-byte.

        A failed job raises ``kind="state"`` carrying the job-failure
        envelope's message; a job still in flight raises
        ``kind="not-found"`` (poll :meth:`status` first).
        """
        status, text = self._request("GET", f"/jobs/{job_id}/result")
        if status == 200:
            return text
        if status == 409:
            try:
                error = json.loads(text)["error"]
                message = f"job {job_id} failed: {error['message']}"
            except (json.JSONDecodeError, KeyError, TypeError):
                message = f"job {job_id} failed"
            raise ServiceError(message, kind="state")
        raise ServiceError(
            f"job {job_id} has no result yet (HTTP {status})",
            kind="not-found",
        )

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 120.0,
        poll_s: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.status(job_id)
            if payload["state"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {payload['state']!r} after "
                    f"{timeout_s}s",
                    kind="protocol",
                )
            time.sleep(poll_s)

    def healthz(self) -> bool:
        status, _ = self._request("GET", "/healthz")
        return status == 200

    def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        status, text = self._request("GET", "/readyz")
        try:
            return status == 200, json.loads(text)
        except json.JSONDecodeError:
            return status == 200, {}
