"""The durable job table: SQLite in WAL mode, leases, backoff, dedup.

One row per job, one file per service (``jobs.sqlite3`` under the
service directory).  The table is the *only* coordination point between
the HTTP app, the reaper and every worker process — there is no other
shared state, which is what makes a SIGKILLed worker or a restarted
service recoverable: whatever the table says, plus whatever the
write-ahead journal holds, *is* the in-flight state.

Design rules (py_experimenter's DB-backed experiment rows, adapted):

* **Content-addressed identity.**  A job id is the leading 16 hex chars
  of the sha256 of the canonical spec JSON (:func:`job_id_for`) — the
  same construction the result cache and the run journal use.  Two
  submissions of the same config are one row, one execution
  (``INSERT OR IGNORE``); a million users submitting the same fig11
  sweep cost one run.
* **Pull-based workers under time-bounded leases.**  ``claim`` moves
  the oldest eligible ``queued`` job to ``leased`` inside a single
  ``BEGIN IMMEDIATE`` transaction, stamping the owner and a lease
  deadline.  Workers extend the deadline with ``heartbeat``; a lease
  whose deadline has passed (``lease_expires_at <= now``, inclusive —
  at the expiry instant the lease is already dead) is *reapable*.
* **Conditional completion.**  ``complete``/``fail``/``release`` only
  take effect while the caller still owns the lease, so a worker whose
  lease was reaped and requeued cannot clobber the rerun — the late
  result is discarded (it is byte-identical anyway; the lease protocol
  just keeps ownership single-writer).  ``complete`` additionally
  stamps ``completed_by`` and increments a ``completions`` counter, so
  "no job was ever double-completed" is a *recorded* fact the crash
  matrix can assert, not an inference.
* **Bounded retries with exponential backoff.**  ``requeue_expired``
  (the reaper's engine) requeues an expired lease with an eligibility
  delay of ``backoff_base_s * 2**(attempts-1)`` (capped), until the
  job has used ``retry_budget`` re-executions — then it is marked
  ``failed`` with a typed, serialized ``job-failure`` envelope.
* **Locked means retry, not crash.**  Under multi-host contention
  SQLite surfaces ``OperationalError: database is locked`` even with a
  busy timeout (WAL writers still serialize; a checkpoint can hold the
  lock past the timeout).  Every transaction here runs under a capped
  exponential-backoff retry loop (``lock_retries``), so contention
  costs latency, never a worker crash.

Every timestamp comes from an injectable ``clock`` so the lease
lifecycle edges (heartbeat exactly at expiry, a reaper racing a late
result) are deterministically testable — and so a crash plan can skew
one host's clock against the fleet.

Every transaction is bracketed by two named crash points
(``jobs.<op>.pre-commit`` / ``jobs.<op>.post-commit``, see
:mod:`repro.faults.crashpoints`): the crash matrix kills or faults a
live worker at each of them and proves the table recovers.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from contextlib import contextmanager, suppress
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from repro.errors import ServiceError
from repro.faults import crashpoints
from repro.serialization import canonical_json, dump_job_failure

__all__ = ["JOB_SCHEMA_VERSION", "JobTable", "job_id_for"]

#: bumped whenever the row format changes; stamped in a meta table so a
#: service restarted on an old database fails loudly, not subtly.
#: v2 added the ``completions`` counter and ``completed_by`` stamp.
JOB_SCHEMA_VERSION = 2

#: job ids are the leading 16 hex chars of the sha256 — the same
#: shape (and for the same reason) as the journal's run-ids.
_JOB_ID_HEX_CHARS = 16

_T = TypeVar("_T")


def job_id_for(spec: Dict[str, Any]) -> str:
    """The content-addressed identity of one job spec.

    Canonical JSON makes semantically equal specs hash equal regardless
    of dict construction order — submitting the same sweep twice yields
    the same id, which is how duplicate submissions dedup to a single
    execution.
    """
    body = {"job-schema": JOB_SCHEMA_VERSION, "spec": spec}
    digest = hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()
    return digest[:_JOB_ID_HEX_CHARS]


_CREATE = (
    """CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    spec             TEXT NOT NULL,
    state            TEXT NOT NULL DEFAULT 'queued',
    submitted_at     REAL NOT NULL,
    eligible_at      REAL NOT NULL,
    attempts         INTEGER NOT NULL DEFAULT 0,
    lease_owner      TEXT,
    lease_expires_at REAL,
    result           TEXT,
    error            TEXT,
    completions      INTEGER NOT NULL DEFAULT 0,
    completed_by     TEXT,
    updated_at       REAL NOT NULL
)""",
    "CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, eligible_at)",
    "CREATE TABLE IF NOT EXISTS meta "
    "(key TEXT PRIMARY KEY, value TEXT NOT NULL)",
)

_COLUMNS = (
    "id", "spec", "state", "submitted_at", "eligible_at", "attempts",
    "lease_owner", "lease_expires_at", "result", "error",
    "completions", "completed_by", "updated_at",
)


def _row_to_job(row: Tuple[Any, ...]) -> Dict[str, Any]:
    job = dict(zip(_COLUMNS, row))
    job["spec"] = json.loads(job["spec"])
    return job


#: the table's transactional operations, each bracketed by a pre-commit
#: and a post-commit crash point.  The scenario tag tells the crash
#: matrix which script reaches the point (docs/crashtest.md).
_OPS = {
    "submit": "success",
    "claim": "success",
    "heartbeat": "success",
    "complete": "success",
    "fail": "failure",
    "release": "preempt",
    "requeue": "reaper",
}

for _op, _scenario in _OPS.items():
    register = crashpoints.register_crashpoint
    register(
        f"jobs.{_op}.pre-commit",
        f"inside the {_op} transaction, before COMMIT — the operation "
        "must be invisible after a crash here",
        actions=("kill", "raise-operational", "raise-oserror"),
        scenario=_scenario,
    )
    register(
        f"jobs.{_op}.post-commit",
        f"immediately after the {_op} transaction committed — the "
        "operation is durable but its caller never learns the outcome",
        actions=("kill", "raise-operational", "raise-oserror"),
        scenario=_scenario,
    )


class JobTable:
    """One service's durable job queue.

    Safe for concurrent use from many threads *and* many processes:
    every operation opens its own connection (WAL mode, busy timeout)
    and writes inside a single transaction — retried under capped
    backoff when SQLite reports the database locked — so the HTTP app,
    the reaper thread and N worker processes across several hosts can
    hammer the same file.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        lease_s: float = 30.0,
        retry_budget: int = 2,
        backoff_base_s: float = 1.0,
        backoff_cap_s: float = 60.0,
        max_queued: Optional[int] = None,
        clock: Callable[[], float] = time.time,
        lock_retries: int = 5,
        lock_retry_base_s: float = 0.05,
        lock_retry_cap_s: float = 1.0,
    ):
        if lease_s <= 0:
            raise ServiceError(f"lease_s must be positive, got {lease_s}", kind="spec")
        if retry_budget < 0:
            raise ServiceError(
                f"retry_budget must be >= 0, got {retry_budget}", kind="spec"
            )
        if max_queued is not None and max_queued < 1:
            raise ServiceError(
                f"max_queued must be >= 1, got {max_queued}", kind="spec"
            )
        if lock_retries < 0:
            raise ServiceError(
                f"lock_retries must be >= 0, got {lock_retries}", kind="spec"
            )
        self.path = Path(path)
        self.lease_s = lease_s
        self.retry_budget = retry_budget
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.max_queued = max_queued
        self.clock = crashpoints.skewed_clock(clock)
        self.lock_retries = lock_retries
        self.lock_retry_base_s = lock_retry_base_s
        self.lock_retry_cap_s = lock_retry_cap_s
        self._init_db()

    # -- connection plumbing -------------------------------------------------

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            yield conn
        finally:
            conn.close()

    @staticmethod
    def _is_locked(exc: sqlite3.OperationalError) -> bool:
        text = str(exc).lower()
        return "database is locked" in text or "database table is locked" in text

    def _transact(
        self, op: Optional[str], body: Callable[[sqlite3.Connection], _T]
    ) -> _T:
        """Run ``body`` in one ``BEGIN IMMEDIATE`` transaction.

        ``OperationalError: database is locked`` rolls back and retries
        the whole transaction under capped exponential backoff
        (``lock_retry_base_s * 2**attempt``, capped at
        ``lock_retry_cap_s``, at most ``lock_retries`` retries) — the
        multi-host contention path.  Any other error propagates after
        rollback.  The ``jobs.<op>.pre-commit`` crash point fires just
        before COMMIT (a crash there must make the operation
        invisible); ``jobs.<op>.post-commit`` fires after the loop
        exits successfully (the operation is durable, the caller never
        hears back).  ``op=None`` (schema init) fires no points, so hit
        counting starts at the first real operation.
        """
        attempt = 0
        while True:
            try:
                with self._connect() as conn:
                    conn.execute("BEGIN IMMEDIATE")
                    try:
                        out = body(conn)
                        if op is not None:
                            crashpoints.fire(f"jobs.{op}.pre-commit")
                        conn.execute("COMMIT")
                    except BaseException:
                        with suppress(sqlite3.OperationalError):
                            conn.execute("ROLLBACK")
                        raise
                break
            except sqlite3.OperationalError as exc:
                if not self._is_locked(exc) or attempt >= self.lock_retries:
                    raise
                delay = min(
                    self.lock_retry_base_s * 2**attempt, self.lock_retry_cap_s
                )
                attempt += 1
                time.sleep(delay)
        if op is not None:
            crashpoints.fire(f"jobs.{op}.post-commit")
        return out

    def _init_db(self) -> None:
        def body(conn: sqlite3.Connection) -> None:
            for statement in _CREATE:
                conn.execute(statement)
            row = conn.execute(
                "SELECT value FROM meta WHERE key='job-schema'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('job-schema', ?)",
                    (str(JOB_SCHEMA_VERSION),),
                )
            elif row[0] != str(JOB_SCHEMA_VERSION):
                raise ServiceError(
                    f"job table {self.path} has schema {row[0]}; this "
                    f"build writes version {JOB_SCHEMA_VERSION}",
                    kind="protocol",
                )

        self._transact(None, body)

    # -- submission ----------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Enqueue a spec; returns ``(job, created)``.

        Content-addressed dedup: resubmitting a spec whose job already
        exists (in *any* state) returns the existing row untouched with
        ``created=False`` — a finished job's result is served without
        re-execution, exactly like a result-cache hit.

        A full queue (``max_queued`` jobs already ``queued``) refuses
        *new* work with a typed :class:`~repro.errors.ServiceError`
        (``kind="queue-full"``) — the HTTP app maps this to 429.  Dedup
        hits are never refused: they cost no execution.
        """
        job_id = job_id_for(spec)
        now = self.clock()

        def body(conn: sqlite3.Connection) -> Optional[Dict[str, Any]]:
            row = conn.execute(
                f"SELECT {','.join(_COLUMNS)} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is not None:
                return _row_to_job(row)
            if self.max_queued is not None:
                queued = conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state='queued'"
                ).fetchone()[0]
                if queued >= self.max_queued:
                    raise ServiceError(
                        f"queue is full ({queued}/{self.max_queued} jobs "
                        "queued); retry after backing off",
                        kind="queue-full",
                    )
            conn.execute(
                "INSERT INTO jobs (id, spec, state, submitted_at, "
                "eligible_at, attempts, updated_at) "
                "VALUES (?, ?, 'queued', ?, ?, 0, ?)",
                (job_id, canonical_json(spec), now, now, now),
            )
            return None

        existing = self._transact("submit", body)
        if existing is not None:
            return existing, False
        job = self.get(job_id)
        assert job is not None
        return job, True

    # -- worker-side lease lifecycle -----------------------------------------

    def claim(self, owner: str) -> Optional[Dict[str, Any]]:
        """Lease the oldest eligible queued job to ``owner``.

        Returns the claimed job row, or ``None`` when nothing is
        eligible.  The claim, the owner stamp, the attempt increment
        and the lease deadline are one transaction, so two workers can
        never lease the same job.
        """
        now = self.clock()

        def body(conn: sqlite3.Connection) -> Optional[Tuple[Any, ...]]:
            row = conn.execute(
                "SELECT id FROM jobs WHERE state='queued' AND eligible_at<=? "
                "ORDER BY submitted_at, id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            job_id = row[0]
            conn.execute(
                "UPDATE jobs SET state='leased', lease_owner=?, "
                "lease_expires_at=?, attempts=attempts+1, updated_at=? "
                "WHERE id=?",
                (owner, now + self.lease_s, now, job_id),
            )
            full = conn.execute(
                f"SELECT {','.join(_COLUMNS)} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            return full

        full = self._transact("claim", body)
        return _row_to_job(full) if full is not None else None

    def heartbeat(self, job_id: str, owner: str) -> bool:
        """Extend ``owner``'s lease; returns False when the lease is gone.

        A heartbeat arriving **exactly at** the lease deadline is
        refused: expiry is inclusive (``lease_expires_at <= now`` makes
        the lease reapable), so the instant the deadline passes there is
        exactly one authority — the reaper — regardless of which of the
        two observes the clock first.  A worker whose heartbeat is
        refused must stop trusting its lease (its ``complete`` would be
        rejected anyway once the reaper requeues the job).
        """
        now = self.clock()

        def body(conn: sqlite3.Connection) -> int:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires_at=?, updated_at=? "
                "WHERE id=? AND state='leased' AND lease_owner=? "
                "AND lease_expires_at>?",
                (now + self.lease_s, now, job_id, owner, now),
            )
            return cur.rowcount

        return self._transact("heartbeat", body) == 1

    def complete(self, job_id: str, owner: str, result_text: str) -> bool:
        """Store a result and mark the job done — iff ``owner`` still
        holds the lease.

        Returns False when the lease was lost (the reaper requeued the
        job, or another worker now owns it): the late result is
        discarded.  Because every job is a deterministic, journaled
        sweep, the discarded result and the rerun's result are
        byte-identical — rejection costs nothing but keeps the
        protocol single-writer.

        A successful complete stamps ``completed_by = owner`` and
        increments ``completions``: after any crash campaign, a done
        job must show exactly one completion, by exactly one owner —
        the recorded proof of the no-double-completion invariant.

        A worker *may* complete after its deadline passed, as long as
        the reaper has not yet acted: the lease row is still owned, the
        work is done, and accepting it beats re-running.  The
        reaper-vs-late-result race therefore commutes — whichever side
        commits first wins, and both outcomes are valid.
        """
        now = self.clock()

        def body(conn: sqlite3.Connection) -> int:
            cur = conn.execute(
                "UPDATE jobs SET state='done', result=?, lease_owner=NULL, "
                "lease_expires_at=NULL, completions=completions+1, "
                "completed_by=?, updated_at=? "
                "WHERE id=? AND state='leased' AND lease_owner=?",
                (result_text, owner, now, job_id, owner),
            )
            return cur.rowcount

        return self._transact("complete", body) == 1

    def fail(self, job_id: str, owner: str, error_text: str) -> bool:
        """Mark the job failed with a serialized ``job-failure`` envelope.

        Used by workers for *deterministic* errors (the spec's
        execution raised a typed ``ReproError``): retrying a
        deterministic failure re-buys the same failure, so it is
        terminal immediately.  Lease-conditional like :meth:`complete`.
        """
        now = self.clock()

        def body(conn: sqlite3.Connection) -> int:
            cur = conn.execute(
                "UPDATE jobs SET state='failed', error=?, lease_owner=NULL, "
                "lease_expires_at=NULL, updated_at=? "
                "WHERE id=? AND state='leased' AND lease_owner=?",
                (error_text, now, job_id, owner),
            )
            return cur.rowcount

        return self._transact("fail", body) == 1

    def release(self, job_id: str, owner: str) -> bool:
        """Hand a leased job back uncharged (graceful preemption).

        A draining worker that was told to stop mid-sweep journaled its
        completed cells, so the rerun only pays for the remainder; the
        attempt is refunded because a deliberate preemption is not a
        failure and must not eat into the retry budget.
        """
        now = self.clock()

        def body(conn: sqlite3.Connection) -> int:
            cur = conn.execute(
                "UPDATE jobs SET state='queued', lease_owner=NULL, "
                "lease_expires_at=NULL, attempts=attempts-1, "
                "eligible_at=?, updated_at=? "
                "WHERE id=? AND state='leased' AND lease_owner=?",
                (now, now, job_id, owner),
            )
            return cur.rowcount

        return self._transact("release", body) == 1

    # -- reaper-side recovery ------------------------------------------------

    def requeue_expired(self) -> Tuple[List[str], List[str]]:
        """Recover every expired lease; returns ``(requeued, failed)`` ids.

        An expired lease means its worker died (SIGKILL, OOM) or hung
        past the heartbeat: the job goes back to ``queued`` with an
        exponential-backoff eligibility delay —
        ``backoff_base_s * 2**(attempts-1)``, capped at
        ``backoff_cap_s`` — so a crash-looping spec cannot hot-spin a
        worker.  Once ``attempts > retry_budget + 1`` executions would
        be needed, the job is instead marked ``failed`` with a typed
        ``job-failure`` envelope recording the attempt history.
        """
        now = self.clock()

        def body(conn: sqlite3.Connection) -> Tuple[List[str], List[str]]:
            requeued: List[str] = []
            failed: List[str] = []
            rows = conn.execute(
                "SELECT id, attempts FROM jobs "
                "WHERE state='leased' AND lease_expires_at<=?",
                (now,),
            ).fetchall()
            for job_id, attempts in rows:
                if attempts > self.retry_budget:
                    envelope = dump_job_failure(
                        "LeaseRetryExhausted",
                        f"lease expired on all {attempts} attempt(s) "
                        f"(retry budget {self.retry_budget}); the worker "
                        "died or hung every time",
                        job_id=job_id,
                        attempts=attempts,
                    )
                    conn.execute(
                        "UPDATE jobs SET state='failed', error=?, "
                        "lease_owner=NULL, lease_expires_at=NULL, "
                        "updated_at=? WHERE id=?",
                        (envelope, now, job_id),
                    )
                    failed.append(job_id)
                else:
                    delay = min(
                        self.backoff_base_s * 2 ** (attempts - 1),
                        self.backoff_cap_s,
                    )
                    conn.execute(
                        "UPDATE jobs SET state='queued', lease_owner=NULL, "
                        "lease_expires_at=NULL, eligible_at=?, updated_at=? "
                        "WHERE id=?",
                        (now + delay, now, job_id),
                    )
                    requeued.append(job_id)
            return requeued, failed

        return self._transact("requeue", body)

    # -- inspection ----------------------------------------------------------

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Fetch one job row as a dict (spec decoded), or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT {','.join(_COLUMNS)} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
        return _row_to_job(row) if row is not None else None

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Every job row, oldest submission first."""
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT {','.join(_COLUMNS)} FROM jobs "
                "ORDER BY submitted_at, id"
            ).fetchall()
        return [_row_to_job(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: count}`` over every known state (zeros included)."""
        from repro.serialization import JOB_STATES

        out = {state: 0 for state in JOB_STATES}
        with self._connect() as conn:
            for state, count in conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ):
                out[state] = count
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobTable(path={str(self.path)!r}, lease_s={self.lease_s})"
