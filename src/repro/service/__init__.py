"""The crash-safe sweep service: ``repro serve`` (docs/service.md).

This package wraps the execution substrate — the supervised
:class:`~repro.parallel.Executor`, the content-addressed
:class:`~repro.parallel.ResultCache`, and the write-ahead
:class:`~repro.parallel.RunJournal` — in a long-running HTTP service
with a durable, DB-backed job queue:

* :mod:`repro.service.jobs` — the SQLite (WAL-mode) job table.
  Submissions are content-addressed by the sha256 of the canonical spec
  JSON, so duplicate sweep configs dedup to one execution; workers pull
  jobs under **time-bounded leases** with heartbeats.
* :mod:`repro.service.runners` — the registry mapping a job spec
  (``{"experiment": "fig11", "params": {...}}``) to an experiment
  driver, always executed with a journal armed and ``resume="auto"`` so
  a requeued job replays its predecessor's completed cells and the final
  envelope is **byte-identical** to an uninterrupted serial run.
* :mod:`repro.service.worker` — the pull-based worker loop (one process
  per worker, SIGKILL-able without losing work).
* :mod:`repro.service.reaper` — requeues expired leases with
  exponential backoff up to a retry budget, then marks the job failed
  with a typed, serialized ``job-failure`` envelope.
* :mod:`repro.service.app` — the HTTP front door: submit/poll/fetch
  endpoints, ``/healthz`` / ``/readyz``, bounded-queue backpressure
  (429), graceful SIGTERM drain, and worker-process supervision.
* :mod:`repro.service.client` — a stdlib-only client for the wire
  protocol (used by the smoke tool and the tests).

Everything is standard library (``sqlite3``, ``http.server``,
``urllib``): the service adds no dependencies.
"""

from repro.errors import ServiceError
from repro.service.app import ServiceApp, serve
from repro.service.client import ServiceClient
from repro.service.jobs import JobTable, job_id_for
from repro.service.reaper import Reaper
from repro.service.runners import execute_spec, validate_spec
from repro.service.worker import Worker

__all__ = [
    "JobTable",
    "Reaper",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "Worker",
    "execute_spec",
    "job_id_for",
    "serve",
    "validate_spec",
]
