"""The pull-based worker: claim → heartbeat → execute → complete.

One worker is one OS process (``python -m repro.service.worker_main``),
so
the chaos menu applies to it directly: SIGKILL is survivable (the lease
expires, the reaper requeues, the journal makes the rerun
byte-identical), SIGTERM is graceful (the executor drains in-flight
cells to the journal, the worker hands the job back uncharged via
:meth:`~repro.service.jobs.JobTable.release`).

The heartbeat runs on a daemon thread at a third of the lease period.
A refused heartbeat means the lease is gone — the worker finishes the
sweep (the work is journaled either way) but its ``complete`` will be
rejected by the lease-conditional update; the requeued attempt replays
the journal, so nothing is lost and nothing is double-counted.

Execution failures split by recoverability:

* a typed :class:`~repro.errors.ReproError` from the runner is
  *deterministic* — retrying re-buys the same failure — so the job is
  marked ``failed`` immediately with a ``job-failure`` envelope;
* an :class:`~repro.errors.InterruptedSweepError` (SIGTERM drain) hands
  the job back uncharged;
* any *other* exception is an **infrastructure** failure (an I/O error,
  a database hiccup past its retry loop, an injected fault): retrying
  may well succeed, so the worker must NOT burn the job's ``failed``
  state on it — it re-raises and lets the process die, which is
  indistinguishable from a crash: the lease expires, the reaper
  requeues, the retry budget bounds a crash-looping host;
* a crash (SIGKILL, OOM) never reaches this code at all — that is what
  the lease + reaper recover.

For multi-host proofs the owner string's host part and the table clock
are injectable (``--host-label``, ``--clock-skew-s``): the crash matrix
runs ≥2 "hosts" against one service directory from a single machine,
with one host's clock deliberately wrong.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.errors import InterruptedSweepError, ReproError
from repro.faults import crashpoints
from repro.serialization import dump_job_failure
from repro.service.jobs import JobTable
from repro.service.runners import execute_spec, validate_spec

__all__ = ["Worker", "default_owner", "main"]

_HEARTBEAT_POINT = crashpoints.register_crashpoint(
    "worker.heartbeat",
    "inside the heartbeat loop, before the lease-extension update — a "
    "dead heartbeat must cost the lease (and only the lease)",
    actions=("kill", "raise-oserror"),
    scenario="success",
)


def default_owner(host_label: Optional[str] = None) -> str:
    """``worker-<pid>@<host>`` — the pid is parseable, so a chaos test
    (or an operator) can SIGKILL the worker that owns a lease, and the
    host part names which (possibly simulated) host holds it."""
    return f"worker-{os.getpid()}@{host_label or socket.gethostname()}"


class Worker:
    """One pull loop against one job table.

    Parameters mirror the service knobs: ``poll_s`` is the idle sleep
    between empty claims, ``jobs`` is the executor fan-out *inside* one
    sweep (the service-level parallelism is the worker count).
    """

    def __init__(
        self,
        table: JobTable,
        *,
        service_dir: Union[str, Path],
        owner: Optional[str] = None,
        jobs: int = 1,
        poll_s: float = 0.5,
        use_cache: bool = False,
    ):
        self.table = table
        self.service_dir = Path(service_dir)
        self.owner = owner or default_owner()
        self.jobs = jobs
        self.poll_s = poll_s
        self.use_cache = use_cache
        #: completions the lease-conditional update rejected (lease was
        #: reaped while we were still running — the rerun wins).
        self.stale_results = 0
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Ask the loop to exit after the current job."""
        self._stop.set()

    def run_once(self) -> bool:
        """Claim and execute at most one job; returns True if one ran."""
        job = self.table.claim(self.owner)
        if job is None:
            return False
        self._execute(job)
        return True

    def run_forever(self) -> None:
        """Pull until :meth:`stop` (or a SIGTERM handler) is called."""
        while not self._stop.is_set():
            if not self.run_once():
                self._stop.wait(self.poll_s)

    # -- one job -------------------------------------------------------------

    def _execute(self, job: dict) -> None:
        job_id = job["id"]
        beat = _HeartbeatThread(self.table, job_id, self.owner)
        beat.start()
        try:
            result_text = execute_spec(
                job["spec"],
                journal_dir=self.service_dir / "journal",
                cache_dir=(self.service_dir / "cache") if self.use_cache else None,
                jobs=self.jobs,
            )
        except InterruptedSweepError:
            # Graceful preemption: cells are journaled, hand it back
            # uncharged and let the next worker resume the remainder.
            beat.stop()
            self.table.release(job_id, self.owner)
            self._stop.set()
            return
        except ReproError as exc:
            beat.stop()
            envelope = dump_job_failure(
                type(exc).__name__,
                str(exc),
                job_id=job_id,
                attempts=job["attempts"],
            )
            if not self.table.fail(job_id, self.owner, envelope):
                self.stale_results += 1
            return
        except Exception:
            # Infrastructure failure (I/O, database, injected fault):
            # retrying may succeed, so do NOT mark the job failed —
            # die like a crash would and let the lease + reaper + retry
            # budget decide.  Only a typed ReproError (deterministic)
            # is terminal on first sight.
            beat.stop()
            raise
        beat.stop()
        if not self.table.complete(job_id, self.owner, result_text):
            self.stale_results += 1


class _HeartbeatThread(threading.Thread):
    """Extend one lease every ``lease_s / 3`` until stopped.

    Daemonized so a wedged sweep cannot keep the process alive past a
    SIGTERM; a refused heartbeat stops the thread (the lease is gone,
    further beats are noise).
    """

    def __init__(self, table: JobTable, job_id: str, owner: str):
        super().__init__(daemon=True, name=f"heartbeat-{job_id}")
        self.table = table
        self.job_id = job_id
        self.owner = owner
        self.lost = False
        self._stop = threading.Event()

    def run(self) -> None:
        interval = max(self.table.lease_s / 3.0, 0.05)
        while not self._stop.wait(interval):
            crashpoints.fire(_HEARTBEAT_POINT)
            if not self.table.heartbeat(self.job_id, self.owner):
                self.lost = True
                return

    def stop(self) -> None:
        self._stop.set()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for one worker process (spawned by ``repro serve``).

    The extra knobs exist for the crash matrix and multi-host proofs:
    ``--host-label`` simulates a distinct host in the owner string,
    ``--clock-skew-s`` runs this process's table clock fast (positive)
    or slow (negative) against the fleet, ``--submit-spec`` lets the
    armed victim process perform the submission itself (so the submit
    crash points are reachable), and ``--reap-once`` runs a single
    reaper sweep instead of a pull loop (so reaper crash points fire in
    a killable subprocess, not inside the harness).
    """
    parser = argparse.ArgumentParser(prog="repro-service-worker")
    parser.add_argument("--service-dir", required=True)
    parser.add_argument("--lease-s", type=float, default=30.0)
    parser.add_argument("--retry-budget", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--poll-s", type=float, default=0.5)
    parser.add_argument("--cache", action="store_true")
    parser.add_argument(
        "--once", action="store_true",
        help="exit after at most one job (tests)",
    )
    parser.add_argument(
        "--once-timeout-s", type=float, default=30.0,
        help="give up waiting for a claimable job after this long "
        "(with --once)",
    )
    parser.add_argument(
        "--host-label", default=None,
        help="host part of the owner string (default: the real "
        "hostname) — lets one machine simulate a multi-host fleet",
    )
    parser.add_argument(
        "--clock-skew-s", type=float, default=0.0,
        help="run this process's table clock this many seconds ahead "
        "(negative: behind) of the shared wall clock",
    )
    parser.add_argument(
        "--submit-spec", default=None, metavar="JSON",
        help="submit this job spec (JSON) before pulling — dedup makes "
        "it idempotent",
    )
    parser.add_argument(
        "--reap-once", action="store_true",
        help="run one reaper sweep and exit instead of pulling jobs",
    )
    args = parser.parse_args(argv)

    service_dir = Path(args.service_dir)
    clock: Callable[[], float] = time.time
    if args.clock_skew_s:
        clock = crashpoints.skewed_clock(time.time, args.clock_skew_s)
    table = JobTable(
        service_dir / "jobs.sqlite3",
        lease_s=args.lease_s,
        retry_budget=args.retry_budget,
        clock=clock,
    )

    if args.submit_spec is not None:
        table.submit(validate_spec(json.loads(args.submit_spec)))

    if args.reap_once:
        from repro.service.reaper import Reaper

        Reaper(table).sweep()
        return 0

    worker = Worker(
        table,
        service_dir=service_dir,
        owner=default_owner(args.host_label),
        jobs=args.jobs,
        poll_s=args.poll_s,
        use_cache=args.cache,
    )

    def _sigterm(signum: int, frame: object) -> None:
        # The executor's own SIGTERM supervision drains the in-flight
        # sweep to the journal and raises InterruptedSweepError, which
        # _execute turns into an uncharged release.  This handler only
        # covers the idle window between jobs.
        worker.stop()

    signal.signal(signal.SIGTERM, _sigterm)
    if args.once:
        deadline = time.monotonic() + args.once_timeout_s
        while time.monotonic() < deadline:
            if worker.run_once():
                break
            time.sleep(args.poll_s)
    else:
        worker.run_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - use worker_main instead
    raise SystemExit(main())
