"""Subprocess entry point for one worker: ``python -m repro.service.worker_main``.

A separate module (not imported by ``repro.service.__init__``) so that
``-m`` execution does not re-run a module that is already in
``sys.modules`` — the stdlib's runpy warns about exactly that.  All
behaviour lives in :func:`repro.service.worker.main`.
"""

from repro.service.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
