"""The reaper: the only authority over expired leases.

A background thread that periodically sweeps the job table for leases
whose deadline has passed and applies the recovery policy
(:meth:`~repro.service.jobs.JobTable.requeue_expired`): requeue with
exponential backoff while the retry budget lasts, then a terminal
``failed`` with a typed ``job-failure`` envelope.

Everything stateful lives in the job table; the reaper itself holds
nothing, so running it twice (two service instances pointed at one
database, or a restart racing a leftover) is harmless — the
transactional requeue means each expired lease is recovered exactly
once.

For the same reason a *failed* sweep is harmless: the periodic loop
logs it, counts it and tries again next interval — a transient database
error (or an injected fault at the ``reaper.sweep`` crash point) must
never take the recovery authority down with it.
"""

from __future__ import annotations

import logging
import threading

from repro.faults import crashpoints
from repro.service.jobs import JobTable

__all__ = ["Reaper"]

logger = logging.getLogger(__name__)

_SWEEP_POINT = crashpoints.register_crashpoint(
    "reaper.sweep",
    "a recovery sweep is starting — a crash here must leave every "
    "expired lease recoverable by the next sweep",
    actions=("kill", "raise-operational", "raise-oserror"),
    scenario="reaper",
)


class Reaper(threading.Thread):
    """Periodically recover expired leases until stopped."""

    def __init__(self, table: JobTable, *, interval_s: float = 1.0):
        super().__init__(daemon=True, name="lease-reaper")
        self.table = table
        self.interval_s = interval_s
        #: lifetime counters, surfaced by /readyz for observability.
        self.requeued = 0
        self.failed = 0
        #: sweeps that raised (transient database trouble); the loop
        #: survives them and retries next interval.
        self.errors = 0
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sweep()
            except Exception:
                self.errors += 1
                logger.exception(
                    "reaper sweep failed; retrying in %.1fs", self.interval_s
                )

    def sweep(self) -> None:
        """One recovery pass (also callable directly, e.g. at startup)."""
        crashpoints.fire(_SWEEP_POINT)
        requeued, failed = self.table.requeue_expired()
        self.requeued += len(requeued)
        self.failed += len(failed)
        for job_id in requeued:
            logger.warning("lease expired: requeued job %s", job_id)
        for job_id in failed:
            logger.error(
                "lease expired with retry budget exhausted: "
                "job %s marked failed", job_id
            )

    def stop(self) -> None:
        self._stop.set()
