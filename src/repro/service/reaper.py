"""The reaper: the only authority over expired leases.

A background thread that periodically sweeps the job table for leases
whose deadline has passed and applies the recovery policy
(:meth:`~repro.service.jobs.JobTable.requeue_expired`): requeue with
exponential backoff while the retry budget lasts, then a terminal
``failed`` with a typed ``job-failure`` envelope.

Everything stateful lives in the job table; the reaper itself holds
nothing, so running it twice (two service instances pointed at one
database, or a restart racing a leftover) is harmless — the
transactional requeue means each expired lease is recovered exactly
once.
"""

from __future__ import annotations

import logging
import threading

from repro.service.jobs import JobTable

__all__ = ["Reaper"]

logger = logging.getLogger(__name__)


class Reaper(threading.Thread):
    """Periodically recover expired leases until stopped."""

    def __init__(self, table: JobTable, *, interval_s: float = 1.0):
        super().__init__(daemon=True, name="lease-reaper")
        self.table = table
        self.interval_s = interval_s
        #: lifetime counters, surfaced by /readyz for observability.
        self.requeued = 0
        self.failed = 0
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sweep()

    def sweep(self) -> None:
        """One recovery pass (also callable directly, e.g. at startup)."""
        requeued, failed = self.table.requeue_expired()
        self.requeued += len(requeued)
        self.failed += len(failed)
        for job_id in requeued:
            logger.warning("lease expired: requeued job %s", job_id)
        for job_id in failed:
            logger.error(
                "lease expired with retry budget exhausted: "
                "job %s marked failed", job_id
            )

    def stop(self) -> None:
        self._stop.set()
