"""The registry mapping job specs to experiment drivers.

A job spec is a plain dict — ``{"experiment": <name>, "params":
{...}}`` — small enough to content-address (:func:`~repro.service.jobs
.job_id_for`) and strict enough to refuse garbage before it is ever
enqueued: :func:`validate_spec` runs at submission time (the HTTP app
maps its typed :class:`~repro.errors.ServiceError` to a 400), so the
queue only ever holds executable work.

:func:`execute_spec` runs in the worker process.  Every runner drives
its experiment through a journal-armed
:class:`~repro.parallel.Executor` with ``resume="auto"``, which is the
entire crash-recovery story: a worker SIGKILLed mid-sweep leaves its
completed cells in the write-ahead journal under the batch's
content-derived run-id; the requeued attempt replays them and executes
only the remainder; and because journal replay is bit-identical to
execution (docs/resilience.md), the final serialized envelope is
**byte-identical** to an uninterrupted serial run — the property the
service-smoke CI job pins.

Runners return the *serialized schema-3 envelope text*, not a live
object: the job table stores exactly these bytes and the result
endpoint serves exactly these bytes, so byte-identity survives the
whole pipeline.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.errors import ServiceError

__all__ = ["RUNNERS", "execute_spec", "runner", "validate_spec"]

#: experiment name -> runner(params, journal_dir, jobs) -> envelope text.
RUNNERS: Dict[str, Callable[..., str]] = {}

#: experiment name -> {param name: type} accepted by that runner.
_PARAM_TYPES: Dict[str, Dict[str, type]] = {
    "fig11": {"rounds": int},
    "algorithm-sweep": {"algorithm": str, "step": int},
    "chaos": {"strategy": str, "plans": int, "seed": int, "blocks": int},
    "sanitize": {"strategy": str, "schedules": int, "seed": int, "blocks": int},
}


def runner(name: str) -> Callable:
    """Register an experiment runner under ``name``."""

    def register(fn: Callable[..., str]) -> Callable[..., str]:
        RUNNERS[name] = fn
        return fn

    return register


def validate_spec(spec: Any) -> Dict[str, Any]:
    """Check a submitted spec; returns it normalized or raises.

    Every refusal is a typed :class:`~repro.errors.ServiceError`
    (``kind="spec"``) naming what was wrong — the HTTP app serializes
    the message into the 400 response, so a client never has to guess.
    """
    if not isinstance(spec, dict):
        raise ServiceError(
            f"job spec must be a JSON object, got {type(spec).__name__}",
            kind="spec",
        )
    unknown = set(spec) - {"experiment", "params"}
    if unknown:
        raise ServiceError(
            f"job spec has unknown key(s) {sorted(unknown)}; "
            "allowed: 'experiment', 'params'",
            kind="spec",
        )
    experiment = spec.get("experiment")
    if experiment not in RUNNERS:
        raise ServiceError(
            f"unknown experiment {experiment!r}; known: "
            f"{', '.join(sorted(RUNNERS))}",
            kind="spec",
        )
    params = spec.get("params", {})
    if not isinstance(params, dict):
        raise ServiceError(
            f"'params' must be a JSON object, got {type(params).__name__}",
            kind="spec",
        )
    allowed = _PARAM_TYPES[experiment]
    for key, value in params.items():
        if key not in allowed:
            raise ServiceError(
                f"experiment {experiment!r} takes no parameter {key!r}; "
                f"allowed: {', '.join(sorted(allowed)) or '(none)'}",
                kind="spec",
            )
        # bool is an int subclass but never a valid count/seed here.
        if not isinstance(value, allowed[key]) or isinstance(value, bool):
            raise ServiceError(
                f"parameter {key!r} of experiment {experiment!r} must be "
                f"{allowed[key].__name__}, got {value!r}",
                kind="spec",
            )
    return {"experiment": experiment, "params": dict(params)}


def execute_spec(
    spec: Dict[str, Any],
    *,
    journal_dir: Union[str, Path],
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
) -> str:
    """Run one validated spec to its serialized result envelope.

    ``journal_dir`` arms the write-ahead journal (and ``resume="auto"``)
    on every batch the experiment runs — the crash-recovery contract.
    ``cache_dir`` optionally adds the content-addressed result cache, so
    overlapping sweeps share cell results across jobs.
    """
    from repro.parallel import Executor, ResultCache

    spec = validate_spec(spec)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    executor = Executor(jobs=jobs, cache=cache, journal_dir=journal_dir)
    fn = RUNNERS[spec["experiment"]]
    return fn(spec["params"], executor)


@runner("fig11")
def _fig11(params: Dict[str, Any], executor: Any) -> str:
    """The paper's micro-benchmark sweep (Fig. 11) → sweep envelope."""
    from repro.harness import experiments

    sweep = experiments.fig11(
        rounds=params.get("rounds", 200), executor=executor, resume="auto"
    )
    return sweep.to_json()


@runner("algorithm-sweep")
def _algorithm_sweep(params: Dict[str, Any], executor: Any) -> str:
    """One workload's block sweep (Figs. 13/14) → sweep envelope."""
    from repro.harness import experiments

    sweep = experiments.algorithm_sweep(
        params.get("algorithm", "fft"),
        step=params.get("step", 3),
        executor=executor,
        resume="auto",
    )
    return sweep.to_json()


@runner("chaos")
def _chaos(params: Dict[str, Any], executor: Any) -> str:
    """A seeded fault-plan campaign → chaos-report envelope."""
    from repro.faults import chaos_campaign
    from repro.sanitize import DEFAULT_SEED

    report = chaos_campaign(
        params.get("strategy", "gpu-lockfree"),
        plans=params.get("plans", 50),
        seed=params.get("seed", DEFAULT_SEED),
        num_blocks=params.get("blocks", 8),
        executor=executor,
        resume="auto",
    )
    return report.to_json()


@runner("sanitize")
def _sanitize(params: Dict[str, Any], executor: Any) -> str:
    """A fuzzed-schedule sanitizer run → sanitize-report envelope."""
    from repro.sanitize import DEFAULT_SEED, sanitize_run

    report = sanitize_run(
        strategy=params.get("strategy", "gpu-lockfree"),
        num_blocks=params.get("blocks", 8),
        seed=params.get("seed", DEFAULT_SEED),
        schedules=params.get("schedules", 25),
        executor=executor,
        resume="auto",
    )
    return report.to_json()
