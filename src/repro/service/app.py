"""The HTTP front door: submit, poll, fetch, drain.

Stdlib-only (``http.server.ThreadingHTTPServer``) so the service adds
no dependencies.  The wire protocol (docs/service.md):

* ``POST /jobs`` — body ``{"experiment": ..., "params": {...}}``.
  Validated *before* enqueueing (400 + typed message on a bad spec).
  Returns the ``job-status`` envelope: 201 for a new job, 200 for a
  content-addressed dedup hit (same config → same job, at most one
  execution).  A full queue is **explicit backpressure**: 429 with a
  ``Retry-After`` header, nothing enqueued.  While draining: 503.
* ``GET /jobs`` — ``{"schema": 3, "kind": "job-list", "jobs": [...]}``.
* ``GET /jobs/<id>`` — the ``job-status`` envelope (404 if unknown).
* ``GET /jobs/<id>/result`` — the stored schema-3 result envelope,
  byte-for-byte as the worker serialized it (200); a failed job serves
  its ``job-failure`` envelope with 409; a job still in flight is 404
  with the status envelope so pollers have one stop.
* ``GET /healthz`` — liveness: 200 whenever the process can answer.
* ``GET /readyz`` — readiness: 200 with queue counts and worker/reaper
  stats, 503 once draining (load balancers stop routing, in-flight
  work finishes).

``ServiceApp`` also owns the background machinery: the
:class:`~repro.service.reaper.Reaper` thread, and the worker
*subprocesses* it spawns and supervises — a worker that dies (SIGKILL,
OOM) is respawned while the reaper requeues whatever lease it held.
SIGTERM starts a graceful drain: readiness flips, submissions get 503,
workers receive SIGTERM (their executors drain in-flight cells to the
journal and hand jobs back uncharged), and the server exits once they
are gone.  A restarted service needs no recovery step beyond the
reaper's first sweep: the job table and the journals *are* the
in-flight state.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError
from repro.serialization import dump_job_status, dump_result
from repro.service.jobs import JobTable
from repro.service.reaper import Reaper
from repro.service.runners import validate_spec

__all__ = ["ServiceApp", "serve"]

#: seconds a drain waits for workers to hand their jobs back.
_DRAIN_GRACE_S = 30.0


def _error_body(exc: ServiceError) -> str:
    """A typed refusal as a ``service-error`` envelope."""
    return dump_result(
        "service-error", {"error": {"kind": exc.kind, "message": str(exc)}}
    )


class ServiceApp:
    """One service instance: job table + reaper + workers + HTTP server.

    ``workers=0`` starts no worker processes — useful when workers run
    elsewhere (other hosts pointing at a shared directory, or a test
    driving :class:`~repro.service.worker.Worker` inline).
    """

    def __init__(
        self,
        service_dir: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        lease_s: float = 30.0,
        retry_budget: int = 2,
        max_queued: Optional[int] = 256,
        reap_interval_s: float = 1.0,
        worker_jobs: int = 1,
        worker_poll_s: float = 0.5,
        use_cache: bool = False,
    ):
        self.service_dir = Path(service_dir)
        self.service_dir.mkdir(parents=True, exist_ok=True)
        self.table = JobTable(
            self.service_dir / "jobs.sqlite3",
            lease_s=lease_s,
            retry_budget=retry_budget,
            max_queued=max_queued,
        )
        self.reaper = Reaper(self.table, interval_s=reap_interval_s)
        self.workers = workers
        self.worker_jobs = worker_jobs
        self.worker_poll_s = worker_poll_s
        self.use_cache = use_cache
        self.lease_s = lease_s
        self.retry_budget = retry_budget
        self.draining = False
        self.started_at = time.time()
        self._procs: List[subprocess.Popen] = []
        self._supervisor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        handler = _make_handler(self)
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True

    # -- addresses -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[0], self.server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- worker supervision --------------------------------------------------

    def _spawn_worker(self) -> subprocess.Popen:
        cmd = [
            sys.executable, "-m", "repro.service.worker_main",
            "--service-dir", str(self.service_dir),
            "--lease-s", str(self.lease_s),
            "--retry-budget", str(self.retry_budget),
            "--jobs", str(self.worker_jobs),
            "--poll-s", str(self.worker_poll_s),
        ]
        if self.use_cache:
            cmd.append("--cache")
        return subprocess.Popen(cmd)

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (for ops and chaos tests)."""
        return [p.pid for p in self._procs if p.poll() is None]

    def _supervise(self) -> None:
        """Respawn dead workers until draining.

        A SIGKILLed worker's lease is the reaper's problem; replacing
        the process is this loop's.  Together they make worker death a
        delay, not a loss.
        """
        while not self._stop.wait(0.5):
            if self.draining:
                return
            for i, proc in enumerate(self._procs):
                if proc.poll() is not None and not self.draining:
                    self._procs[i] = self._spawn_worker()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the reaper, the workers, and the HTTP server thread."""
        # Recover whatever a previous instance left leased: on a cold
        # start every lease in the table is from a dead worker.
        self.reaper.sweep()
        self.reaper.start()
        self._procs = [self._spawn_worker() for _ in range(self.workers)]
        if self._procs:
            self._supervisor = threading.Thread(
                target=self._supervise, daemon=True, name="worker-supervisor"
            )
            self._supervisor.start()
        self._server_thread = threading.Thread(
            target=self.server.serve_forever, daemon=True, name="http-server"
        )
        self._server_thread.start()

    def drain(self, grace_s: float = _DRAIN_GRACE_S) -> None:
        """Graceful shutdown: refuse new work, let workers hand back.

        Readiness flips immediately; workers get SIGTERM (their
        executors drain in-flight cells to the journal and release
        their jobs uncharged); after ``grace_s`` any straggler is
        killed — its lease then expires and the *next* service
        instance's reaper requeues it, so even an ungraceful drain
        loses nothing.
        """
        self.draining = True
        self._stop.set()
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + grace_s
        for proc in self._procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(remaining, 0.1))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.reaper.stop()
        self.server.shutdown()
        self.server.server_close()

    # -- request handling (called from handler threads) ----------------------

    def handle_submit(self, body: bytes) -> Tuple[int, Dict[str, str], str]:
        if self.draining:
            return 503, {}, _error_body(
                ServiceError("service is draining; resubmit to the next "
                             "instance", kind="draining")
            )
        try:
            spec = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {}, _error_body(
                ServiceError(f"request body is not valid JSON: {exc}",
                             kind="spec")
            )
        try:
            spec = validate_spec(spec)
            job, created = self.table.submit(spec)
        except ServiceError as exc:
            if exc.kind == "queue-full":
                return 429, {"Retry-After": "5"}, _error_body(exc)
            return 400, {}, _error_body(exc)
        headers = {"Location": f"/jobs/{job['id']}"}
        return (201 if created else 200), headers, dump_job_status(job)

    def handle_status(self, job_id: str) -> Tuple[int, Dict[str, str], str]:
        job = self.table.get(job_id)
        if job is None:
            return 404, {}, _error_body(
                ServiceError(f"no job {job_id!r}", kind="not-found")
            )
        return 200, {}, dump_job_status(job)

    def handle_result(self, job_id: str) -> Tuple[int, Dict[str, str], str]:
        job = self.table.get(job_id)
        if job is None:
            return 404, {}, _error_body(
                ServiceError(f"no job {job_id!r}", kind="not-found")
            )
        if job["state"] == "done":
            return 200, {}, job["result"]
        if job["state"] == "failed":
            return 409, {}, job["error"]
        return 404, {}, dump_job_status(job)

    def handle_list(self) -> Tuple[int, Dict[str, str], str]:
        jobs = [
            json.loads(dump_job_status(job)) for job in self.table.list_jobs()
        ]
        return 200, {}, dump_result("job-list", {"jobs": jobs})

    def handle_healthz(self) -> Tuple[int, Dict[str, str], str]:
        return 200, {}, dump_result("health", {"ok": True})

    def handle_readyz(self) -> Tuple[int, Dict[str, str], str]:
        body = {
            "ready": not self.draining,
            "draining": self.draining,
            "counts": self.table.counts(),
            "workers": len(self.worker_pids()),
            "reaper": {
                "requeued": self.reaper.requeued,
                "failed": self.reaper.failed,
                "errors": self.reaper.errors,
            },
            "uptime_s": round(time.time() - self.started_at, 3),
        }
        return (503 if self.draining else 200), {}, dump_result("ready", body)


def _make_handler(app: ServiceApp) -> type:
    """Bind a BaseHTTPRequestHandler subclass to one app instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve"
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # the service logs through `logging`, not stderr spam

        def _send(
            self, status: int, headers: Dict[str, str], body: str
        ) -> None:
            data = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for key, value in headers.items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                self._send(*app.handle_healthz())
            elif path == "/readyz":
                self._send(*app.handle_readyz())
            elif path == "/jobs":
                self._send(*app.handle_list())
            elif path.startswith("/jobs/"):
                parts = path[len("/jobs/"):].split("/")
                if len(parts) == 1:
                    self._send(*app.handle_status(parts[0]))
                elif len(parts) == 2 and parts[1] == "result":
                    self._send(*app.handle_result(parts[0]))
                else:
                    self._send(404, {}, _error_body(
                        ServiceError(f"no route {path!r}", kind="not-found")
                    ))
            else:
                self._send(404, {}, _error_body(
                    ServiceError(f"no route {path!r}", kind="not-found")
                ))

        def do_POST(self) -> None:
            path = self.path.rstrip("/")
            if path != "/jobs":
                self._send(404, {}, _error_body(
                    ServiceError(f"no route {path!r}", kind="not-found")
                ))
                return
            length = int(self.headers.get("Content-Length", "0") or "0")
            body = self.rfile.read(length) if length else b""
            self._send(*app.handle_submit(body))

    return Handler


def serve(
    service_dir: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: int = 1,
    lease_s: float = 30.0,
    retry_budget: int = 2,
    max_queued: Optional[int] = 256,
    worker_jobs: int = 1,
    use_cache: bool = False,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    The blocking entry point behind ``repro serve``.  Returns 0 after a
    clean drain.
    """
    app = ServiceApp(
        service_dir,
        host=host,
        port=port,
        workers=workers,
        lease_s=lease_s,
        retry_budget=retry_budget,
        max_queued=max_queued,
        worker_jobs=worker_jobs,
        use_cache=use_cache,
    )
    stop = threading.Event()

    def _signal(signum: int, frame: object) -> None:
        stop.set()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, _signal)
    app.start()
    print(
        f"repro serve: listening on {app.url} "
        f"({workers} worker(s), lease {lease_s}s, "
        f"queue cap {max_queued if max_queued is not None else 'none'}) "
        f"— jobs under {app.service_dir}",
        flush=True,
    )
    try:
        stop.wait()
    finally:
        print("repro serve: draining...", flush=True)
        app.drain()
        for sig, old in previous.items():
            signal.signal(sig, old)
        print("repro serve: drained, bye", flush=True)
    return 0
