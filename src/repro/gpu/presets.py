"""Device presets beyond the paper's GTX 280.

:func:`gtx280` (in :mod:`repro.gpu.config`) is the calibrated testbed.
This module adds an **illustrative Fermi-class preset** for the
what-would-change-a-generation-later study
(``benchmarks/bench_generations.py``).  Fermi (GTX 480, 2010) matters to
this paper's story because it changed exactly the quantities the
barriers are made of:

* global atomics became L2-cached — roughly 3× cheaper;
* more, wider SMs (15 × 32 SPs) with 48 KB shared memory each;
* kernel launch overheads dropped.

The Fermi numbers here are era-plausible estimates, **not** calibrated
against measurements the way the GTX 280 preset is; the generations
bench only draws qualitative conclusions from them (which crossovers
move in which direction), never absolute ones.
"""

from __future__ import annotations

from repro.gpu.config import DeviceConfig
from repro.model.calibration import CalibratedTimings

__all__ = ["fermi_class"]


def fermi_class() -> DeviceConfig:
    """An illustrative GTX-480-like device (see module docstring)."""
    timings = CalibratedTimings(
        host_launch_ns=4_500,  # leaner driver path
        host_async_call_ns=1_500,
        kernel_setup_ns=2_000,
        kernel_teardown_ns=2_000,
        atomic_ns=80,  # L2-cached atomics: ~3x cheaper
        spin_read_ns=140,  # L2 hit for the spin observation
        global_read_ns=140,
        global_write_ns=220,
        syncthreads_ns=100,
        tree_level_overhead_ns=240,
        lockfree_overhead_ns=220,
    )
    return DeviceConfig(
        name="Fermi-class (illustrative)",
        num_sms=15,
        sps_per_sm=32,
        clock_mhz=1401,
        shared_mem_per_sm=48 * 1024,
        registers_per_sm=32 * 1024,
        global_mem_bytes=1536 * 1024**2,
        global_bandwidth_gbps=177.4,
        pcie_gbps=8.0,
        max_threads_per_block=1024,
        max_threads_per_sm=1536,
        max_blocks_per_sm=8,
        timings=timings,
    )
