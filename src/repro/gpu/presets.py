"""The device-preset registry: every modeled machine behind one API.

Mirrors :func:`repro.sync.get_strategy`: presets register a factory
under a name, :func:`get_preset` instantiates one, and
:func:`preset_names` lists them.  Five presets ship (``docs/topology.md``
walks through the topology model behind the last three):

``gtx280``
    The paper's calibrated testbed — 30 SMs, one-block-per-SM exclusive
    co-residency, no interconnect.  The default everywhere.

``fermi_class``
    An **illustrative** GTX-480-like device for the
    what-would-change-a-generation-later study
    (``benchmarks/bench_generations.py``).  Fermi matters to this
    paper's story because it changed exactly the quantities the barriers
    are made of: L2-cached atomics (~3x cheaper), more and wider SMs
    (15 x 32 SPs, 48 KB shared each), leaner launch overheads.  The
    numbers are era-plausible estimates, **not** calibrated; the
    generations bench draws only qualitative conclusions from them.

``grid_sync``
    A cooperative-groups-class device (post-Volta independent thread
    scheduling): blocks co-reside on SMs up to the occupancy limits
    instead of one-per-SM, so device barriers synchronize grids far
    larger than ``num_sms`` — the ``cudaLaunchCooperativeKernel``
    world of arXiv 2004.05371.

``dual_gpu``
    Two GTX-280-class devices behind one logical config (60 SMs in two
    sync domains).  Lock-free and tree barriers work unchanged, but
    every cross-device arrival — a remote atomic, observing a flag
    homed on the other device — pays a modeled interconnect latency.

``riscv_cluster_1024``
    A 1024-core RISC-V manycore (64 core-clusters of 16 cores, grouped
    into 16 sync domains, arXiv 2307.10248 style): cheap local
    synchronization inside a cluster group, an expensive global
    interconnect between groups.  Pair it with the hierarchical
    ``gpu-cluster-tree`` barrier (local phase, then global phase).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig
from repro.gpu.topology import Topology
from repro.model.calibration import CalibratedTimings

__all__ = [
    "fermi_class",
    "get_preset",
    "preset_names",
    "register_preset",
    "resolve_timing_context",
]

_REGISTRY: Dict[str, Callable[[], DeviceConfig]] = {}


def register_preset(name: str, factory: Callable[[], DeviceConfig]) -> None:
    """Register a preset factory under ``name`` (overwrites allowed)."""
    _REGISTRY[name] = factory


def get_preset(
    name: str, *, timings: Optional[CalibratedTimings] = None
) -> DeviceConfig:
    """Instantiate a registered device preset by name.

    ``timings`` (keyword-only) swaps in different calibrated timing
    parameters, like :meth:`DeviceConfig.with_timings`.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; known: {', '.join(preset_names())}"
        ) from None
    config = factory()
    if timings is not None:
        config = config.with_timings(timings)
    return config


def preset_names() -> List[str]:
    """All registered preset names, sorted."""
    return sorted(_REGISTRY)


def resolve_timing_context(name: str) -> "tuple[CalibratedTimings, Topology]":
    """A preset's ``(calibrated timings, topology)`` for the model layer.

    The analytic models (:mod:`repro.model`) consume exactly these two
    ingredients of a device; resolving them through one seam keeps the
    advisor and ``repro tune`` from re-deriving them ad hoc — and gives
    tests a single point to stub a preset's timing context.
    """
    config = get_preset(name)
    return config.timings, config.topology


# ---------------------------------------------------------------------------
# The shipped presets
# ---------------------------------------------------------------------------


def _gtx280() -> DeviceConfig:
    """The paper's testbed GPU (the DeviceConfig defaults)."""
    return DeviceConfig()


def _fermi_class() -> DeviceConfig:
    """An illustrative GTX-480-like device (see module docstring)."""
    timings = CalibratedTimings(
        host_launch_ns=4_500,  # leaner driver path
        host_async_call_ns=1_500,
        kernel_setup_ns=2_000,
        kernel_teardown_ns=2_000,
        atomic_ns=80,  # L2-cached atomics: ~3x cheaper
        spin_read_ns=140,  # L2 hit for the spin observation
        global_read_ns=140,
        global_write_ns=220,
        syncthreads_ns=100,
        tree_level_overhead_ns=240,
        lockfree_overhead_ns=220,
    )
    return DeviceConfig(
        name="Fermi-class (illustrative)",
        num_sms=15,
        sps_per_sm=32,
        clock_mhz=1401,
        shared_mem_per_sm=48 * 1024,
        registers_per_sm=32 * 1024,
        global_mem_bytes=1536 * 1024**2,
        global_bandwidth_gbps=177.4,
        pcie_gbps=8.0,
        max_threads_per_block=1024,
        max_threads_per_sm=1536,
        max_blocks_per_sm=8,
        timings=timings,
    )


def _grid_sync() -> DeviceConfig:
    """A cooperative-groups-class device (post-Volta scheduling).

    The interesting bit is the topology, not the raw size: cooperative
    co-residency lifts the paper's one-block-per-SM rule, so device
    barriers validate against the launched shape's real co-resident
    capacity and grids larger than ``num_sms`` synchronize fine.
    Timings are era-plausible (cheap L2 atomics, fast launches),
    uncalibrated — comparisons against ``gtx280`` are qualitative.
    """
    timings = CalibratedTimings(
        host_launch_ns=3_000,
        host_async_call_ns=1_000,
        kernel_setup_ns=1_500,
        kernel_teardown_ns=1_500,
        atomic_ns=40,
        spin_read_ns=80,
        global_read_ns=80,
        global_write_ns=120,
        syncthreads_ns=60,
        tree_level_overhead_ns=160,
        lockfree_overhead_ns=150,
    )
    return DeviceConfig(
        name="Grid-sync class (cooperative groups)",
        num_sms=80,
        sps_per_sm=64,
        clock_mhz=1530,
        shared_mem_per_sm=96 * 1024,
        registers_per_sm=64 * 1024,
        global_mem_bytes=16 * 1024**3,
        global_bandwidth_gbps=900.0,
        pcie_gbps=16.0,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        timings=timings,
        topology=Topology(
            kind="single-device", num_domains=1, co_residency="cooperative"
        ),
    )


def _dual_gpu() -> DeviceConfig:
    """Two GTX-280-class devices behind one logical config.

    ``num_sms`` counts SMs across the whole system; the topology
    partitions blocks into one domain per device and charges every
    cross-device arrival ~1.5 us of interconnect latency (a PCIe-era
    peer-to-peer hop).  Everything else keeps the calibrated GTX 280
    numbers, so single-domain grids reproduce the paper exactly.
    """
    return DeviceConfig(
        name="Dual GTX 280 (modeled interconnect)",
        num_sms=60,
        global_mem_bytes=2 * 1024**3,
        topology=Topology(
            kind="multi-device",
            num_domains=2,
            co_residency="exclusive",
            crossing_ns=1_500,
        ),
    )


def _riscv_cluster_1024() -> DeviceConfig:
    """A 1024-core RISC-V manycore with clustered sync domains.

    64 core-clusters of 16 cores (one "SM" = one cluster, its 16 cores
    folded into the block cost model, exactly as warps are on the GPU
    presets), grouped into 16 sync domains of 4 clusters each.  Local
    traffic is near-memory cheap; crossing the global interconnect
    costs ~250 ns.  Exclusive co-residency: one block per cluster.
    """
    timings = CalibratedTimings(
        host_launch_ns=2_000,
        host_async_call_ns=600,
        kernel_setup_ns=1_000,
        kernel_teardown_ns=1_000,
        atomic_ns=40,  # near-memory LR/SC at the cluster scratchpad
        spin_read_ns=30,
        global_read_ns=60,
        global_write_ns=90,
        syncthreads_ns=40,
        tree_level_overhead_ns=120,
        lockfree_overhead_ns=100,
    )
    return DeviceConfig(
        name="RISC-V manycore (1024 cores, 64 clusters)",
        num_sms=64,
        sps_per_sm=16,
        clock_mhz=1000,
        shared_mem_per_sm=128 * 1024,
        registers_per_sm=32 * 1024,
        global_mem_bytes=4 * 1024**3,
        global_bandwidth_gbps=256.0,
        pcie_gbps=16.0,
        max_threads_per_block=512,
        max_threads_per_sm=512,
        max_blocks_per_sm=4,
        timings=timings,
        topology=Topology(
            kind="cluster",
            num_domains=16,
            co_residency="exclusive",
            crossing_ns=250,
        ),
    )


register_preset("gtx280", _gtx280)
register_preset("fermi_class", _fermi_class)
register_preset("grid_sync", _grid_sync)
register_preset("dual_gpu", _dual_gpu)
register_preset("riscv_cluster_1024", _riscv_cluster_1024)


def fermi_class() -> DeviceConfig:
    """Deprecated spelling of the Fermi-class preset.

    Use :func:`get_preset`\\ ``("fermi_class")``.  This shim forwards
    unchanged and emits a :class:`DeprecationWarning`.
    """
    warnings.warn(
        "fermi_class() is deprecated; use get_preset('fermi_class') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_preset("fermi_class")
