"""Per-cell serialization of global-memory atomic operations.

Hardware atomics to the *same* address serialize (read-modify-write at
the memory controller) while atomics to different addresses may proceed
in parallel through different partitions.  The paper's cost models depend
on exactly this: GPU simple sync pays ``N·t_a`` because all N blocks hit
one mutex (Eq. 6), while the tree barrier's groups update *different*
mutexes concurrently (Eq. 7).

We model it with one FIFO :class:`~repro.simcore.resource.Resource` per
``(array, flat index)`` cell, created lazily.  An ablation bench replaces
this with a single device-wide unit to show the tree advantage vanish.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.simcore.resource import Resource

__all__ = ["AtomicRegistry"]


class AtomicRegistry:
    """Lazily-created per-cell FIFO resources for atomic operations."""

    def __init__(self, device_wide: bool = False):
        #: if True, all atomics share one unit (ablation mode).
        self.device_wide = device_wide
        self._cells: Dict[Tuple[str, int], Resource] = {}
        self._global_unit = Resource("atomic-unit", capacity=1)
        #: total atomic operations issued (diagnostics / tests).
        self.ops = 0
        #: atomic ops whose store was lost to an injected ``atomic-drop``
        #: fault (:mod:`repro.faults`); always 0 on unarmed devices.
        self.faulted_ops = 0

    def unit_for(self, array_name: str, index: int) -> Resource:
        """The serialization resource guarding one cell."""
        if self.device_wide:
            return self._global_unit
        key = (array_name, int(index))
        unit = self._cells.get(key)
        if unit is None:
            unit = Resource(f"atomic:{array_name}[{index}]", capacity=1)
            self._cells[key] = unit
        return unit

    @property
    def distinct_cells(self) -> int:
        """Number of cells that have seen at least one atomic."""
        return len(self._cells)
