"""Discrete-event model of a CUDA-2.x-class GPU (GTX 280 by default).

The model reproduces the execution semantics the paper's argument rests
on (see DESIGN.md §2):

* blocks are **non-preemptive** and scheduled onto SMs subject to
  occupancy limits (shared memory, registers, threads, a hard per-SM
  block cap) — :mod:`repro.gpu.scheduler`;
* global-memory **atomics serialize per cell** through FIFO resources —
  :mod:`repro.gpu.atomics`;
* stores to global memory **wake spinning readers** via signals —
  :mod:`repro.gpu.memory`;
* kernel launches are **asynchronous and stream-ordered**, so back-to-back
  launches pipeline (CPU implicit sync) unless the host synchronizes
  between them (CPU explicit sync) — :mod:`repro.gpu.host`.

Kernels are *device programs*: Python generator functions of the form
``def program(ctx: BlockCtx) -> Generator`` that use the :class:`BlockCtx`
helpers (``compute``, ``gread``, ``gwrite``, ``atomic_add``,
``spin_until``, ``syncthreads``) to interact with the device.
"""

from repro.gpu.config import DeviceConfig, gtx280
from repro.gpu.context import BlockCtx
from repro.gpu.costmodel import StageCostModel
from repro.gpu.device import Device
from repro.gpu.host import Host, KernelHandle
from repro.gpu.kernel import KernelSpec
from repro.gpu.memory import GlobalArray, GlobalMemory
from repro.gpu.presets import get_preset, preset_names, register_preset
from repro.gpu.stream import Event, Stream
from repro.gpu.topology import Topology

__all__ = [
    "BlockCtx",
    "Device",
    "DeviceConfig",
    "Event",
    "GlobalArray",
    "GlobalMemory",
    "Host",
    "KernelHandle",
    "KernelSpec",
    "StageCostModel",
    "Stream",
    "Topology",
    "get_preset",
    "gtx280",
    "preset_names",
    "register_preset",
]
