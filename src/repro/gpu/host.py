"""The host CPU: asynchronous kernel launches and stream semantics.

This module is where the difference between the paper's **CPU explicit**
and **CPU implicit** synchronization lives (paper §4.1–4.2, Figs. 2–3):

* :meth:`Host.launch` models ``kernel<<<...>>>()``: the call occupies the
  host for ``host_async_call_ns`` and returns; the launch command keeps
  travelling for the rest of ``host_launch_ns`` *concurrently with
  whatever the device is doing*.  Back-to-back launches therefore
  pipeline — the implicit-sync geometry of Fig. 3.
* :meth:`Host.synchronize` models ``cudaThreadSynchronize()``: the host
  blocks until the stream drains.  A launch issued afterwards exposes its
  full ``host_launch_ns`` on the critical path — the explicit-sync
  geometry of Fig. 2(a).

Host *programs* are generators (like device programs) spawned onto the
same engine, so host/device overlap falls out of the event ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, List, Optional

from repro.errors import LaunchError
from repro.gpu.kernel import KernelSpec
from repro.gpu.stream import Event, Stream
from repro.simcore.effects import Delay, Join, Spawn, WaitUntil
from repro.simcore.process import Process
from repro.simcore.signal import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device

__all__ = ["Event", "Host", "KernelHandle", "Stream"]


@dataclass
class KernelHandle:
    """Runtime record of one kernel launch."""

    spec: KernelSpec
    arrival_signal: Signal = field(default_factory=lambda: Signal("launch"))
    arrived: bool = False
    process: Optional[Process] = None
    issued_ns: Optional[int] = None  #: when the host call started
    start_ns: Optional[int] = None  #: when the device began setup
    end_ns: Optional[int] = None  #: when teardown finished
    #: block processes, populated at dispatch (watchdog-kill support).
    block_processes: list = field(default_factory=list)
    #: True when the watchdog aborted this kernel.
    killed: bool = False

    @property
    def done(self) -> bool:
        """True once the kernel drained normally (killed kernels never are)."""
        return self.end_ns is not None and not self.killed

    @property
    def duration_ns(self) -> Optional[int]:
        """Device-side duration (setup through teardown), if finished."""
        if self.start_ns is None or self.end_ns is None:
            return None
        return self.end_ns - self.start_ns


class Host:
    """The host CPU attached to one device, issuing launches in-order.

    Supports multiple :class:`~repro.gpu.stream.Stream` handles and
    ``cudaEvent``-style :class:`~repro.gpu.stream.Event` objects, with
    the device's pre-Fermi single kernel engine serializing all kernels
    in issue order regardless of stream (see :mod:`repro.gpu.stream`).
    """

    def __init__(self, device: "Device"):
        self.device = device
        self.default_stream = Stream("default")
        #: tail of the device's issue-order FIFO (kernels + event markers).
        self._engine_tail: Optional[Process] = None
        #: all launches in issue order (diagnostics).
        self.launches: List[KernelHandle] = []
        #: sticky error from a watchdog-killed kernel (cudaGetLastError).
        self.last_error: Optional[str] = None

    # -- host program helpers (use with ``yield from``) ----------------------

    def launch(
        self,
        spec: KernelSpec,
        stream: Optional[Stream] = None,
        wait_event: Optional[Event] = None,
    ) -> Generator:
        """Asynchronously launch a kernel; returns its :class:`KernelHandle`.

        ``stream`` selects the launch queue (default stream if omitted);
        ``wait_event`` gates the kernel on an event, head-of-line (the
        pre-Fermi engine blocks everything behind it).  Validates
        occupancy eagerly so impossible launches fail fast with
        :class:`repro.errors.OccupancyError` instead of deadlocking.
        """
        self.device.scheduler.validate(spec)
        stream = stream or self.default_stream
        timings = self.device.config.timings
        handle = KernelHandle(spec, Signal(f"launch:{spec.name}"))
        handle.issued_ns = self.device.engine.now

        # The synchronous slice of the launch call (driver work).
        yield Delay(timings.host_async_call_ns)

        # The rest of the command transfer overlaps device execution.
        remaining = max(0, timings.host_launch_ns - timings.host_async_call_ns)
        yield Spawn(self._transfer(handle, remaining), f"xfer:{spec.name}")

        process = yield Spawn(
            self.device.kernel_process(handle, self._engine_tail, wait_event),
            f"kernel:{spec.name}",
        )
        handle.process = process
        self._engine_tail = process
        stream.last_process = process
        self.launches.append(handle)
        return handle

    def synchronize(self) -> Generator:
        """``cudaThreadSynchronize()``: block until the device drains.

        If a watchdog killed a kernel since the last check, the failure
        is latched into :attr:`last_error` (read it with
        :meth:`get_last_error`), like the real API's sticky error state.
        """
        if self._engine_tail is not None:
            result = yield Join(self._engine_tail, reason="cudaThreadSynchronize")
            self._note_cancellation(result)
        return None

    def stream_synchronize(self, stream: Stream) -> Generator:
        """``cudaStreamSynchronize()``: block until one stream drains."""
        if stream.last_process is not None:
            result = yield Join(
                stream.last_process, reason=f"cudaStreamSynchronize {stream.name}"
            )
            self._note_cancellation(result)
        return None

    def get_last_error(self) -> Optional[str]:
        """``cudaGetLastError()``: return and clear the sticky error."""
        error, self.last_error = self.last_error, None
        return error

    def _note_cancellation(self, join_result) -> None:
        from repro.simcore.process import Cancelled

        if isinstance(join_result, Cancelled):
            self.last_error = join_result.reason

    def record_event(
        self, event: Event, stream: Optional[Stream] = None
    ) -> Generator:
        """``cudaEventRecord``: mark ``event`` when the stream reaches it."""
        if event.recorded:
            raise LaunchError(f"event {event.name!r} was already recorded")
        stream = stream or self.default_stream
        predecessor = self._engine_tail

        def marker() -> Generator:
            if predecessor is not None:
                yield Join(predecessor, reason=f"event marker {event.name}")
            event.recorded = True
            event.timestamp_ns = self.device.engine.now
            self.device.engine.fire(event.signal)

        process = yield Spawn(marker(), f"event:{event.name}")
        self._engine_tail = process
        stream.last_process = process
        return event

    def event_synchronize(self, event: Event) -> Generator:
        """``cudaEventSynchronize``: block the host until the event fires."""
        yield WaitUntil(
            event.signal, lambda: event.recorded, f"event {event.name}"
        )
        return None

    def memcpy_h2d(self, array, data) -> Generator:
        """``cudaMemcpy`` host→device: synchronous, stream-ordered.

        Drains the stream (cudaMemcpy's implicit synchronization), then
        charges the driver overhead plus ``nbytes / pcie_gbps`` before
        the data lands in the device array.  The paper's figures exclude
        transfer time; this exists for end-to-end application modeling.
        """
        yield from self.synchronize()
        timings = self.device.config.timings
        nbytes = getattr(data, "nbytes", len(data))
        yield Delay(
            timings.memcpy_overhead_ns + nbytes / self.device.config.pcie_gbps
        )
        array.store(slice(None), data)

    def memcpy_d2h(self, array) -> Generator:
        """``cudaMemcpy`` device→host: synchronous; returns a host copy."""
        yield from self.synchronize()
        timings = self.device.config.timings
        yield Delay(
            timings.memcpy_overhead_ns
            + array.nbytes / self.device.config.pcie_gbps
        )
        return array.data.copy()

    def wait_for(self, handle: KernelHandle) -> Generator:
        """Block until one specific kernel finishes."""
        if handle.process is None:
            raise LaunchError("kernel handle was never launched")
        yield Join(handle.process, reason=f"wait {handle.spec.name}")
        return None

    # -- internals -------------------------------------------------------------

    def _transfer(self, handle: KernelHandle, remaining_ns: int) -> Generator:
        """The launch command's journey to the device after the call returns."""
        if remaining_ns > 0:
            yield Delay(remaining_ns)
        handle.arrived = True
        self.device.engine.fire(handle.arrival_signal)
