"""Declarative model of where threads live (the sync domains of a device).

The paper's barriers assume one GTX 280: a flat bag of SMs where every
block reaches every other block at uniform cost and co-residency means
one block per SM.  A :class:`Topology` makes those assumptions explicit
and overridable, so the same :class:`~repro.sync.base.SyncStrategy`
implementations resolve *costs* and *reachability* through the topology
instead of hard-coding the single-device rules:

* ``kind="single-device"`` — the paper's world.  One sync domain,
  zero crossing latency.
* ``kind="multi-device"`` — several devices behind one logical config
  (``num_sms`` counts SMs across the whole system).  Blocks are
  partitioned into one domain per device; traffic that crosses domains
  (a remote ``atomicAdd``, observing a flag homed on the other device)
  pays ``crossing_ns`` of modeled interconnect latency.
* ``kind="cluster"`` — a many-core chip whose cores sit in clusters
  with cheap local synchronization and an expensive global interconnect
  (the 1024-core RISC-V cluster machines).  Domains are clusters;
  hierarchical barriers (:class:`~repro.sync.cluster.GpuClusterTreeSync`)
  run a local phase per domain, then a global phase.

Co-residency is likewise a policy, not a constant:

* ``co_residency="exclusive"`` — the paper's §5 rule: device barriers
  claim an SM's full shared memory so at most one block runs per SM and
  a device-wide barrier can never deadlock below ``num_sms`` blocks.
* ``co_residency="cooperative"`` — post-Volta cooperative-groups
  scheduling: blocks co-reside up to the occupancy limits, and the
  launch is validated against the *actual* co-resident capacity of the
  requested block shape (the ``cudaLaunchCooperativeKernel`` rule)
  rather than one-block-per-SM.

Everything here is pure data + arithmetic: topologies are frozen,
hashable, and serialize through
:func:`repro.serialization.device_config_to_dict` like the rest of the
device config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.config import DeviceConfig

__all__ = ["CO_RESIDENCY_POLICIES", "TOPOLOGY_KINDS", "Topology"]

#: the three modeled thread layouts.
TOPOLOGY_KINDS = ("single-device", "multi-device", "cluster")

#: how blocks share an SM: the paper's one-block-per-SM rule, or
#: post-Volta cooperative co-residency up to the occupancy limits.
CO_RESIDENCY_POLICIES = ("exclusive", "cooperative")


@dataclass(frozen=True)
class Topology:
    """Where a device's threads live, and what crossing domains costs."""

    #: one of :data:`TOPOLOGY_KINDS`.
    kind: str = "single-device"
    #: synchronization domains: devices (``multi-device``) or clusters
    #: (``cluster``).  ``single-device`` always has exactly one.
    num_domains: int = 1
    #: one of :data:`CO_RESIDENCY_POLICIES`.
    co_residency: str = "exclusive"
    #: extra latency (ns) paid by traffic that leaves its domain — a
    #: remote atomic, a store to (or spin observation of) memory homed
    #: in another domain.  Zero within a domain, always.
    crossing_ns: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology kind {self.kind!r}; "
                f"expected one of {TOPOLOGY_KINDS}"
            )
        if self.co_residency not in CO_RESIDENCY_POLICIES:
            raise ConfigError(
                f"unknown co-residency policy {self.co_residency!r}; "
                f"expected one of {CO_RESIDENCY_POLICIES}"
            )
        if self.num_domains < 1:
            raise ConfigError(
                f"num_domains must be >= 1, got {self.num_domains}"
            )
        if self.kind == "single-device":
            if self.num_domains != 1:
                raise ConfigError(
                    "a single-device topology has exactly one domain, "
                    f"got {self.num_domains}"
                )
            if self.crossing_ns != 0:
                raise ConfigError(
                    "a single-device topology has no interconnect to "
                    f"cross; crossing_ns must be 0, got {self.crossing_ns}"
                )
        elif self.num_domains < 2:
            raise ConfigError(
                f"a {self.kind} topology needs >= 2 domains, "
                f"got {self.num_domains}"
            )
        if self.crossing_ns < 0:
            raise ConfigError(
                f"crossing_ns must be non-negative, got {self.crossing_ns}"
            )

    # -- block placement -----------------------------------------------------

    def domain_of(self, block_id: int, num_blocks: int) -> int:
        """The sync domain hosting ``block_id`` of a ``num_blocks`` grid.

        Blocks are partitioned contiguously and near-evenly across the
        domains (block 0's run of blocks lands on domain 0, and so on) —
        deterministic, placement-independent, and matching how a
        multi-device launch would shard its grid.
        """
        if not 0 <= block_id < num_blocks:
            raise ConfigError(
                f"block_id {block_id} outside grid of {num_blocks}"
            )
        if self.num_domains == 1:
            return 0
        return block_id * self.num_domains // num_blocks

    def members_by_domain(self, num_blocks: int) -> Dict[int, List[int]]:
        """Occupied domains mapped to their (sorted) member block ids."""
        members: Dict[int, List[int]] = {}
        for block_id in range(num_blocks):
            members.setdefault(self.domain_of(block_id, num_blocks), []).append(
                block_id
            )
        return members

    # -- costs ----------------------------------------------------------------

    def crossing_latency_ns(self, from_domain: int, to_domain: int) -> int:
        """Interconnect latency between two domains (0 within a domain)."""
        if from_domain == to_domain:
            return 0
        return self.crossing_ns

    # -- co-residency ----------------------------------------------------------

    def max_co_resident_blocks(self, config: "DeviceConfig") -> int:
        """Largest grid a device-side barrier can safely synchronize.

        Exclusive co-residency is the paper's bound: one block per SM.
        Cooperative co-residency admits up to the per-SM block cap;
        the runner additionally validates the launch against the actual
        occupancy of the requested block shape.
        """
        if self.co_residency == "exclusive":
            return config.num_sms
        return config.num_sms * config.max_blocks_per_sm

    def shared_mem_claim(self, config: "DeviceConfig") -> int:
        """Shared memory a device barrier requests per block at launch.

        Exclusive: the whole SM (paper §5, forcing one block per SM).
        Cooperative: nothing — co-residency is safe under independent
        thread scheduling, so the barrier claims no scratchpad.
        """
        if self.co_residency == "exclusive":
            return config.shared_mem_per_sm
        return 0

    def sms_per_domain(self, config: "DeviceConfig") -> int:
        """SMs (or cores-cluster slots) inside one domain."""
        return config.num_sms // self.num_domains

    def describe(self) -> str:
        """One-line human description (reports, docs, CLI)."""
        if self.kind == "single-device":
            return f"single device, {self.co_residency} co-residency"
        noun = "device" if self.kind == "multi-device" else "cluster"
        return (
            f"{self.num_domains} {noun}s, {self.co_residency} co-residency, "
            f"{self.crossing_ns} ns crossing latency"
        )
