"""Kernel specifications: the static description of a device program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator

from repro.errors import LaunchError

__all__ = ["KernelSpec", "DeviceProgram"]

#: A device program: called once per block with that block's context, and
#: yields simcore effects (via the BlockCtx helpers).
DeviceProgram = Callable[..., Generator]


@dataclass(frozen=True)
class KernelSpec:
    """Grid/block shape plus the device program to run.

    Mirrors a CUDA ``kernel<<<grid, block, sharedMem>>>(args...)`` launch:

    * ``program(ctx, **params)`` is run once per block (the simulator's
      agent granularity is one process per block — the leading thread —
      with intra-block parallelism folded into the cost model);
    * ``grid_blocks`` is the 1-D grid size;
    * ``block_threads`` is threads per block (validated against the
      device's limit at launch);
    * ``shared_mem_per_block`` participates in occupancy.  Device-side
      barrier strategies set it to the SM's full shared memory to force a
      one-to-one block↔SM mapping (paper §5).
    """

    name: str
    program: DeviceProgram
    grid_blocks: int
    block_threads: int
    shared_mem_per_block: int = 0
    registers_per_thread: int = 16
    params: Dict[str, Any] = field(default_factory=dict)
    #: optional 2-D shapes (paper Figs. 6/9 index 2-D grids); when set,
    #: their products must equal grid_blocks / block_threads.
    grid_dim: "tuple[int, int] | None" = None
    block_dim: "tuple[int, int] | None" = None

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise LaunchError(f"grid_blocks must be >= 1, got {self.grid_blocks}")
        if self.block_threads < 1:
            raise LaunchError(
                f"block_threads must be >= 1, got {self.block_threads}"
            )
        if self.shared_mem_per_block < 0:
            raise LaunchError("shared_mem_per_block must be non-negative")
        if not callable(self.program):
            raise LaunchError("program must be callable")
        for dims, total, what in (
            (self.grid_dim, self.grid_blocks, "grid"),
            (self.block_dim, self.block_threads, "block"),
        ):
            if dims is None:
                continue
            if len(dims) != 2 or dims[0] < 1 or dims[1] < 1:
                raise LaunchError(f"{what}_dim must be a pair of positive ints")
            if dims[0] * dims[1] != total:
                raise LaunchError(
                    f"{what}_dim {dims} does not multiply out to {total}"
                )

    @classmethod
    def dim3(
        cls,
        name: str,
        program: DeviceProgram,
        grid: "tuple[int, int]",
        block: "tuple[int, int]",
        **kwargs: Any,
    ) -> "KernelSpec":
        """CUDA-style constructor: ``kernel<<<dim3(gx,gy), dim3(bx,by)>>>``."""
        return cls(
            name=name,
            program=program,
            grid_blocks=grid[0] * grid[1],
            block_threads=block[0] * block[1],
            grid_dim=tuple(grid),
            block_dim=tuple(block),
            **kwargs,
        )

    @property
    def effective_grid_dim(self) -> "tuple[int, int]":
        """The 2-D grid shape ((N, 1) for 1-D launches)."""
        return self.grid_dim or (self.grid_blocks, 1)

    @property
    def effective_block_dim(self) -> "tuple[int, int]":
        """The 2-D block shape ((T, 1) for 1-D launches)."""
        return self.block_dim or (self.block_threads, 1)

    @property
    def total_threads(self) -> int:
        """Threads across the whole grid."""
        return self.grid_blocks * self.block_threads
