"""Block execution contexts: the device-side API available to kernels.

One :class:`BlockCtx` is created per block per kernel launch.  Device
programs receive it as their first argument and drive the device through
its generator helpers, always via ``yield from``::

    def program(ctx: BlockCtx, data: GlobalArray) -> Generator:
        yield from ctx.compute(500)                  # charge compute time
        yield from ctx.gwrite(flags, ctx.block_id, 1)
        yield from ctx.spin_until(flags, lambda: flags.data[0] == 1, "wait")

The simulation agent granularity is one process per block (the paper's
"leading thread"); intra-block thread parallelism is folded into the cost
model, and ``syncthreads`` charges the intra-block barrier's latency.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import ConfigError, MemoryError_
from repro.gpu.memory import GlobalArray
from repro.gpu.shared import SharedMemory
from repro.simcore.effects import Acquire, Delay, Release, WaitSpec, WaitUntil
from repro.simcore.trace import Trace

__all__ = ["BlockCtx"]


class BlockCtx:
    """Per-block device context (the kernel's view of the GPU)."""

    def __init__(
        self,
        device: "Device",  # noqa: F821 - circular type, bound at runtime
        kernel_name: str,
        block_id: int,
        num_blocks: int,
        block_threads: int,
        sm_id: Optional[int] = None,
        shared_mem_bytes: Optional[int] = None,
        grid_dim: Optional[tuple] = None,
        block_dim: Optional[tuple] = None,
    ):
        self.device = device
        self.kernel_name = kernel_name
        self.block_id = block_id
        self.num_blocks = num_blocks
        self.block_threads = block_threads
        #: the SM hosting this block (None when constructed directly,
        #: outside the scheduler).
        self.sm_id = sm_id
        self.owner = f"{kernel_name}/b{block_id}"
        # Shared-memory budget: what the kernel requested at launch, or
        # the SM's full scratchpad for directly-constructed contexts.
        if shared_mem_bytes is None:
            shared_mem_bytes = device.config.shared_mem_per_sm
        self._shared_budget = shared_mem_bytes
        self._shared: Optional[SharedMemory] = None
        #: 2-D shapes; defaults match a 1-D launch.
        self.grid_dim = grid_dim or (num_blocks, 1)
        self.block_dim = block_dim or (block_threads, 1)
        # Topology placement: which sync domain this block runs in, and
        # whether cross-domain traffic costs anything.  Single-domain
        # (the default) keeps both at the zero-cost fast path so the
        # paper's traces stay bit-identical.
        topo = device.config.topology
        self.domain = (
            topo.domain_of(block_id, num_blocks) if topo.num_domains > 1 else 0
        )
        self._crossing = topo if topo.crossing_ns > 0 else None

    def _remote_ns(self, array: GlobalArray) -> int:
        """Interconnect latency for touching ``array`` from this block."""
        if self._crossing is None:
            return 0
        return self._crossing.crossing_latency_ns(self.domain, array.home_domain)

    # -- introspection -------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time (ns)."""
        return self.device.engine.now

    @property
    def trace(self) -> Trace:
        """The device-wide span trace."""
        return self.device.trace

    @property
    def timings(self):
        """The device's calibrated timing parameters."""
        return self.device.config.timings

    @property
    def is_leader_block(self) -> bool:
        """True for block 0 (convention for single-block work)."""
        return self.block_id == 0

    @property
    def block_idx(self) -> tuple:
        """``(blockIdx.x, blockIdx.y)`` under the paper's linearization.

        Fig. 9 computes ``bid = blockIdx.x * gridDim.y + blockIdx.y``;
        this is that mapping inverted, so ``block_idx[0] * gridDim.y +
        block_idx[1] == block_id`` always holds.
        """
        _gx, gy = self.grid_dim
        return (self.block_id // gy, self.block_id % gy)

    def record(self, phase: str, start: int, **meta: Any) -> None:
        """Record a span from ``start`` to now under this block's name."""
        self.trace.add(self.owner, phase, start, self.now, **meta)

    # -- computation -----------------------------------------------------------

    def compute(
        self,
        cost_ns: float,
        work: Optional[Callable[[], None]] = None,
        phase: str = "compute",
        **meta: Any,
    ) -> Generator:
        """Charge ``cost_ns`` of computation, then apply ``work()``.

        ``work`` runs *after* the delay, so its results become visible to
        other blocks only once the computation has finished — a block that
        illegally races past a barrier therefore reads stale data, exactly
        as on hardware.
        """
        if cost_ns < 0:
            raise ConfigError(f"compute cost must be non-negative, got {cost_ns}")
        if self.device.faults is not None:
            cost_ns = self.device.faults.scale_compute(self.block_id, cost_ns)
        start = self.now
        if cost_ns > 0:
            yield Delay(cost_ns)
        if work is not None:
            work()
        self.record(phase, start, **meta)

    # -- global memory ---------------------------------------------------------

    def gread(self, array: GlobalArray, index: Any) -> Generator:
        """Read one element/slice of global memory (charges read latency,
        plus the interconnect crossing when the array is homed in another
        sync domain)."""
        yield Delay(self.timings.global_read_ns + self._remote_ns(array))
        if self.device.probes:
            self.device.notify_access(self, array, index, "read")
        return array.load(index)

    def gwrite(self, array: GlobalArray, index: Any, value: Any) -> Generator:
        """Write global memory; visible (and waking spinners) after the
        write latency — plus any interconnect crossing — elapses."""
        yield Delay(self.timings.global_write_ns + self._remote_ns(array))
        if self.device.faults is not None:
            value = self.device.faults.corrupt_store(self.block_id, value)
        if self.device.probes:
            self.device.notify_access(self, array, index, "write")
        array.store(index, value)

    def atomic_add(self, array: GlobalArray, index: Any, value: Any) -> Generator:
        """``atomicAdd``: FIFO-serialized per cell; returns the old value.

        The read-modify-write holds the cell's atomic unit for
        ``atomic_ns``; contending blocks queue, which is why N blocks
        hammering one mutex take ``N·t_a`` (Eq. 6).
        """
        flat = self._flat_index(array, index)
        unit = self.device.atomics.unit_for(array.name, flat)
        start = self.now
        queued = yield Acquire(unit, f"atomic on {array.name}[{flat}]")
        yield Delay(self.timings.atomic_ns + self._remote_ns(array))
        if self.device.probes:
            self.device.notify_access(self, array, index, "atomic")
        old = array.load(index)
        dropped = self.device.faults is not None and self.device.faults.drop_atomic(
            self.block_id
        )
        if dropped:
            # Transient fault: the read-modify-write's store is lost.
            # The old value is still returned — on hardware the faulting
            # increment simply never lands in the cell.
            self.device.atomics.faulted_ops += 1
        else:
            array.store(index, old + value)
        self.device.atomics.ops += 1
        yield Release(unit)
        self.record("atomic", start, cell=f"{array.name}[{flat}]", queued=queued)
        return old

    def spin_until(
        self,
        array: GlobalArray,
        predicate: Callable[[], bool],
        reason: str,
        spec: Optional[WaitSpec] = None,
    ) -> Generator:
        """Spin on global memory until ``predicate()`` holds.

        Event-driven: the block parks on the array's store signal instead
        of busy-ticking; when the awaited store lands it pays one
        spin-observation latency (the paper's ``t_c``).  Returns the
        number of predicate polls while blocked (diagnostics).

        ``spec`` optionally declares the same condition as a
        :class:`~repro.simcore.effects.WaitSpec` so the fast engine can
        index the wait by cell and threshold instead of polling the
        lambda; it must be equivalent to ``predicate``.
        """
        start = self.now
        polls = yield WaitUntil(array.signal, predicate, reason, spec)
        if self.device.faults is not None:
            # Spurious wakeups: the spin loop observed the cell extra
            # times without its predicate holding; each costs one
            # observation latency, none affect correctness.
            extra = self.device.faults.spurious_polls(self.block_id)
            for _ in range(extra):
                yield Delay(self.timings.spin_read_ns)
            polls += extra
        yield Delay(self.timings.spin_read_ns + self._remote_ns(array))
        if self.device.probes:
            self.device.notify_access(self, array, None, "spin")
        self.record("spin", start, on=array.name, polls=polls)
        return polls

    # -- shared memory -----------------------------------------------------------

    @property
    def shared(self) -> SharedMemory:
        """This block's shared-memory scratchpad (created on first use)."""
        if self._shared is None:
            self._shared = SharedMemory(self.owner, self._shared_budget)
        return self._shared

    def shared_alloc(self, name: str, shape: Any, dtype: Any = None) -> Any:
        """Allocate shared memory within the kernel's launch budget."""
        import numpy as np

        return self.shared.alloc(name, shape, dtype or np.float64)

    def sread(self, array: Any, index: Any) -> Generator:
        """Read shared memory (fast: a few cycles, paper §2)."""
        yield Delay(self.timings.shared_access_ns)
        return array[index]

    def swrite(self, array: Any, index: Any, value: Any) -> Generator:
        """Write shared memory (fast; visible to this block only)."""
        yield Delay(self.timings.shared_access_ns)
        array[index] = value

    # -- intra-block -------------------------------------------------------------

    def syncthreads(self) -> Generator:
        """``__syncthreads()``: intra-block barrier latency.

        Blocks are simulated as single agents, so this only charges the
        barrier's cost; it is still semantically load-bearing because the
        protocol code calls it exactly where the CUDA code would.
        """
        start = self.now
        yield Delay(self.timings.syncthreads_ns)
        self.record("syncthreads", start)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _flat_index(array: GlobalArray, index: Any) -> int:
        """Flatten an index for atomic-unit lookup; atomics are scalar."""
        if isinstance(index, tuple):
            try:
                import numpy as np

                return int(np.ravel_multi_index(index, array.shape))
            except ValueError as exc:
                raise MemoryError_(
                    f"bad atomic index {index!r} for {array.name!r}"
                ) from exc
        if isinstance(index, slice):
            raise MemoryError_("atomic operations require a scalar index")
        return int(index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BlockCtx({self.owner}, {self.num_blocks} blocks)"
