"""Simulated global memory: named NumPy-backed arrays with store watchers.

A :class:`GlobalArray` is the device's view of one allocation.  Stores go
through :meth:`GlobalArray.store`, which updates the backing NumPy array
and fires the array's :class:`~repro.simcore.signal.Signal`, waking any
block whose spin predicate now holds — this is how the paper's
``while (g_mutex != goalVal)`` loops resolve without busy-ticking.

Host code (and test assertions) may read or write the backing ``data``
array directly at zero simulated cost, mirroring how cudaMemcpy'd inputs
appear in device memory before a kernel starts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import MemoryError_
from repro.simcore.engine import Engine
from repro.simcore.signal import Signal

__all__ = ["GlobalArray", "GlobalMemory"]

Index = Union[int, Tuple[Any, ...], slice]


class GlobalArray:
    """One named allocation in simulated global memory."""

    def __init__(
        self,
        memory: "GlobalMemory",
        name: str,
        data: np.ndarray,
        home_domain: int = 0,
    ):
        self._memory = memory
        self.name = name
        self.data = data
        # The backing array is the signal's observable source: declared
        # spin waits (WaitSpec) are checked against it by the fast engine.
        self.signal = Signal(f"mem:{name}", source=data)
        #: which sync domain this allocation is homed in; accesses from
        #: other domains pay the topology's crossing latency.
        self.home_domain = home_domain
        #: store/load counters for tests and diagnostics.
        self.stores = 0
        self.loads = 0

    # -- zero-cost accessors (device semantics handled by BlockCtx) --------

    def load(self, index: Index) -> Any:
        """Read a value (no simulated cost — callers charge latency)."""
        self.loads += 1
        return self.data[index]

    def store(self, index: Index, value: Any) -> None:
        """Write a value and wake spinners whose predicates now hold."""
        self.data[index] = value
        self.stores += 1
        self._memory.engine.fire(self.signal)

    def fill(self, value: Any) -> None:
        """Host-side bulk initialization (fires watchers once)."""
        self.data[...] = value
        self.stores += 1
        self._memory.engine.fire(self.signal)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GlobalArray({self.name!r}, shape={self.shape}, dtype={self.dtype})"


class GlobalMemory:
    """The device's global-memory allocator and namespace."""

    def __init__(self, engine: Engine, capacity_bytes: int):
        self.engine = engine
        self.capacity_bytes = capacity_bytes
        self._arrays: Dict[str, GlobalArray] = {}

    def alloc(
        self,
        name: str,
        shape: Union[int, Sequence[int]],
        dtype: Any = np.float64,
        fill: Optional[Any] = None,
        reuse: bool = False,
        home_domain: int = 0,
    ) -> GlobalArray:
        """Allocate a named array; raises on duplicates or exhaustion.

        With ``reuse=True`` an existing same-shape, same-dtype allocation
        is zeroed (or refilled) and returned instead of raising — the
        idiom for re-preparable device state like barrier mutexes.
        ``home_domain`` places the allocation in a topology sync domain;
        accesses from other domains pay the crossing latency.
        """
        if name in self._arrays:
            if reuse:
                existing = self._arrays[name]
                want_shape = (
                    tuple(shape) if isinstance(shape, (list, tuple)) else (shape,)
                )
                if (
                    existing.shape == want_shape
                    and existing.dtype == np.dtype(dtype)
                ):
                    existing.data[...] = 0 if fill is None else fill
                    existing.home_domain = home_domain
                    return existing
                # Shape/dtype changed: replace the allocation.
                del self._arrays[name]
            else:
                raise MemoryError_(f"allocation {name!r} already exists")
        data = np.zeros(shape, dtype=dtype)
        if fill is not None:
            data[...] = fill
        if self.used_bytes + data.nbytes > self.capacity_bytes:
            raise MemoryError_(
                f"allocating {name!r} ({data.nbytes} B) exceeds device memory "
                f"({self.used_bytes}/{self.capacity_bytes} B used)"
            )
        array = GlobalArray(self, name, data, home_domain=home_domain)
        self._arrays[name] = array
        return array

    def wrap(self, name: str, data: np.ndarray) -> GlobalArray:
        """Adopt an existing host array as device memory (like cudaMemcpy).

        The array is used *by reference*: host-side mutations remain
        visible, which mirrors mapped/pinned memory closely enough for the
        harness (inputs are staged before the kernel starts).
        """
        if name in self._arrays:
            raise MemoryError_(f"allocation {name!r} already exists")
        if self.used_bytes + data.nbytes > self.capacity_bytes:
            raise MemoryError_(
                f"wrapping {name!r} ({data.nbytes} B) exceeds device memory"
            )
        array = GlobalArray(self, name, data)
        self._arrays[name] = array
        return array

    def free(self, name: str) -> None:
        """Release an allocation (waiters on it would deadlock, as on HW)."""
        if name not in self._arrays:
            raise MemoryError_(f"no allocation named {name!r}")
        del self._arrays[name]

    def get(self, name: str) -> GlobalArray:
        """Look up an allocation by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise MemoryError_(f"no allocation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[GlobalArray]:
        return iter(self._arrays.values())

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(a.nbytes for a in self._arrays.values())
