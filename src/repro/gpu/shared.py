"""Per-block shared memory (the SM's 16 KB scratchpad, paper §2).

Shared memory is private to one block and an order of magnitude faster
than global memory; its size is also the paper's occupancy lever (§5:
request all 16 KB to pin one block per SM).  :class:`SharedMemory`
enforces the *budget* a kernel requested at launch: allocations beyond
``shared_mem_per_block`` raise, exactly like exceeding the static +
dynamic shared-memory size on a real launch.

Accesses cost :attr:`~repro.model.calibration.CalibratedTimings.shared_access_ns`
per transaction (a few cycles, bank-conflict-free), charged through the
:class:`~repro.gpu.context.BlockCtx` helpers ``sread``/``swrite``.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Union

import numpy as np

from repro.errors import MemoryError_

__all__ = ["SharedMemory"]


class SharedMemory:
    """One block's shared-memory scratchpad with a hard byte budget."""

    def __init__(self, owner: str, capacity_bytes: int):
        self.owner = owner
        self.capacity_bytes = capacity_bytes
        self._arrays: Dict[str, np.ndarray] = {}

    def alloc(
        self,
        name: str,
        shape: Union[int, Sequence[int]],
        dtype: Any = np.float64,
    ) -> np.ndarray:
        """Allocate a named array within the block's budget."""
        if name in self._arrays:
            raise MemoryError_(
                f"{self.owner}: shared allocation {name!r} already exists"
            )
        data = np.zeros(shape, dtype=dtype)
        if self.used_bytes + data.nbytes > self.capacity_bytes:
            raise MemoryError_(
                f"{self.owner}: shared allocation {name!r} ({data.nbytes} B) "
                f"exceeds the block's budget "
                f"({self.used_bytes}/{self.capacity_bytes} B used); request "
                "more shared memory at launch (shared_mem_per_block)"
            )
        self._arrays[name] = data
        return data

    def get(self, name: str) -> np.ndarray:
        """Look up an allocation by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise MemoryError_(
                f"{self.owner}: no shared allocation named {name!r}"
            ) from None

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(a.nbytes for a in self._arrays.values())

    def __contains__(self, name: str) -> bool:
        return name in self._arrays
