"""Device configuration (defaults: the paper's GTX 280).

Preset construction lives in :mod:`repro.gpu.presets` behind the
``get_preset(name)`` registry; this module holds the
:class:`DeviceConfig` dataclass itself plus the deprecated
:func:`gtx280` spelling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.topology import Topology
from repro.model.calibration import CalibratedTimings, default_timings

__all__ = ["DeviceConfig", "gtx280"]


@dataclass(frozen=True)
class DeviceConfig:
    """Static properties of the simulated device.

    Defaults describe the NVIDIA GeForce GTX 280 used in the paper:
    30 SMs × 8 SPs at 1296 MHz, 16 KB shared memory and 16 384 registers
    per SM, 1 GB of global memory at 141.7 GB/s, CUDA compute 1.3 limits
    (512 threads/block, 1024 threads/SM, 8 blocks/SM).
    """

    name: str = "GeForce GTX 280"
    num_sms: int = 30
    sps_per_sm: int = 8
    clock_mhz: int = 1296
    shared_mem_per_sm: int = 16 * 1024
    registers_per_sm: int = 16 * 1024
    global_mem_bytes: int = 1024**3
    global_bandwidth_gbps: float = 141.7
    pcie_gbps: float = 8.0  # PCIe 2.0 x16 effective host↔device bandwidth
    warp_size: int = 32
    max_threads_per_block: int = 512
    max_threads_per_sm: int = 1024
    max_blocks_per_sm: int = 8
    #: display-attached watchdog: kernels running longer than this are
    #: aborted (None = headless, no watchdog).
    watchdog_ns: Optional[int] = None
    #: what the watchdog does: "raise" stops the simulation with
    #: KernelTimeoutError; "kill" cancels the kernel like the real driver
    #: and lets the host observe the failure via Host.get_last_error().
    watchdog_action: str = "raise"
    timings: CalibratedTimings = field(default_factory=default_timings)
    #: where this device's threads live — sync domains, co-residency
    #: policy, interconnect crossing cost (:mod:`repro.gpu.topology`).
    #: The default is the paper's world: one device, one block per SM.
    topology: Topology = field(default_factory=Topology)

    def __post_init__(self) -> None:
        for name in (
            "num_sms",
            "sps_per_sm",
            "clock_mhz",
            "shared_mem_per_sm",
            "registers_per_sm",
            "global_mem_bytes",
            "warp_size",
            "max_threads_per_block",
            "max_threads_per_sm",
            "max_blocks_per_sm",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.global_bandwidth_gbps <= 0:
            raise ConfigError("global_bandwidth_gbps must be positive")
        if self.pcie_gbps <= 0:
            raise ConfigError("pcie_gbps must be positive")
        if self.watchdog_ns is not None and self.watchdog_ns < 1:
            raise ConfigError("watchdog_ns must be >= 1 (or None)")
        if self.watchdog_action not in ("raise", "kill"):
            raise ConfigError(
                f"watchdog_action must be 'raise' or 'kill', "
                f"got {self.watchdog_action!r}"
            )
        if self.num_sms % self.topology.num_domains != 0:
            raise ConfigError(
                f"num_sms ({self.num_sms}) must divide evenly into the "
                f"topology's {self.topology.num_domains} domain(s)"
            )

    @property
    def total_sps(self) -> int:
        """Total streaming processors on the device."""
        return self.num_sms * self.sps_per_sm

    @property
    def bytes_per_ns_per_sm(self) -> float:
        """Fair-share global-memory bandwidth of one SM (bytes/ns)."""
        return self.global_bandwidth_gbps / self.num_sms

    def blocks_per_sm(
        self,
        threads_per_block: int,
        shared_mem_per_block: int = 0,
        registers_per_thread: int = 16,
    ) -> int:
        """Occupancy: how many blocks of this shape fit on one SM.

        Returns 0 when a single block already exceeds an SM's resources.
        The paper's device barriers force this to 1 by requesting all
        shared memory (§5: "we allocate all available shared memory ...
        so that no two blocks can be scheduled to the same SM").
        """
        if threads_per_block < 1:
            raise ConfigError(
                f"threads_per_block must be >= 1, got {threads_per_block}"
            )
        if threads_per_block > self.max_threads_per_block:
            return 0
        if shared_mem_per_block > self.shared_mem_per_sm:
            return 0
        if registers_per_thread * threads_per_block > self.registers_per_sm:
            return 0
        limits = [
            self.max_blocks_per_sm,
            self.max_threads_per_sm // threads_per_block,
        ]
        if shared_mem_per_block > 0:
            limits.append(self.shared_mem_per_sm // shared_mem_per_block)
        if registers_per_thread > 0:
            limits.append(
                self.registers_per_sm // (registers_per_thread * threads_per_block)
            )
        return max(0, min(limits))

    def with_timings(self, timings: CalibratedTimings) -> "DeviceConfig":
        """A copy of this config with different timing parameters."""
        return replace(self, timings=timings)


def gtx280(timings: Optional[CalibratedTimings] = None) -> DeviceConfig:
    """Deprecated spelling of the paper's testbed GPU.

    Use :func:`repro.gpu.presets.get_preset`\\ ``("gtx280")`` — preset
    construction is consolidated behind one registry.  This shim
    forwards unchanged and emits a :class:`DeprecationWarning`.
    """
    warnings.warn(
        "gtx280() is deprecated; use "
        "repro.gpu.presets.get_preset('gtx280', timings=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.gpu.presets import get_preset

    return get_preset("gtx280", timings=timings)
