"""CUDA streams and events on the simulated device.

Semantics follow the paper's hardware generation (CUDA 2.x / compute
1.3, GTX 280):

* launches within one :class:`Stream` execute in issue order;
* the device has a **single kernel engine** — concurrent kernel
  execution does not exist before Fermi, so kernels from *different*
  streams also serialize, in issue order (streams still matter for
  host-side structuring and for events);
* a launch that waits on an :class:`Event` blocks the kernel engine
  head-of-line, exactly like a real pre-Fermi device — including the
  possibility of wedging the device if the event can only be recorded
  by a later launch (the engine's deadlock detector reports this).

Events are the ``cudaEvent`` shape: record into a stream, then let the
host (or another stream) wait on them; a recorded event also carries its
timestamp so host code can measure device intervals the way
``cudaEventElapsedTime`` does.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Optional

from repro.simcore.signal import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.process import Process

__all__ = ["Event", "Stream"]

_STREAM_IDS = count()
_EVENT_IDS = count()


class Stream:
    """An in-order launch queue (host-side handle)."""

    def __init__(self, name: Optional[str] = None):
        self.name = name or f"stream{next(_STREAM_IDS)}"
        #: last process enqueued on this stream (kernel or event marker).
        self.last_process: Optional["Process"] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stream({self.name!r})"


class Event:
    """A ``cudaEvent``: a timestamped completion marker in a stream."""

    def __init__(self, name: Optional[str] = None):
        self.name = name or f"event{next(_EVENT_IDS)}"
        self.recorded = False
        self.timestamp_ns: Optional[int] = None
        self.signal = Signal(f"event:{self.name}")

    def elapsed_since(self, earlier: "Event") -> int:
        """``cudaEventElapsedTime``: nanoseconds between two events."""
        if self.timestamp_ns is None or earlier.timestamp_ns is None:
            raise ValueError("both events must have completed to compare")
        return self.timestamp_ns - earlier.timestamp_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"@{self.timestamp_ns}" if self.recorded else "pending"
        return f"Event({self.name!r}, {state})"
