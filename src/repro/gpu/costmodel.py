"""A principled per-stage cost model for user-written kernels.

The bundled workloads use per-item constants calibrated against the
paper's Table 1 (:mod:`repro.algorithms.costs`).  Kernels written
*against* this library (see ``examples/custom_kernel.py``) have no such
calibration; :class:`StageCostModel` derives a defensible cost from
first principles instead:

* memory-bound term: bytes touched divided by the SM's fair share of
  global-memory bandwidth, degraded by a coalescing factor;
* compute-bound term: flops divided by the SM's issue rate
  (``sps_per_sm × clock``);
* the stage costs the *maximum* of the two (latency hiding overlaps
  them) plus a fixed pipeline-fill overhead.

This is deliberately a roofline-style model — crude but transparent,
and consistent with the device configuration it is built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig

__all__ = ["StageCostModel"]


@dataclass(frozen=True)
class StageCostModel:
    """Roofline-style stage costs for one kernel shape on one device."""

    config: DeviceConfig
    threads_per_block: int
    #: fraction of peak bandwidth achieved (1.0 = perfectly coalesced).
    coalescing: float = 1.0
    #: fixed pipeline-fill / launch-of-stage overhead per stage (ns).
    stage_overhead_ns: float = 200.0

    def __post_init__(self) -> None:
        if not 0 < self.coalescing <= 1.0:
            raise ConfigError(
                f"coalescing must be in (0, 1], got {self.coalescing}"
            )
        if self.threads_per_block < 1:
            raise ConfigError("threads_per_block must be >= 1")
        if self.stage_overhead_ns < 0:
            raise ConfigError("stage_overhead_ns must be non-negative")

    @property
    def bytes_per_ns(self) -> float:
        """Effective global-memory bandwidth available to one block."""
        return self.config.bytes_per_ns_per_sm * self.coalescing

    @property
    def flops_per_ns(self) -> float:
        """Issue rate of one SM (one flop per SP per cycle)."""
        return self.config.sps_per_sm * self.config.clock_mhz / 1e3

    def stage_cost_ns(
        self, items: int, bytes_per_item: float, flops_per_item: float = 0.0
    ) -> float:
        """Cost of one block processing ``items`` work items in a stage.

        Items are processed at the SM's throughput; the warp-granular
        schedule quantizes occupancy, which matters for tiny stages.
        """
        if items < 0 or bytes_per_item < 0 or flops_per_item < 0:
            raise ConfigError("stage parameters must be non-negative")
        if items == 0:
            return self.stage_overhead_ns
        # Partial warps still occupy a whole warp's issue slots.
        w = self.config.warp_size
        effective_items = math.ceil(items / w) * w
        mem_ns = effective_items * bytes_per_item / self.bytes_per_ns
        compute_ns = effective_items * flops_per_item / self.flops_per_ns
        return self.stage_overhead_ns + max(mem_ns, compute_ns)
