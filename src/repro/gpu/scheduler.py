"""Block scheduling: occupancy-limited, non-preemptive SM slots.

A kernel's blocks contend for SM slots.  Occupancy (blocks per SM) comes
from :meth:`repro.gpu.config.DeviceConfig.blocks_per_sm`; total co-resident
capacity is ``occupancy × num_sms``.  Blocks hold their slot until their
program finishes — **no preemption** — so a device-side barrier whose grid
exceeds co-resident capacity starves: resident blocks spin on the barrier
forever while queued blocks wait for a slot.  The engine detects this and
raises :class:`repro.errors.DeadlockError`, mirroring a hung launch on
real hardware (paper §5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import OccupancyError, SimulationError
from repro.gpu.config import DeviceConfig
from repro.gpu.kernel import KernelSpec
from repro.simcore.resource import Resource

__all__ = ["BlockScheduler", "SmPlacement"]


class SmPlacement:
    """Tracks which SM hosts each running block of one kernel.

    Capacity gating is done by the kernel's aggregate slot resource (the
    sum of per-SM capacities — equivalent for homogeneous blocks); this
    tracker adds the *which SM* bookkeeping on top: blocks are placed on
    the least-loaded SM (lowest index on ties), never exceeding the
    per-SM occupancy, and the assignment is recorded for introspection
    (``placements``) and trace tagging.

    ``tiebreak`` overrides the lowest-index-on-ties rule: it is called
    with the list of equally-least-loaded SM ids and returns the chosen
    one.  Hardware makes no ordering promise here, so a seeded permuter
    (:class:`repro.sanitize.ScheduleFuzzer`) uses this hook to explore
    adversarial placements deterministically.
    """

    def __init__(
        self,
        kernel_name: str,
        num_sms: int,
        per_sm: int,
        tiebreak: Optional[Callable[[List[int]], int]] = None,
    ):
        if per_sm < 1:
            raise SimulationError(
                f"placement for {kernel_name!r} needs per_sm >= 1"
            )
        self.kernel_name = kernel_name
        self.num_sms = num_sms
        self.per_sm = per_sm
        self._tiebreak = tiebreak
        self._load: List[int] = [0] * num_sms
        #: block id → SM id for every block that has been placed.
        self.placements: Dict[int, int] = {}

    def place(self, block_id: int) -> int:
        """Assign a block to the least-loaded SM; returns the SM id."""
        if block_id in self.placements:
            raise SimulationError(
                f"block {block_id} of {self.kernel_name!r} placed twice"
            )
        least = min(self._load)
        candidates = [i for i in range(self.num_sms) if self._load[i] == least]
        if self._tiebreak is not None:
            sm = self._tiebreak(candidates)
            if sm not in candidates:
                raise SimulationError(
                    f"placement tiebreak chose SM{sm}, not among {candidates}"
                )
        else:
            sm = candidates[0]
        if self._load[sm] >= self.per_sm:
            raise SimulationError(
                f"placement overflow on SM{sm} for {self.kernel_name!r} "
                "(aggregate gate out of sync)"
            )
        self._load[sm] += 1
        self.placements[block_id] = sm
        return sm

    def release(self, block_id: int) -> None:
        """A block finished; free its SM slot."""
        sm = self.placements.get(block_id)
        if sm is None:
            raise SimulationError(
                f"block {block_id} of {self.kernel_name!r} released "
                "without placement"
            )
        self._load[sm] -= 1

    @property
    def resident_counts(self) -> List[int]:
        """Blocks currently resident on each SM."""
        return list(self._load)


class BlockScheduler:
    """Computes occupancy and builds the per-kernel slot resource.

    ``fuzz`` (a :class:`repro.sanitize.ScheduleFuzzer` or anything with
    an ``sm_tiebreak(candidates) -> int`` method) perturbs placement
    tie-breaking; ``None`` keeps the deterministic lowest-index rule.
    """

    def __init__(self, config: DeviceConfig, fuzz=None):
        self.config = config
        self.fuzz = fuzz

    def occupancy(self, spec: KernelSpec) -> int:
        """Blocks of this kernel that fit on one SM (may be 0)."""
        return self.config.blocks_per_sm(
            spec.block_threads,
            spec.shared_mem_per_block,
            spec.registers_per_thread,
        )

    def co_resident_capacity(self, spec: KernelSpec) -> int:
        """Blocks of this kernel that can execute simultaneously."""
        return self.occupancy(spec) * self.config.num_sms

    def validate(self, spec: KernelSpec) -> None:
        """Reject kernels that can never be scheduled at all."""
        if spec.block_threads > self.config.max_threads_per_block:
            raise OccupancyError(
                f"kernel {spec.name!r}: {spec.block_threads} threads/block "
                f"exceeds the device limit of "
                f"{self.config.max_threads_per_block}"
            )
        if self.occupancy(spec) == 0:
            raise OccupancyError(
                f"kernel {spec.name!r}: one block "
                f"({spec.block_threads} threads, "
                f"{spec.shared_mem_per_block} B shared) exceeds a single "
                "SM's resources"
            )

    def slots_for(self, spec: KernelSpec) -> Resource:
        """A fresh FIFO slot resource sized to this kernel's capacity."""
        self.validate(spec)
        return Resource(
            f"slots:{spec.name}", capacity=self.co_resident_capacity(spec)
        )

    def placement_for(self, spec: KernelSpec) -> SmPlacement:
        """A fresh per-SM placement tracker for this kernel."""
        self.validate(spec)
        tiebreak = self.fuzz.sm_tiebreak if self.fuzz is not None else None
        return SmPlacement(
            spec.name, self.config.num_sms, self.occupancy(spec), tiebreak
        )
