"""The simulated device: engine + memory + scheduler + kernel execution."""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.errors import KernelTimeoutError
from repro.gpu.atomics import AtomicRegistry
from repro.gpu.config import DeviceConfig
from repro.gpu.context import BlockCtx
from repro.gpu.kernel import KernelSpec
from repro.gpu.scheduler import BlockScheduler
from repro.simcore.effects import Acquire, Delay, Join, Release, Spawn, WaitUntil
from repro.simcore.engine import Engine
from repro.simcore.fastpath import make_engine, resolve_engine_mode
from repro.simcore.trace import Trace
from repro.gpu.memory import GlobalMemory

__all__ = ["Device"]


class Device:
    """One simulated GPU plus its simulation engine.

    A :class:`Device` owns everything stateful: the discrete-event
    engine, global memory, the atomic-unit registry, the block scheduler
    and the span trace.  Experiments create a fresh device per run so
    measurements never bleed into each other.
    """

    def __init__(
        self,
        config: Optional[DeviceConfig] = None,
        *,
        engine: Optional[Engine] = None,
        engine_mode: Optional[str] = None,
        device_wide_atomics: bool = False,
        fuzzer=None,
        faults=None,
    ):
        self.config = config or DeviceConfig()
        #: the simulation engine — private by default; pass a shared one
        #: to put several devices in one simulated system (multi-GPU).
        #: ``engine_mode`` selects the event core ("reference" or "fast",
        #: see docs/engine.md); None defers to ``use_engine_mode`` /
        #: ``REPRO_ENGINE_MODE`` and defaults to the reference heap loop.
        #: ``fuzzer`` (a :class:`repro.sanitize.ScheduleFuzzer`) perturbs
        #: same-time event ordering and SM placement tie-breaking.
        self.engine_mode = (
            resolve_engine_mode(engine_mode) if engine is None else "custom"
        )
        self.engine = engine or make_engine(
            self.engine_mode,
            tiebreak=fuzzer.queue_priority if fuzzer is not None else None,
        )
        self.memory = GlobalMemory(self.engine, self.config.global_mem_bytes)
        self.atomics = AtomicRegistry(device_wide=device_wide_atomics)
        self.scheduler = BlockScheduler(self.config, fuzz=fuzzer)
        self.trace = Trace()
        #: observers of device-side execution (barrier rounds, global
        #: memory traffic); see :class:`repro.sanitize.SanitizerProbe`.
        #: Kept empty in normal runs so instrumentation costs nothing.
        self.probes: List[Any] = []
        #: armed fault plan (:class:`repro.faults.FaultPlan`) or ``None``.
        #: Injection hooks across the GPU layer are all behind a single
        #: ``faults is not None`` check — the same zero-overhead pattern
        #: as the probe list.
        self.faults = faults
        if faults is not None:
            faults.bind_clock(lambda: self.engine.now)
        #: kernels completed on this device (diagnostics).
        self.kernels_completed = 0
        #: kernel name → SmPlacement of its most recent execution.
        self.placements: dict = {}

    def notify_access(self, ctx, array, index, kind: str) -> None:
        """Forward one global-memory access to every registered probe.

        ``kind`` is ``"read"``, ``"write"``, ``"atomic"`` or ``"spin"``.
        Called by :class:`~repro.gpu.context.BlockCtx` only when probes
        are registered.
        """
        for probe in self.probes:
            probe.on_access(ctx, array, index, kind)

    # -- kernel execution (spawned by the Host) ------------------------------

    def kernel_process(
        self,
        handle: "KernelHandle",
        predecessor,
        wait_event=None,
    ) -> Generator:
        """The device-side life of one kernel launch.

        Pre-Fermi kernel-engine semantics: wait for the predecessor
        process in the device's issue-order FIFO (``predecessor`` is a
        :class:`~repro.simcore.process.Process` or ``None``), then for
        this kernel's launch command to arrive, then — if the launch was
        gated on an :class:`~repro.gpu.stream.Event` — for that event,
        head-of-line; finally dispatch blocks (setup), run them under
        occupancy limits, and drain them (teardown).
        """
        spec = handle.spec
        timings = self.config.timings
        if predecessor is not None:
            yield Join(predecessor, reason=f"kernel engine order {spec.name}")
        yield WaitUntil(
            handle.arrival_signal,
            lambda: handle.arrived,
            f"launch command {spec.name}",
        )
        if wait_event is not None:
            yield WaitUntil(
                wait_event.signal,
                lambda: wait_event.recorded,
                f"event {wait_event.name} before {spec.name}",
            )
        handle.start_ns = self.engine.now

        if self.config.watchdog_ns is not None:
            yield Spawn(
                self._watchdog(handle, self.config.watchdog_ns),
                f"watchdog:{spec.name}",
            )

        if self.faults is not None:
            kill_at = self.faults.take_driver_kill()
            if kill_at is not None:
                yield Spawn(
                    self._fault_killer(handle, kill_at),
                    f"fault-kill:{spec.name}",
                )

        setup_start = self.engine.now
        yield Delay(timings.kernel_setup_ns)
        self.trace.add(spec.name, "kernel-setup", setup_start, self.engine.now)

        slots = self.scheduler.slots_for(spec)
        placement = self.scheduler.placement_for(spec)
        self.placements[spec.name] = placement
        blocks: List = []
        for block_id in range(spec.grid_blocks):
            proc = yield Spawn(
                self._block_process(spec, slots, placement, block_id),
                f"{spec.name}/b{block_id}",
            )
            blocks.append(proc)
            handle.block_processes.append(proc)
        for proc in blocks:
            yield Join(proc, reason=f"drain {spec.name}")

        teardown_start = self.engine.now
        yield Delay(timings.kernel_teardown_ns)
        self.trace.add(spec.name, "kernel-teardown", teardown_start, self.engine.now)

        handle.end_ns = self.engine.now
        self.kernels_completed += 1

    def _watchdog(self, handle: "KernelHandle", watchdog_ns: int) -> Generator:
        """Kill overlong kernels like a display-attached driver would.

        Sleeps for the watchdog interval; if the kernel is still running
        (the common cause here: a deadlocked device barrier), it raises
        :class:`~repro.errors.KernelTimeoutError`, which surfaces from
        ``Device.run`` exactly where a real ``cudaThreadSynchronize``
        would report "the launch timed out".
        """
        yield Delay(watchdog_ns)
        if handle.end_ns is not None or handle.killed:
            return
        if self.config.watchdog_action == "kill":
            # Abort like the real driver: kill the kernel manager and
            # every block (freeing their SM slots), mark the handle, and
            # let host code observe the failure via get_last_error().
            handle.killed = True
            handle.end_ns = self.engine.now
            if handle.process is not None:
                self.engine.cancel(
                    handle.process, f"watchdog killed {handle.spec.name}"
                )
            for block in handle.block_processes:
                self.engine.cancel(
                    block, f"watchdog killed {handle.spec.name}"
                )
        else:
            raise KernelTimeoutError(
                handle.spec.name, watchdog_ns, handle.start_ns or 0
            )

    def _fault_killer(self, handle: "KernelHandle", kill_at_ns: int) -> Generator:
        """Injected driver-style kernel kill (``driver-kill`` fault).

        Sleeps ``kill_at_ns`` past kernel start, then — if the kernel is
        still running — aborts it exactly like the display watchdog's
        "kill" action: the handle is marked killed, the kernel manager
        and every block are cancelled (freeing SM slots), and the host
        observes the failure via ``Host.get_last_error()``.
        """
        yield Delay(kill_at_ns)
        if handle.end_ns is not None or handle.killed:
            return  # kernel finished first; the kill dissipates
        self.faults.note_driver_kill_fired()
        reason = f"injected driver-kill of {handle.spec.name} (fault plan)"
        handle.killed = True
        handle.end_ns = self.engine.now
        if handle.process is not None:
            self.engine.cancel(handle.process, reason)
        for block in handle.block_processes:
            self.engine.cancel(block, reason)

    def _block_process(
        self, spec: KernelSpec, slots, placement, block_id: int
    ) -> Generator:
        """One block: acquire an SM slot, run to completion, release.

        Non-preemptive by construction — the slot is held across the whole
        program, including any spin-waits inside device barriers.  The
        aggregate slot resource gates capacity; the placement tracker
        records *which* SM hosts the block (least-loaded placement).
        """
        yield Acquire(slots, f"SM slot for {spec.name}/b{block_id}")
        sm_id = placement.place(block_id)
        ctx = BlockCtx(
            device=self,
            kernel_name=spec.name,
            block_id=block_id,
            num_blocks=spec.grid_blocks,
            block_threads=spec.block_threads,
            sm_id=sm_id,
            shared_mem_bytes=spec.shared_mem_per_block,
            grid_dim=spec.effective_grid_dim,
            block_dim=spec.effective_block_dim,
        )
        yield from spec.program(ctx, **spec.params)
        placement.release(block_id)
        yield Release(slots)

    # -- convenience -----------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time (ns)."""
        return self.engine.now

    def run(self, until: Optional[int] = None) -> int:
        """Run the simulation to completion (or a horizon); returns time."""
        return self.engine.run(until)


# Imported late to avoid a module cycle (host needs Device for typing only).
from repro.gpu.host import KernelHandle  # noqa: E402  (re-export for typing)
