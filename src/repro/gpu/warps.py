"""Optional warp-level execution inside a block.

The simulator's default granularity is one agent per block (the paper's
"leading thread"), with intra-block parallelism folded into costs.  Some
protocols genuinely use multiple threads *as concurrent actors* — the
lock-free barrier's checking block runs its first N threads as N
independent watchers (paper §5.3 step 2).  This module provides real
concurrency below the block:

* :meth:`BlockCtx.run_warps <run_warps>` (exposed as a helper here)
  spawns one simulated agent per warp and joins them;
* :class:`WarpCtx` gives each warp the same memory helpers as a block;
* :class:`IntraBlockBarrier` is a *real* ``__syncthreads()`` between the
  block's warp agents: nobody proceeds until all arrived, and everyone
  pays the barrier latency after the last arrival.

``GpuLockFreeSync(detailed=True)`` uses this to execute the checking
block at warp granularity; ``tests/gpu/test_warps.py`` shows the
detailed execution reproduces the coarse model's timing exactly — the
evidence that folding intra-block parallelism into costs is sound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SyncProtocolError
from repro.simcore.effects import Delay, Join, Spawn, WaitSpec, WaitUntil
from repro.simcore.signal import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx
    from repro.gpu.memory import GlobalArray

__all__ = ["IntraBlockBarrier", "WarpCtx", "run_warps"]


class IntraBlockBarrier:
    """A real ``__syncthreads()`` among a block's warp agents.

    Sense-free epoch counter: arrival increments a count; the last
    arriver advances the epoch and wakes everyone; all parties then pay
    the barrier latency before proceeding.
    """

    def __init__(self, block_ctx: "BlockCtx", parties: int):
        if parties < 1:
            raise SyncProtocolError(f"barrier needs >= 1 parties, got {parties}")
        self.block_ctx = block_ctx
        self.parties = parties
        self.epoch = 0
        self._arrived = 0
        self._signal = Signal(f"syncthreads:{block_ctx.owner}")

    def wait(self) -> Generator:
        """Arrive at the barrier; resumes once all parties have."""
        my_epoch = self.epoch
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self.epoch += 1
            self.block_ctx.device.engine.fire(self._signal)
        else:
            yield WaitUntil(
                self._signal,
                lambda: self.epoch > my_epoch,
                f"__syncthreads epoch {my_epoch} ({self.block_ctx.owner})",
            )
        yield Delay(self.block_ctx.timings.syncthreads_ns)


class WarpCtx:
    """One warp's view of the device (delegates to the block context)."""

    def __init__(
        self,
        block_ctx: "BlockCtx",
        warp_id: int,
        lanes: Tuple[int, int],
        barrier: IntraBlockBarrier,
    ):
        self.block = block_ctx
        self.warp_id = warp_id
        #: half-open [first_lane, last_lane) thread-id range of this warp.
        self.lanes = lanes
        self._barrier = barrier

    # Memory helpers — identical cost semantics to the block context.

    def gread(self, array: "GlobalArray", index: Any) -> Generator:
        """Global read (same cost model as the block context)."""
        value = yield from self.block.gread(array, index)
        return value

    def gwrite(self, array: "GlobalArray", index: Any, value: Any) -> Generator:
        """Global write (coalesced across the warp's lanes)."""
        yield from self.block.gwrite(array, index, value)

    def spin_until(
        self,
        array: "GlobalArray",
        predicate: Callable[[], bool],
        reason: str,
        spec: Optional["WaitSpec"] = None,
    ) -> Generator:
        """Spin-wait, one observation charged on success."""
        polls = yield from self.block.spin_until(
            array, predicate, f"w{self.warp_id}: {reason}", spec
        )
        return polls

    def syncthreads(self) -> Generator:
        """The block-wide barrier, as seen from this warp."""
        yield from self._barrier.wait()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WarpCtx({self.block.owner}/w{self.warp_id}, lanes={self.lanes})"


def run_warps(
    block_ctx: "BlockCtx",
    warp_fn: Callable[[WarpCtx], Generator],
    threads: int,
) -> Generator:
    """Run ``threads`` threads of this block as per-warp agents.

    ``warp_fn(warp_ctx)`` is spawned once per warp (``ceil(threads /
    warp_size)`` agents); this generator resumes when all warps finish.
    ``warp_ctx.syncthreads()`` inside the warp function is a *real*
    barrier among exactly these agents.
    """
    if threads < 1:
        raise SyncProtocolError(f"run_warps needs >= 1 threads, got {threads}")
    if threads > block_ctx.block_threads:
        raise SyncProtocolError(
            f"run_warps asked for {threads} threads but the block has "
            f"{block_ctx.block_threads}"
        )
    warp_size = block_ctx.device.config.warp_size
    num_warps = -(-threads // warp_size)
    barrier = IntraBlockBarrier(block_ctx, num_warps)
    agents: List = []
    for w in range(num_warps):
        lanes = (w * warp_size, min((w + 1) * warp_size, threads))
        wctx = WarpCtx(block_ctx, w, lanes, barrier)
        proc = yield Spawn(
            warp_fn(wctx), f"{block_ctx.owner}/w{w}"
        )
        agents.append(proc)
    for proc in agents:
        yield Join(proc, reason=f"join warps of {block_ctx.owner}")
