"""Deterministic fault injection and the resilient-runtime primitives.

The robustness counterpart of :mod:`repro.sanitize`: where the
sanitizer asks *"does this barrier have bugs?"*, this package asks
*"what happens when the world around a correct barrier misbehaves?"* —
straggling and hung blocks, driver kills, spurious wakeups, dropped
atomics, corrupted stores.

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded, replayable
  fault sets with transient-vs-persistent consumption semantics.
* :mod:`repro.faults.watchdog` — :class:`BarrierWatchdog`: exact stall
  detection that turns would-be ``DeadlockError`` runs into typed,
  recoverable :class:`~repro.errors.BarrierTimeoutError` failures.
* :mod:`repro.faults.chaos` — :func:`chaos_campaign`: N seeded plans
  against the full retry/degrade runtime, cross-checked against the
  sanitizer's detectors; any unexplained outcome fails the campaign.
* :mod:`repro.faults.crashpoints` — :class:`CrashPlan`: named crash
  points inside the *host-side* durability layer (job table, journal,
  cache, reaper, worker), fired deterministically by a seeded plan.
* :mod:`repro.faults.crashtest` — the crash matrix: every registered
  crash point fired against a live multi-host worker fleet, recovery
  invariants asserted (import it directly; it pulls in the service
  stack, so the package does not import it eagerly).

The recovery policies themselves (retry with backoff, graceful
degradation) live in :mod:`repro.harness.resilient`, next to the
runner they wrap.
"""

from repro.faults.chaos import ChaosReport, ChaosRunRecord, chaos_campaign
from repro.faults.crashpoints import (
    CRASH_ACTIONS,
    CRASHPOINTS,
    CrashPlan,
    Crashpoint,
    CrashSpec,
    FiredCrash,
    register_crashpoint,
)
from repro.faults.plan import (
    FAULT_KINDS,
    PERSISTENT_KINDS,
    TRANSIENT_KINDS,
    FaultPlan,
    FaultSpec,
    FiredFault,
    fault_plans,
)
from repro.faults.watchdog import DEFAULT_BARRIER_DEADLINE_NS, BarrierWatchdog

__all__ = [
    "BarrierWatchdog",
    "CRASH_ACTIONS",
    "CRASHPOINTS",
    "ChaosReport",
    "ChaosRunRecord",
    "CrashPlan",
    "Crashpoint",
    "CrashSpec",
    "DEFAULT_BARRIER_DEADLINE_NS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FiredCrash",
    "FiredFault",
    "PERSISTENT_KINDS",
    "TRANSIENT_KINDS",
    "chaos_campaign",
    "fault_plans",
    "register_crashpoint",
]
