"""Deterministic fault injection and the resilient-runtime primitives.

The robustness counterpart of :mod:`repro.sanitize`: where the
sanitizer asks *"does this barrier have bugs?"*, this package asks
*"what happens when the world around a correct barrier misbehaves?"* —
straggling and hung blocks, driver kills, spurious wakeups, dropped
atomics, corrupted stores.

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded, replayable
  fault sets with transient-vs-persistent consumption semantics.
* :mod:`repro.faults.watchdog` — :class:`BarrierWatchdog`: exact stall
  detection that turns would-be ``DeadlockError`` runs into typed,
  recoverable :class:`~repro.errors.BarrierTimeoutError` failures.
* :mod:`repro.faults.chaos` — :func:`chaos_campaign`: N seeded plans
  against the full retry/degrade runtime, cross-checked against the
  sanitizer's detectors; any unexplained outcome fails the campaign.

The recovery policies themselves (retry with backoff, graceful
degradation) live in :mod:`repro.harness.resilient`, next to the
runner they wrap.
"""

from repro.faults.chaos import ChaosReport, ChaosRunRecord, chaos_campaign
from repro.faults.plan import (
    FAULT_KINDS,
    PERSISTENT_KINDS,
    TRANSIENT_KINDS,
    FaultPlan,
    FaultSpec,
    FiredFault,
    fault_plans,
)
from repro.faults.watchdog import DEFAULT_BARRIER_DEADLINE_NS, BarrierWatchdog

__all__ = [
    "BarrierWatchdog",
    "ChaosReport",
    "ChaosRunRecord",
    "DEFAULT_BARRIER_DEADLINE_NS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "PERSISTENT_KINDS",
    "TRANSIENT_KINDS",
    "chaos_campaign",
    "fault_plans",
]
