"""Chaos campaigns: seeded fault storms against the resilient runtime.

A campaign generates ``plans`` deterministic fault plans (seed-derived,
like sanitizer schedules) and runs each against one barrier strategy
under the full resilient runtime (:mod:`repro.harness.resilient`,
reached through ``repro.run(..., retry=...)``).  Every run must end in
one of four *explained* outcomes:

* ``ok`` — finished verified on the first attempt (faults may have
  fired but were absorbed: a straggler only costs time);
* ``recovered`` — a retry outran a transient fault; finished verified;
* ``degraded`` — retries exhausted, the run finished verified on the
  strategy's fallback barrier;
* ``failed`` — a *typed* error naming the injected fault.

Anything else is **unexplained** and fails the campaign: a
:class:`~repro.errors.DeadlockError` escaping the watchdog-guarded
path, an untyped exception, a result that came back unverified, or a
cross-check mismatch.

The cross-check closes the loop with :mod:`repro.sanitize`: each plan
whose first attempt fired a liveness fault (``hang`` or
``driver-kill``) is replayed once with a fresh same-seed plan and a
:class:`~repro.sanitize.probe.SanitizerProbe`; the replay must either
raise the same typed error or yield a barrier finding.  An injected
stall the detectors cannot see would mean the two subsystems disagree
about what happened — exactly the silent-failure class this campaign
exists to rule out.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.errors import (
    BarrierTimeoutError,
    DeadlockError,
    FaultError,
    KernelTimeoutError,
    ReproError,
    RetryExhaustedError,
)
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import DEFAULT_BARRIER_DEADLINE_NS
from repro.serialization import (
    device_config_from_dict,
    device_config_to_dict,
    dump_result,
    parse_result,
    require,
)

__all__ = ["ChaosReport", "ChaosRunRecord", "chaos_campaign"]

#: typed failures a campaign accepts as explained.
_TYPED = (
    RetryExhaustedError,
    BarrierTimeoutError,
    KernelTimeoutError,
    FaultError,
    VerificationError,
)


@dataclass(frozen=True)
class ChaosRunRecord:
    """One plan's fate under the resilient runtime."""

    seed: int
    planned: List[str]  #: the plan's fault descriptions
    outcome: str  #: ``ok`` / ``recovered`` / ``degraded`` / ``failed``
    attempts: int
    fired: List[str]  #: fault kinds that actually fired
    error: Optional[str] = None  #: the typed error for ``failed`` runs
    #: False when this run's fate cannot be pinned on its plan (the
    #: campaign-failing condition).
    explained: bool = True
    #: cross-check verdict: None = not applicable, True/False = ran.
    cross_checked: Optional[bool] = None


@dataclass
class ChaosReport:
    """Aggregated campaign outcome (deterministic for a given seed)."""

    strategy: str
    algorithm: str
    num_blocks: int
    seed: int
    plans: int
    records: List[ChaosRunRecord] = field(default_factory=list)
    # -- partial-failure provenance (supervised executor campaigns) --
    #: process-level re-executions the parallel supervisor forced.
    retries: int = 0
    #: plan indices whose payload was quarantined as poison
    #: (``on_poison="mark"`` executors; their records carry outcome
    #: ``"poison"`` and are never explained).
    quarantined: List[int] = field(default_factory=list)
    #: run-id this campaign was resumed from, if any.  In-memory only:
    #: excluded from serialization and equality so a resumed campaign
    #: stays bit-identical to an uninterrupted one.
    resumed_from: Optional[str] = field(default=None, compare=False)

    def count(self, outcome: str) -> int:
        """Number of runs with the given outcome."""
        return sum(1 for r in self.records if r.outcome == outcome)

    @property
    def unexplained(self) -> List[ChaosRunRecord]:
        """Runs whose fate cannot be pinned on their fault plan."""
        return [r for r in self.records if not r.explained]

    @property
    def clean(self) -> bool:
        """True when every run's outcome is explained by its plan."""
        return not self.unexplained

    def render(self) -> str:
        """Plain-text campaign summary."""
        lines = [
            f"chaos campaign: {self.strategy} x {self.algorithm} "
            f"({self.num_blocks} blocks, seed {self.seed})",
            f"  plans run    {len(self.records)}/{self.plans}",
            f"  ok           {self.count('ok')}",
            f"  recovered    {self.count('recovered')}",
            f"  degraded     {self.count('degraded')}",
            f"  failed       {self.count('failed')} (typed)",
            f"  unexplained  {len(self.unexplained)}",
        ]
        for rec in self.unexplained:
            lines.append(
                f"    !! seed {rec.seed}: {rec.outcome} "
                f"[{', '.join(rec.planned)}] {rec.error or ''}"
            )
        tail = "CLEAN" if self.clean else "UNEXPLAINED FAILURES"
        lines.append(f"  verdict      {tail}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialize via the shared versioned envelope (docs/parallel.md)."""
        return dump_result(
            "chaos-report",
            {
                "strategy": self.strategy,
                "algorithm": self.algorithm,
                "num_blocks": self.num_blocks,
                "seed": self.seed,
                "plans": self.plans,
                "records": [asdict(r) for r in self.records],
                "retries": self.retries,
                "quarantined": list(self.quarantined),
            },
        )

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "ChaosReport":
        """Rebuild a report from :meth:`to_json` output (typed failures).

        Accepts the pre-provenance schema-2 envelope too; ``retries``
        and ``quarantined`` then default to a clean campaign.
        """
        payload = parse_result(text, kind="chaos-report", source=source)
        return cls(
            strategy=require(payload, "strategy", source),
            algorithm=require(payload, "algorithm", source),
            num_blocks=require(payload, "num_blocks", source),
            seed=require(payload, "seed", source),
            plans=require(payload, "plans", source),
            records=[
                ChaosRunRecord(**r)
                for r in require(payload, "records", source)
            ],
            retries=int(payload.get("retries", 0)),
            quarantined=list(payload.get("quarantined", [])),
        )


def _default_algorithm(num_blocks: int, rounds: int) -> RoundAlgorithm:
    from repro.sanitize.sanitizer import SkewedMicrobench

    return SkewedMicrobench(rounds=rounds, num_blocks_hint=num_blocks)


def _cross_check(
    plan_seed: int,
    strategy: str,
    num_blocks: int,
    rounds: int,
    algorithm_factory: Callable[[int, int], RoundAlgorithm],
    config,
    deadline_ns: int,
) -> bool:
    """Replay attempt 1 under the sanitizer probe; True = consistent.

    A fresh plan from the same seed fires the same attempt-1 faults.
    If a liveness fault (hang / driver-kill) fires, the replay must be
    *detected* — a typed error from the guarded runner, or a barrier
    finding from the probe.  A DeadlockError here is an automatic
    inconsistency: it means the watchdog-guarded path leaked.
    """
    from repro.harness.runner import run
    from repro.sanitize.analysis import barrier_findings
    from repro.sanitize.probe import SanitizerProbe

    plan = FaultPlan.generate(plan_seed, num_blocks, rounds)
    probe = SanitizerProbe()
    detected = False
    try:
        run(
            algorithm_factory(num_blocks, rounds),
            strategy,
            num_blocks,
            config=config,
            verify=False,
            probe=probe,
            faults=plan,
            barrier_deadline_ns=deadline_ns,
        )
    except (BarrierTimeoutError, KernelTimeoutError, FaultError):
        detected = True
    except DeadlockError:
        return False  # the watchdog-guarded path must never leak this
    findings = barrier_findings(
        probe, num_blocks, seed=plan_seed, deadlocked=detected
    )
    detected = detected or bool(findings)
    liveness_fired = {"hang", "driver-kill"} & set(plan.fired_kinds)
    return detected if liveness_fired else True


def _plan_record(
    strategy: str,
    plan_seed: int,
    num_blocks: int,
    rounds: int,
    max_faults: int,
    retry,
    degrade,
    config,
    barrier_deadline_ns: int,
    cross_check: bool,
    algorithm_factory: Optional[Callable[[int, int], RoundAlgorithm]],
) -> ChaosRunRecord:
    """Run one seeded fault plan to its explained (or not) outcome."""
    from repro.harness.resilient import _run_resilient

    factory = algorithm_factory or _default_algorithm
    plan = FaultPlan.generate(
        plan_seed, num_blocks, rounds, max_faults=max_faults
    )
    planned = plan.descriptions
    algorithm = factory(num_blocks, rounds)
    outcome = "failed"
    attempts = 0
    error: Optional[str] = None
    explained = True
    try:
        result = _run_resilient(
            algorithm,
            strategy,
            num_blocks,
            retry=retry,
            degrade=degrade,
            faults=plan,
            barrier_deadline_ns=barrier_deadline_ns,
            config=config,
        )
        attempts = result.attempts
        if result.degraded:
            outcome = "degraded"
        elif result.attempts > 1:
            outcome = "recovered"
        else:
            outcome = "ok"
        # Zero silent wrong answers: a non-failed run must have
        # actually been verified against the reference output.
        if result.verified is not True:
            explained = False
            error = "run returned unverified"
    except _TYPED as exc:
        attempts = plan.attempt
        error = f"{type(exc).__name__}: {exc}"
    except ReproError as exc:
        # Typed, but not a failure the resilient path is allowed to
        # surface — in particular a DeadlockError escaping the
        # watchdog.
        explained = False
        error = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - untyped = campaign bug
        explained = False
        error = f"untyped {type(exc).__name__}: {exc}"

    checked: Optional[bool] = None
    if (
        cross_check
        and explained
        and {"hang", "driver-kill"} & set(plan.fired_kinds)
    ):
        checked = _cross_check(
            plan_seed,
            strategy,
            num_blocks,
            rounds,
            factory,
            config,
            barrier_deadline_ns,
        )
        if not checked:
            explained = False
            error = (error or "") + " [cross-check: fault undetected]"

    return ChaosRunRecord(
        seed=plan_seed,
        planned=planned,
        outcome=outcome,
        attempts=attempts,
        fired=plan.fired_kinds,
        error=error,
        explained=explained,
        cross_checked=checked,
    )


def plan_record_from_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The ``chaos-plan`` worker body: payload dict → record dict.

    Policies and device config arrive as plain dicts (pickle- and
    cache-safe); only the default campaign algorithm is reachable here —
    a custom ``algorithm_factory`` keeps the campaign serial.
    """
    from repro.harness.resilient import DegradePolicy, RetryPolicy

    retry = (
        RetryPolicy(**payload["retry"]) if payload.get("retry") else None
    )
    degrade = (
        DegradePolicy(**payload["degrade"]) if payload.get("degrade") else None
    )
    config = (
        device_config_from_dict(payload["device"])
        if payload.get("device")
        else None
    )
    record = _plan_record(
        strategy=payload["strategy"],
        plan_seed=payload["seed"],
        num_blocks=payload["num_blocks"],
        rounds=payload["rounds"],
        max_faults=payload["max_faults"],
        retry=retry,
        degrade=degrade,
        config=config,
        barrier_deadline_ns=payload["barrier_deadline_ns"],
        cross_check=payload["cross_check"],
        algorithm_factory=None,
    )
    return asdict(record)


def chaos_campaign(
    strategy: str = "gpu-lockfree",
    plans: int = 50,
    seed: int = 2010,
    num_blocks: int = 8,
    rounds: int = 4,
    algorithm_factory: Optional[Callable[[int, int], RoundAlgorithm]] = None,
    config=None,
    retry=None,
    degrade=None,
    barrier_deadline_ns: int = DEFAULT_BARRIER_DEADLINE_NS,
    cross_check: bool = True,
    max_faults: int = 3,
    executor=None,
    resume: Optional[str] = None,
) -> ChaosReport:
    """Run ``plans`` seeded fault plans against one strategy.

    Plan ``i`` of a long campaign equals plan ``i`` of a short one
    (stable seed derivation), so a failing seed from CI replays locally
    with ``FaultPlan.generate(that_seed, num_blocks, rounds)``.

    ``executor`` (:class:`repro.parallel.Executor`) shards the campaign
    per plan seed; records come back in seed order, so the report —
    verdict included — is identical to the serial run's.  A custom
    ``algorithm_factory`` is not portable to worker processes and keeps
    the campaign serial.

    ``resume`` replays a journaled earlier invocation of the same
    campaign (docs/resilience.md).  Under an ``on_poison="mark"``
    executor, a plan whose payload repeatedly killed its worker comes
    back as an unexplained ``"poison"`` record instead of aborting the
    campaign; the report's ``retries``/``quarantined``/``resumed_from``
    fields carry the batch's partial-failure provenance.
    """
    from repro.sanitize.fuzzer import derive_seeds, seed_payloads

    factory = algorithm_factory or _default_algorithm
    report = ChaosReport(
        strategy=strategy,
        algorithm=factory(num_blocks, rounds).name,
        num_blocks=num_blocks,
        seed=seed,
        plans=plans,
    )

    if executor is not None and algorithm_factory is None:
        base = {
            "strategy": strategy,
            "num_blocks": num_blocks,
            "rounds": rounds,
            "max_faults": max_faults,
            "retry": asdict(retry) if retry is not None else None,
            "degrade": asdict(degrade) if degrade is not None else None,
            "device": (
                device_config_to_dict(config) if config is not None else None
            ),
            "barrier_deadline_ns": barrier_deadline_ns,
            "cross_check": cross_check,
        }
        from repro.parallel import Quarantined

        plan_seeds = list(derive_seeds(seed, plans))
        records = executor.map(
            "chaos-plan", seed_payloads(seed, plans, base), resume=resume
        )
        for i, raw in enumerate(records):
            if isinstance(raw, Quarantined):
                report.records.append(
                    ChaosRunRecord(
                        seed=plan_seeds[i],
                        planned=[],
                        outcome="poison",
                        attempts=0,
                        fired=[],
                        error=raw.error,
                        explained=False,
                    )
                )
            else:
                report.records.append(ChaosRunRecord(**raw))
        stats = executor.last_batch
        if stats is not None:
            report.retries = stats.retries
            report.quarantined = list(stats.quarantined)
            report.resumed_from = stats.resumed_from
        return report

    for plan_seed in derive_seeds(seed, plans):
        report.records.append(
            _plan_record(
                strategy,
                plan_seed,
                num_blocks,
                rounds,
                max_faults,
                retry,
                degrade,
                config,
                barrier_deadline_ns,
                cross_check,
                algorithm_factory,
            )
        )
    return report
