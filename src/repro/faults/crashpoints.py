"""Named crash points inside the durability-critical paths.

:class:`~repro.faults.plan.FaultPlan` injects adversity into the
*simulated* world — stragglers, hung blocks, dropped atomics.  This
module applies the same discipline to the *host-side* durability layer
(the sweep service's SQLite job table, the write-ahead run journal, the
result cache's atomic renames, the reaper and the worker loop): every
point where a crash could lose or duplicate work is **registered by
name**, and a seeded, replayable :class:`CrashPlan` can fire a fault at
any of them:

* ``kill`` — SIGKILL this process at the point: no cleanup, no atexit,
  the worst-case crash (what the crash matrix mostly fires);
* ``raise-operational`` — raise ``sqlite3.OperationalError("database is
  locked ...")``, the multi-host contention error the job table must
  absorb with retries;
* ``raise-oserror`` — raise ``OSError(EIO)``, a transient I/O failure
  that must spend retry budget, never mark a job failed;
* ``torn-write`` — write only a byte prefix of the pending record
  (deliberately allowed to split a UTF-8 multi-byte sequence), fsync
  the torn bytes, then SIGKILL — the exact tail the journal's replay
  must tolerate.

Arming is explicit and process-local (:func:`arm` / :func:`disarm` /
the :func:`armed` context manager), plus **cross-process** via the
``REPRO_CRASHPOINTS`` environment variable (:meth:`CrashPlan.to_env`),
which is how the crash-matrix harness (:mod:`repro.faults.crashtest`)
arms a worker *subprocess* it is about to murder.  An unarmed process
pays one ``is None`` check per point.

Every site calls :func:`fire` (or :func:`fire_write` for write sites)
with its registered name; firing is deterministic — a spec names the
point and the 1-based *hit* at which it triggers — so the same plan
fires at the same operation on every replay, the same ``FaultPlan``
idiom the chaos campaign runs on.
"""

from __future__ import annotations

import errno
import json
import os
import random
import signal
import sqlite3
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import IO, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import FaultError

__all__ = [
    "CRASH_ACTIONS",
    "CRASHPOINTS",
    "ENV_VAR",
    "CrashPlan",
    "CrashSpec",
    "Crashpoint",
    "FiredCrash",
    "arm",
    "armed",
    "armed_plan",
    "clock_skew_s",
    "disarm",
    "fire",
    "fire_write",
    "register_crashpoint",
    "skewed_clock",
]

#: crash action → one-line description (mirrors ``plan.FAULT_KINDS``).
CRASH_ACTIONS: Dict[str, str] = {
    "kill": "SIGKILL this process at the point (no cleanup of any kind)",
    "raise-operational": "raise sqlite3.OperationalError('database is locked')",
    "raise-oserror": "raise OSError(EIO) — a transient host I/O failure",
    "torn-write": "write a byte prefix of the record, fsync it, then SIGKILL",
}

#: environment variable carrying a serialized plan into subprocesses.
ENV_VAR = "REPRO_CRASHPOINTS"


@dataclass(frozen=True)
class Crashpoint:
    """One registered injection site.

    ``actions`` is the subset of :data:`CRASH_ACTIONS` that makes sense
    at this site (a pure read point cannot tear a write).  ``scenario``
    tells the crash-matrix harness which script reaches the point:
    ``"success"`` (a job that completes), ``"failure"`` (a job whose
    execution raises a deterministic error), ``"preempt"`` (a SIGTERM
    drain mid-sweep), ``"reaper"`` (an expired-lease recovery sweep) or
    ``"resume"`` (a journal replay after an earlier interrupted
    attempt).
    """

    name: str
    description: str
    actions: Tuple[str, ...] = ("kill",)
    scenario: str = "success"


#: point name → :class:`Crashpoint`, in registration order.  Populated
#: at import time by the instrumented modules (``repro.service.jobs``,
#: ``repro.parallel.journal``, ``repro.parallel.cache``,
#: ``repro.service.worker``, ``repro.service.reaper``).
CRASHPOINTS: Dict[str, Crashpoint] = {}

_SCENARIOS = ("success", "failure", "preempt", "reaper", "resume")


def register_crashpoint(
    name: str,
    description: str,
    *,
    actions: Sequence[str] = ("kill",),
    scenario: str = "success",
) -> str:
    """Register an injection site; returns ``name`` (assign it to a
    module constant and pass that constant to :func:`fire`).

    Re-registration with identical metadata is a no-op (modules may be
    re-imported under test runners); changing an existing point's
    metadata is a typed :class:`~repro.errors.FaultError`.
    """
    for action in actions:
        if action not in CRASH_ACTIONS:
            raise FaultError(
                f"crash point {name!r}: unknown action {action!r}; "
                f"known: {', '.join(sorted(CRASH_ACTIONS))}"
            )
    if scenario not in _SCENARIOS:
        raise FaultError(
            f"crash point {name!r}: unknown scenario {scenario!r}; "
            f"known: {', '.join(_SCENARIOS)}"
        )
    point = Crashpoint(name, description, tuple(actions), scenario)
    existing = CRASHPOINTS.get(name)
    if existing is not None and existing != point:
        raise FaultError(
            f"crash point {name!r} is already registered with different "
            "metadata; points are append-only"
        )
    CRASHPOINTS[name] = point
    return name


@dataclass(frozen=True)
class CrashSpec:
    """One planned crash: fire ``action`` the ``hit``-th time ``point``
    is reached in this process.

    ``keep_bytes`` applies to ``torn-write`` only: how many bytes of
    the pending record survive (0 keeps the default, half the record —
    chosen to routinely split multi-byte sequences).
    """

    point: str
    action: str = "kill"
    hit: int = 1
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        if self.action not in CRASH_ACTIONS:
            raise FaultError(
                f"unknown crash action {self.action!r}; "
                f"known: {', '.join(sorted(CRASH_ACTIONS))}"
            )
        if self.hit < 1:
            raise FaultError(f"hit must be >= 1, got {self.hit}")
        if self.keep_bytes < 0:
            raise FaultError(f"keep_bytes must be >= 0, got {self.keep_bytes}")

    def describe(self) -> str:
        """Compact human identity of this crash."""
        extra = f", keep {self.keep_bytes}B" if self.action == "torn-write" else ""
        return f"{self.action}@{self.point}#{self.hit}{extra}"


@dataclass(frozen=True)
class FiredCrash:
    """One crash spec that actually triggered (recorded just before the
    action takes effect — a ``kill`` leaves no one to read it, but a
    raised error's handler can)."""

    point: str
    action: str
    hit: int
    pid: int


class CrashPlan:
    """A deterministic set of :class:`CrashSpec` plus a clock skew.

    ``clock_skew_s`` shifts every injectable service clock in the armed
    process (see :func:`skewed_clock`) — the knob that models a host
    whose wall clock runs fast or slow against the fleet.

    The plan is replayable by construction: hits are counted per point
    per process, and firing is a pure function of (point, hit count),
    never of wall-clock time or scheduling.
    """

    def __init__(
        self,
        specs: Sequence[CrashSpec] = (),
        *,
        seed: Optional[int] = None,
        clock_skew_s: float = 0.0,
    ):
        self.specs: List[CrashSpec] = list(specs)
        self.seed = seed
        self.clock_skew_s = clock_skew_s
        #: crashes that actually triggered, in firing order.
        self.fired: List[FiredCrash] = []

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        points: Optional[Sequence[str]] = None,
        max_hit: int = 3,
    ) -> "CrashPlan":
        """A one-crash plan drawn deterministically from ``seed``.

        ``points`` restricts the draw (default: every registered
        point).  The action is drawn from the point's supported set,
        the hit from ``1..max_hit`` — same seed, same crash, always.
        """
        pool = sorted(points if points is not None else CRASHPOINTS)
        if not pool:
            raise FaultError(
                "no crash points to draw from (import the instrumented "
                "modules before generating a plan)"
            )
        for name in pool:
            if name not in CRASHPOINTS:
                raise FaultError(f"unknown crash point {name!r}")
        rng = random.Random(seed)
        name = rng.choice(pool)
        action = rng.choice(list(CRASHPOINTS[name].actions))
        return cls(
            [CrashSpec(name, action, hit=rng.randint(1, max_hit))], seed=seed
        )

    def match(self, point: str, hit: int) -> Optional[CrashSpec]:
        """The first spec due at this (point, hit), or ``None``."""
        for spec in self.specs:
            if spec.point == point and spec.hit == hit:
                return spec
        return None

    @property
    def descriptions(self) -> List[str]:
        """One line per planned crash."""
        return [spec.describe() for spec in self.specs]

    # -- cross-process transport --------------------------------------------

    def to_env(self) -> str:
        """Serialize for ``env[ENV_VAR]`` — how a worker subprocess is
        armed before it is spawned."""
        return json.dumps(
            {
                "specs": [
                    {
                        "point": s.point,
                        "action": s.action,
                        "hit": s.hit,
                        "keep_bytes": s.keep_bytes,
                    }
                    for s in self.specs
                ],
                "seed": self.seed,
                "clock_skew_s": self.clock_skew_s,
            },
            sort_keys=True,
        )

    @classmethod
    def from_env(cls, text: str) -> "CrashPlan":
        """Rebuild a plan from :meth:`to_env` output; malformed input is
        a typed :class:`~repro.errors.FaultError` (an armed-but-broken
        environment must fail loudly, not silently disarm)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(
                f"{ENV_VAR} does not hold a serialized CrashPlan: {exc}"
            ) from exc
        if not isinstance(payload, dict) or not isinstance(
            payload.get("specs"), list
        ):
            raise FaultError(
                f"{ENV_VAR} must hold an object with a 'specs' list, "
                f"got: {text[:120]!r}"
            )
        specs = [
            CrashSpec(
                point=raw["point"],
                action=raw.get("action", "kill"),
                hit=int(raw.get("hit", 1)),
                keep_bytes=int(raw.get("keep_bytes", 0)),
            )
            for raw in payload["specs"]
        ]
        return cls(
            specs,
            seed=payload.get("seed"),
            clock_skew_s=float(payload.get("clock_skew_s", 0.0)),
        )

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CrashPlan(seed={self.seed}, [{', '.join(self.descriptions)}], "
            f"skew={self.clock_skew_s}s)"
        )


# ---------------------------------------------------------------------------
# Armed state (process-local)
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()
_PLAN: Optional[CrashPlan] = None
_HITS: Dict[str, int] = {}


def _kill_self() -> None:  # pragma: no cover - replaced under unit test
    """The worst-case crash: SIGKILL, bypassing every cleanup path."""
    os.kill(os.getpid(), signal.SIGKILL)


def arm(plan: CrashPlan) -> None:
    """Arm ``plan`` in this process (resets hit counters)."""
    global _PLAN
    with _LOCK:
        _PLAN = plan
        _HITS.clear()


def disarm() -> None:
    """Disarm; every :func:`fire` is a no-op again."""
    global _PLAN
    with _LOCK:
        _PLAN = None
        _HITS.clear()


def armed_plan() -> Optional[CrashPlan]:
    """The currently armed plan, or ``None``."""
    return _PLAN


@contextmanager
def armed(plan: CrashPlan) -> Iterator[CrashPlan]:
    """Scoped arming for tests: arms on entry, disarms on exit."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def clock_skew_s() -> float:
    """The armed plan's clock skew (0.0 when unarmed)."""
    plan = _PLAN
    return plan.clock_skew_s if plan is not None else 0.0


def skewed_clock(
    clock: Callable[[], float], skew_s: Optional[float] = None
) -> Callable[[], float]:
    """Wrap ``clock`` to run ``skew_s`` seconds ahead (negative: behind).

    With ``skew_s=None`` the armed plan's skew applies — zero-cost
    identity when unarmed or unskewed.
    """
    offset = clock_skew_s() if skew_s is None else skew_s
    if offset == 0.0:
        return clock
    return lambda: clock() + offset


def _take(point: str) -> Optional[CrashSpec]:
    """Count one hit of ``point``; return the due spec, if any."""
    plan = _PLAN
    if plan is None:
        return None
    if point not in CRASHPOINTS:
        raise FaultError(
            f"fire() called for unregistered crash point {point!r}; "
            "register_crashpoint() it first"
        )
    with _LOCK:
        hit = _HITS.get(point, 0) + 1
        _HITS[point] = hit
    spec = plan.match(point, hit)
    if spec is None:
        return None
    plan.fired.append(FiredCrash(point, spec.action, hit, os.getpid()))
    return spec


def fire(point: str) -> None:
    """One instrumented site: crash/raise here when the armed plan says.

    No-op (one ``is None`` check) when unarmed.  ``torn-write`` specs
    are ignored at plain fire sites — only :func:`fire_write` can tear.
    """
    spec = _take(point)
    if spec is None:
        return
    if spec.action == "kill":
        _kill_self()
    elif spec.action == "raise-operational":
        raise sqlite3.OperationalError(
            f"database is locked [crashpoint {point}]"
        )
    elif spec.action == "raise-oserror":
        raise OSError(
            errno.EIO, f"injected I/O error [crashpoint {point}]"
        )
    # torn-write at a non-write site: nothing to tear; record and go on.


def fire_write(point: str, handle: IO[str], text: str) -> None:
    """Write ``text`` to ``handle``, honoring a due crash at ``point``.

    The torn-write action flushes the handle, appends only a byte
    prefix of the UTF-8 encoding directly to the file descriptor
    (``keep_bytes``, default half the record — deliberately free to
    split a multi-byte sequence), fsyncs the torn bytes so they
    *survive* the crash, then SIGKILLs.  Other actions behave as in
    :func:`fire`, before any byte is written.
    """
    spec = _take(point)
    if spec is None or spec.action == "torn-write":
        if spec is not None:
            handle.flush()
            data = text.encode("utf-8")
            keep = spec.keep_bytes if 0 < spec.keep_bytes < len(data) else (
                len(data) // 2
            )
            os.write(handle.fileno(), data[:keep])
            os.fsync(handle.fileno())
            _kill_self()
            return  # pragma: no cover - only under a patched _kill_self
        handle.write(text)
        return
    if spec.action == "kill":
        _kill_self()
    elif spec.action == "raise-operational":
        raise sqlite3.OperationalError(
            f"database is locked [crashpoint {point}]"
        )
    elif spec.action == "raise-oserror":
        raise OSError(errno.EIO, f"injected I/O error [crashpoint {point}]")


def _arm_from_env() -> None:
    """Arm from ``REPRO_CRASHPOINTS`` when set (subprocess transport).

    Runs once at import, which is how a worker spawned by the crash
    matrix comes up already armed — before it touches the job table.
    """
    text = os.environ.get(ENV_VAR)
    if text:
        arm(CrashPlan.from_env(text))


_arm_from_env()

