"""Seeded fault plans: deterministic, replayable adversity.

A :class:`FaultPlan` is to failures what
:class:`repro.sanitize.ScheduleFuzzer` is to schedules: everything is a
pure function of the seed, so the exact same faults fire at the exact
same points on every replay — a chaos campaign failure report carries
the plan seed that reproduces it.

The taxonomy (:data:`FAULT_KINDS`) models the ways real GPU runs go
wrong around inter-block barriers:

* ``straggler`` — one block's compute runs slower by a factor (thermal
  throttling, partial-SM contention).  Persistent: applies every round.
* ``hang`` — one block never reaches the barrier of a given round (the
  paper's §5 hazard: a non-preemptive block parked forever).
  Persistent: the block hangs again on every retry.
* ``driver-kill`` — the driver kills the kernel at a virtual time after
  launch (display watchdog, ECC event).  Transient: fires once per plan,
  so a relaunch survives.
* ``spurious-wakeup`` — a spin loop wakes extra times without its
  predicate holding and pays the observation latency each time.
  Transient and benign-by-design: costs time, never correctness.
* ``atomic-drop`` — one ``atomicAdd``'s read-modify-write loses its
  store (transient memory-controller fault).  Fires once per plan.
* ``mem-corrupt`` — one global-memory store lands as zeros (torn/cleared
  write).  Fires once per plan.

Transient kinds are *consumed*: after firing once they never fire again
for the lifetime of the plan object, which is exactly what makes
retry-with-relaunch a sound recovery policy for them.  Persistent kinds
fire on every attempt, which is what forces graceful degradation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import FaultError

__all__ = [
    "FAULT_KINDS",
    "PERSISTENT_KINDS",
    "TRANSIENT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "fault_plans",
]

#: fault kind → one-line description (mirrors ``sanitize.BUG_CLASSES``).
FAULT_KINDS: Dict[str, str] = {
    "straggler": "one block computes slower by a factor, every round",
    "hang": "one block never reaches the barrier of one round",
    "driver-kill": "the driver kills the kernel at a virtual time",
    "spurious-wakeup": "a spin loop wakes extra times, paying latency",
    "atomic-drop": "one atomicAdd loses its store (transient)",
    "mem-corrupt": "one global store lands as zeros (transient)",
}

#: kinds that fire again on every relaunch (retry cannot outrun them).
PERSISTENT_KINDS = frozenset({"straggler", "hang"})
#: kinds consumed after firing once (a relaunch survives them).
TRANSIENT_KINDS = frozenset(FAULT_KINDS) - PERSISTENT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Fields are kind-specific: ``block``/``round`` target the injection
    site, ``factor`` scales straggler compute, ``at_ns`` is the
    driver-kill time relative to kernel start, ``count`` is how many
    occurrences a transient kind covers (e.g. spurious wakeups).
    """

    kind: str
    block: Optional[int] = None
    round: Optional[int] = None  #: None = every round (straggler)
    factor: float = 1.0
    at_ns: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(sorted(FAULT_KINDS))}"
            )
        if self.kind == "straggler" and self.factor < 1.0:
            raise FaultError(
                f"straggler factor must be >= 1, got {self.factor}"
            )
        if self.count < 1:
            raise FaultError(f"count must be >= 1, got {self.count}")
        if self.at_ns < 0:
            raise FaultError(f"at_ns must be >= 0, got {self.at_ns}")

    def describe(self) -> str:
        """Compact human identity of this fault."""
        if self.kind == "straggler":
            return f"straggler(block {self.block}, ×{self.factor:.1f})"
        if self.kind == "hang":
            return f"hang(block {self.block}, round {self.round})"
        if self.kind == "driver-kill":
            return f"driver-kill(at +{self.at_ns} ns)"
        if self.kind == "spurious-wakeup":
            return f"spurious-wakeup(block {self.block}, ×{self.count})"
        if self.kind == "atomic-drop":
            return f"atomic-drop(block {self.block})"
        return f"mem-corrupt(block {self.block})"


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired during a run."""

    kind: str
    description: str
    attempt: int  #: 1-based attempt the fault fired in
    at_ns: int  #: virtual time of the injection


class FaultPlan:
    """A seeded set of faults plus their consumption state.

    Arm a plan by passing it to ``Device(faults=...)`` (the harness
    does this via ``run(..., faults=plan)``).  Injection hooks in
    :class:`repro.gpu.context.BlockCtx`, :meth:`repro.gpu.device.Device.
    kernel_process` and :meth:`repro.sync.base.SyncStrategy.
    instrumented_barrier` consult the plan; every hook is behind a
    single ``device.faults is not None`` check, so an unarmed device
    pays nothing.

    The plan is *stateful across attempts*: transient faults are
    consumed when they fire, so the same plan object threaded through a
    retry loop models a transient glitch that does not recur, while
    persistent faults re-fire on every relaunch.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: Optional[int] = None):
        self.specs: List[FaultSpec] = list(specs)
        #: the seed that generated this plan (None for hand-built plans).
        self.seed = seed
        #: faults that actually fired, in firing order.
        self.fired: List[FiredFault] = []
        #: current attempt (bumped by ``next_attempt``; 1-based).
        self.attempt = 1
        #: spec index → remaining occurrences (transient kinds only).
        self._remaining: Dict[int, int] = {
            i: spec.count
            for i, spec in enumerate(self.specs)
            if spec.kind in TRANSIENT_KINDS
        }
        #: (spec index, attempt) pairs already recorded for persistent
        #: kinds, so a hang parked forever is reported once per attempt.
        self._recorded: set = set()
        #: index of the armed driver-kill spec (recorded when it fires).
        self._kill_spec: Optional[int] = None
        self._now = lambda: 0

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        num_blocks: int,
        rounds: int,
        kinds: Optional[Sequence[str]] = None,
        max_faults: int = 3,
        horizon_ns: int = 20_000,
    ) -> "FaultPlan":
        """A deterministic plan of 1..``max_faults`` faults from ``seed``.

        ``kinds`` restricts the taxonomy (default: all).  ``horizon_ns``
        bounds driver-kill times — pick roughly the expected kernel
        duration so kills land mid-run rather than after the fact.
        """
        if num_blocks < 1 or rounds < 1:
            raise FaultError("need num_blocks >= 1 and rounds >= 1")
        if max_faults < 1:
            raise FaultError(f"max_faults must be >= 1, got {max_faults}")
        pool = list(kinds) if kinds is not None else sorted(FAULT_KINDS)
        for kind in pool:
            if kind not in FAULT_KINDS:
                raise FaultError(f"unknown fault kind {kind!r}")
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for _ in range(rng.randint(1, max_faults)):
            kind = rng.choice(pool)
            block = rng.randrange(num_blocks)
            if kind == "straggler":
                specs.append(
                    FaultSpec(
                        kind, block=block, factor=round(rng.uniform(2.0, 8.0), 2)
                    )
                )
            elif kind == "hang":
                specs.append(
                    FaultSpec(kind, block=block, round=rng.randrange(rounds))
                )
            elif kind == "driver-kill":
                specs.append(FaultSpec(kind, at_ns=rng.randrange(1, horizon_ns)))
            elif kind == "spurious-wakeup":
                specs.append(
                    FaultSpec(kind, block=block, count=rng.randint(1, 8))
                )
            else:  # atomic-drop / mem-corrupt
                specs.append(FaultSpec(kind, block=block))
        return cls(specs, seed=seed)

    def bind_clock(self, now) -> None:
        """Attach the armed device's clock (for fired-fault timestamps)."""
        self._now = now

    def next_attempt(self) -> None:
        """Mark the start of a relaunch (retry loop bookkeeping)."""
        self.attempt += 1

    # -- introspection -----------------------------------------------------

    @property
    def descriptions(self) -> List[str]:
        """One line per planned fault."""
        return [spec.describe() for spec in self.specs]

    @property
    def fired_kinds(self) -> List[str]:
        """Kinds that actually fired, de-duplicated, in first-fire order."""
        seen: List[str] = []
        for f in self.fired:
            if f.kind not in seen:
                seen.append(f.kind)
        return seen

    @property
    def persistent(self) -> bool:
        """True when any planned fault re-fires on every relaunch."""
        return any(spec.kind in PERSISTENT_KINDS for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(seed={self.seed}, "
            f"[{', '.join(self.descriptions)}], fired={len(self.fired)})"
        )

    # -- injection hooks (called only from armed devices) ------------------

    def _record(self, spec_idx: int) -> None:
        spec = self.specs[spec_idx]
        self.fired.append(
            FiredFault(spec.kind, spec.describe(), self.attempt, self._now())
        )

    def _consume(self, spec_idx: int) -> bool:
        """Take one occurrence of a transient spec; False when exhausted."""
        left = self._remaining.get(spec_idx, 0)
        if left <= 0:
            return False
        self._remaining[spec_idx] = left - 1
        self._record(spec_idx)
        return True

    def scale_compute(self, block_id: int, cost_ns: float) -> float:
        """Straggler injection: scale one block's compute cost."""
        for i, spec in enumerate(self.specs):
            if spec.kind == "straggler" and spec.block == block_id:
                key = (i, self.attempt)
                if key not in self._recorded:
                    self._recorded.add(key)
                    self._record(i)
                cost_ns = cost_ns * spec.factor
        return cost_ns

    def should_hang(self, block_id: int, round_idx: int) -> bool:
        """Hang injection: does this block vanish before this barrier?"""
        for i, spec in enumerate(self.specs):
            if (
                spec.kind == "hang"
                and spec.block == block_id
                and spec.round == round_idx
            ):
                key = (i, self.attempt)
                if key not in self._recorded:
                    self._recorded.add(key)
                    self._record(i)
                return True
        return False

    def take_driver_kill(self) -> Optional[int]:
        """Driver-kill injection: kill time (ns after launch), once.

        Consumed at arming time — exactly one kernel launch per plan is
        targeted, mirroring a one-off driver event.
        """
        for i, spec in enumerate(self.specs):
            if spec.kind == "driver-kill" and self._remaining.get(i, 0) > 0:
                self._remaining[i] = 0
                # Recorded by the killer process when it actually fires.
                self._kill_spec = i
                return spec.at_ns
        return None

    def note_driver_kill_fired(self) -> None:
        """The armed driver-kill actually killed a running kernel."""
        if self._kill_spec is not None:
            self._record(self._kill_spec)

    def spurious_polls(self, block_id: int) -> int:
        """Spurious-wakeup injection: extra spin polls to charge, once."""
        for i, spec in enumerate(self.specs):
            if spec.kind == "spurious-wakeup" and spec.block == block_id:
                if self._remaining.get(i, 0) > 0:
                    extra = self._remaining[i]
                    self._remaining[i] = 0
                    self._record(i)
                    return extra
        return 0

    def drop_atomic(self, block_id: int) -> bool:
        """Atomic-drop injection: lose this atomicAdd's store?"""
        for i, spec in enumerate(self.specs):
            if spec.kind == "atomic-drop" and spec.block == block_id:
                return self._consume(i)
        return False

    def corrupt_store(self, block_id: int, value: Any) -> Any:
        """Mem-corrupt injection: replace one store's value with zeros."""
        for i, spec in enumerate(self.specs):
            if spec.kind == "mem-corrupt" and spec.block == block_id:
                if self._consume(i):
                    import numpy as np

                    corrupted = np.zeros_like(np.asarray(value))
                    return corrupted if corrupted.ndim else corrupted.item()
        return value


def fault_plans(
    seed: int,
    n: int,
    num_blocks: int,
    rounds: int,
    kinds: Optional[Sequence[str]] = None,
    **kwargs: Any,
) -> Iterator[FaultPlan]:
    """Yield ``n`` fresh plans with seeds derived from ``seed``.

    Uses the sanitizer's stable seed-splitting
    (:func:`repro.sanitize.fuzzer.derive_seeds`): plan ``i`` of a long
    campaign equals plan ``i`` of a short one, so campaign failures
    replay cheaply.
    """
    from repro.sanitize.fuzzer import derive_seeds

    for derived in derive_seeds(seed, n):
        yield FaultPlan.generate(
            derived, num_blocks, rounds, kinds=kinds, **kwargs
        )
