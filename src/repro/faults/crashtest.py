"""The crash matrix: every registered crash point, proven recoverable.

:mod:`repro.faults.crashpoints` names the places where the durability
layer could lose or duplicate work; this module is the proof obligation
that comes with each name.  :func:`crash_campaign` enumerates every
registered point × every action the point supports and, for each,
stages a **live** service directory with a real worker fleet:

* the *victim* — a worker subprocess on simulated host ``hostA``
  (``--host-label``), armed via the ``REPRO_CRASHPOINTS`` environment
  variable to crash or fault at exactly the planned point;
* the *survivor* — a second, unarmed worker on host ``hostB`` sharing
  the same service directory (distinct ``worker-<pid>@<host>`` owners:
  the ≥2-host configuration ROADMAP item 2 calls for), spawned by the
  recovery loop to take over whatever the victim left behind.

The scenario script is chosen by the point's registered tag: a plain
completing job (``success``), a deterministically failing job
(``failure``), a SIGTERM drain mid-sweep (``preempt``), an
expired-lease sweep run by an armed ``--reap-once`` subprocess
(``reaper``), or a journal replay after an earlier interrupted attempt
(``resume``).  A skew campaign then re-runs a lease-critical subset
with the victim's clock deliberately wrong by more than the heartbeat
period in both directions.

After every crash the harness drives recovery exactly the way
production does — reaper sweeps plus a fresh worker — and asserts the
recovery invariants:

1. **no job lost** — the submitted job reaches a terminal state;
2. **no double completion** — the schema-2 ``completions`` counter
   reads exactly 1 (0 for the failure scenario) and ``completed_by``
   names exactly one owner;
3. **takeover** — when the victim was killed before it could complete,
   the completion is stamped by the surviving host;
4. **byte-identity** — the stored result envelope equals an
   undisturbed in-process serial run of the same spec, byte for byte
   (failure envelopes compare by error type instead: the attempt count
   they embed legitimately differs after a crash-induced retry).

A kill that was planned but provably never fired (no process died of
SIGKILL) fails the scenario — a matrix that silently stops reaching
its points would otherwise stay green while testing nothing.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.errors import FaultError, ReproError
from repro.faults import crashpoints
from repro.faults.crashpoints import CRASHPOINTS, CrashPlan, CrashSpec

# Importing the instrumented modules populates the registry; the
# service imports are what make this module unsafe to import from
# ``repro.faults.__init__`` (it would cycle through the worker).
from repro.serialization import parse_job_failure
from repro.service import jobs as _jobs  # noqa: F401 - registers points
from repro.service import reaper as _reaper  # noqa: F401 - registers points
from repro.service import worker as _worker  # noqa: F401 - registers points
from repro.service.jobs import JobTable, job_id_for
from repro.service.runners import execute_spec, validate_spec

__all__ = [
    "CrashOutcome",
    "CrashTestReport",
    "DEFAULT_SPEC",
    "FAILING_SPEC",
    "HOST_A",
    "HOST_B",
    "PREEMPT_SPEC",
    "SKEW_POINTS",
    "crash_campaign",
]

#: the sweep every scenario runs: small enough for a tight matrix,
#: large enough to straddle heartbeats, journal appends and cache puts.
DEFAULT_SPEC: Dict[str, object] = {
    "experiment": "fig11",
    "params": {"rounds": 3},
}

#: a spec that validates (string-typed strategy) but deterministically
#: raises a typed ``ConfigError`` at execution — the ``failure``
#: scenario's vehicle for reaching the ``jobs.fail.*`` points.
FAILING_SPEC: Dict[str, object] = {
    "experiment": "sanitize",
    "params": {"strategy": "crashtest-no-such-strategy", "schedules": 2},
}

#: the preempt scenario's sweep: several seconds long, because the
#: SIGTERM must land *inside* the executor's drain guard (installed
#: once the sweep is underway) — against :data:`DEFAULT_SPEC` the
#: sweep can finish before the signal arrives and the graceful-release
#: path under test is never taken.
PREEMPT_SPEC: Dict[str, object] = {
    "experiment": "fig11",
    "params": {"rounds": 20},
}

HOST_A = "hostA"
HOST_B = "hostB"

#: the lease-critical subset the clock-skew campaign re-runs with the
#: victim's clock wrong by more than the heartbeat period (lease/3).
SKEW_POINTS: Tuple[str, ...] = (
    "jobs.heartbeat.pre-commit",
    "jobs.complete.pre-commit",
    "worker.heartbeat",
)

#: the only point whose victim can have completed the job before the
#: (post-commit) kill lands — everywhere else a killed victim proves
#: takeover: the completion must carry the survivor's host.
_VICTIM_MAY_COMPLETE = frozenset({"jobs.complete.post-commit"})

_Log = Callable[[str], None]


@dataclass
class CrashOutcome:
    """One (point, action, config) scenario's verdict."""

    point: str
    action: str
    scenario: str
    config: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""
    seconds: float = 0.0


@dataclass
class CrashTestReport:
    """The whole campaign: per-scenario outcomes plus budget accounting."""

    outcomes: List[CrashOutcome]
    budget_s: float
    elapsed_s: float

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "pass")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "fail")

    @property
    def skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "skip")

    @property
    def ok(self) -> bool:
        """Green means *every* scenario ran and passed — a skipped
        point (budget exhaustion) is a failure, not a footnote."""
        return self.failed == 0 and self.skipped == 0 and bool(self.outcomes)

    def render(self) -> str:
        """The per-point pass/fail table CI logs."""
        rows = [("POINT", "ACTION", "CONFIG", "STATUS", "SECS", "DETAIL")]
        for o in self.outcomes:
            rows.append(
                (
                    o.point,
                    o.action,
                    o.config,
                    o.status.upper(),
                    f"{o.seconds:.1f}",
                    o.detail,
                )
            )
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(rows[0]) - 1)
        ]
        lines = []
        for row in rows:
            cells = [row[col].ljust(widths[col]) for col in range(len(widths))]
            lines.append("  ".join(cells + [row[-1]]).rstrip())
        lines.append(
            f"crash matrix: {self.passed} passed, {self.failed} failed, "
            f"{self.skipped} skipped in {self.elapsed_s:.1f}s "
            f"(budget {self.budget_s:.0f}s)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fleet plumbing
# ---------------------------------------------------------------------------


def _worker_cmd(
    service_dir: Path,
    *,
    lease_s: float,
    host: str,
    once_timeout_s: float,
    submit_spec: Optional[Dict[str, object]],
    reap_once: bool,
    clock_skew_s: float,
) -> List[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro.service.worker_main",
        "--service-dir",
        str(service_dir),
        "--lease-s",
        str(lease_s),
        "--retry-budget",
        "5",
        "--poll-s",
        "0.05",
        "--cache",
    ]
    if submit_spec is not None:
        cmd += ["--submit-spec", json.dumps(submit_spec)]
    if reap_once:
        cmd += ["--reap-once"]
    else:
        cmd += [
            "--once",
            "--once-timeout-s",
            str(once_timeout_s),
            "--host-label",
            host,
        ]
    if clock_skew_s:
        cmd += ["--clock-skew-s", str(clock_skew_s)]
    return cmd


def _spawn(
    service_dir: Path,
    *,
    lease_s: float,
    host: str = HOST_B,
    plan: Optional[CrashPlan] = None,
    submit_spec: Optional[Dict[str, object]] = None,
    reap_once: bool = False,
    once_timeout_s: float = 20.0,
    clock_skew_s: float = 0.0,
) -> "subprocess.Popen[bytes]":
    """Start one fleet process; ``plan`` arms it via the environment."""
    env = os.environ.copy()
    env.pop(crashpoints.ENV_VAR, None)
    if plan is not None:
        env[crashpoints.ENV_VAR] = plan.to_env()
    # The subprocess must resolve the same repro tree as this process,
    # wherever the harness was launched from.
    src_root = str(Path(repro.__file__).resolve().parents[1])
    parts = [src_root] + [
        p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
    ]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return subprocess.Popen(
        _worker_cmd(
            service_dir,
            lease_s=lease_s,
            host=host,
            once_timeout_s=once_timeout_s,
            submit_spec=submit_spec,
            reap_once=reap_once,
            clock_skew_s=clock_skew_s,
        ),
        env=env,
        cwd=str(service_dir),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait(proc: "subprocess.Popen[bytes]", timeout_s: float) -> int:
    try:
        return proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise FaultError(
            f"fleet process {proc.pid} exceeded its {timeout_s:.0f}s deadline"
        )


def _table(service_dir: Path, lease_s: float) -> JobTable:
    return JobTable(
        service_dir / "jobs.sqlite3",
        lease_s=lease_s,
        retry_budget=5,
        backoff_base_s=0.05,
        backoff_cap_s=0.2,
    )


def _recover(
    table: JobTable,
    spec: Dict[str, object],
    job_id: str,
    service_dir: Path,
    *,
    lease_s: float,
    deadline_s: float = 60.0,
) -> Optional[Dict[str, object]]:
    """Drive recovery the way production does, until terminal or timeout.

    Reaper sweeps requeue expired leases; a fresh survivor worker on
    ``hostB`` is (re)spawned whenever the job sits ``queued`` with no
    live worker.  A job row missing entirely (the victim died before
    its submit committed) is re-submitted — a submission whose caller
    never learned it committed is not "lost work", it is work that was
    never accepted.
    """
    survivor: Optional[subprocess.Popen[bytes]] = None
    deadline = time.monotonic() + deadline_s
    try:
        while time.monotonic() < deadline:
            job = table.get(job_id)
            if job is None:
                table.submit(spec)
                continue
            if job["state"] in ("done", "failed"):
                return job
            if job["state"] == "leased":
                # Either an orphan (requeue once expired) or the live
                # survivor (its heartbeats keep it unreapable).
                table.requeue_expired()
            elif job["state"] == "queued" and (
                survivor is None or survivor.poll() is not None
            ):
                survivor = _spawn(
                    service_dir, lease_s=lease_s, host=HOST_B
                )
            time.sleep(0.05)
        return None
    finally:
        if survivor is not None and survivor.poll() is None:
            survivor.kill()
            survivor.wait()


# ---------------------------------------------------------------------------
# Scenario scripts
# ---------------------------------------------------------------------------


def _poll_until(
    predicate: Callable[[], bool], timeout_s: float, what: str
) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise FaultError(f"timed out after {timeout_s:.0f}s waiting for {what}")


def _run_victim(
    service_dir: Path,
    plan: CrashPlan,
    spec: Dict[str, object],
    *,
    lease_s: float,
    clock_skew_s: float,
) -> int:
    """Success/failure scenarios: an armed victim submits and pulls."""
    victim = _spawn(
        service_dir,
        lease_s=lease_s,
        host=HOST_A,
        plan=plan,
        submit_spec=spec,
        clock_skew_s=clock_skew_s,
    )
    return _wait(victim, 45.0)


def _run_preempt_victim(
    service_dir: Path,
    table: JobTable,
    plan: CrashPlan,
    spec: Dict[str, object],
    job_id: str,
    *,
    lease_s: float,
    clock_skew_s: float,
) -> int:
    """Preempt scenario: SIGTERM the victim mid-sweep so its graceful
    release path crosses the armed ``jobs.release.*`` point."""
    victim = _spawn(
        service_dir,
        lease_s=lease_s,
        host=HOST_A,
        plan=plan,
        submit_spec=spec,
        clock_skew_s=clock_skew_s,
    )
    try:
        _poll_until(
            lambda: (table.get(job_id) or {}).get("state") == "leased"
            or victim.poll() is not None,
            20.0,
            f"job {job_id} to be leased",
        )
        # The claim precedes the executor's SIGINT/SIGTERM drain guard
        # by runner-import-and-setup time; a signal in that window only
        # sets the worker's idle stop flag and the sweep runs to
        # completion.  Half a second puts the SIGTERM well inside the
        # guarded (multi-second) PREEMPT_SPEC sweep.
        time.sleep(0.5)
        if victim.poll() is None:
            victim.send_signal(signal.SIGTERM)
        return _wait(victim, 45.0)
    except BaseException:
        if victim.poll() is None:
            victim.kill()
            victim.wait()
        raise


def _orphan_lease(
    service_dir: Path,
    table: JobTable,
    spec: Dict[str, object],
    job_id: str,
    orphan_point: str,
    *,
    lease_s: float,
    clock_skew_s: float,
) -> None:
    """Kill a throwaway victim at ``orphan_point`` to leave the job
    leased by a dead owner — the precondition of the reaper and resume
    scenarios — then wait for the lease to be reapable."""
    rc = _run_victim(
        service_dir,
        CrashPlan([CrashSpec(orphan_point, "kill")], clock_skew_s=clock_skew_s),
        spec,
        lease_s=lease_s,
        clock_skew_s=clock_skew_s,
    )
    if rc != -signal.SIGKILL:
        raise FaultError(
            f"orphan victim was supposed to die of SIGKILL at "
            f"{orphan_point}, exited {rc}"
        )
    _poll_until(
        lambda: (
            (table.get(job_id) or {}).get("state") == "leased"
            and (table.get(job_id) or {}).get("lease_expires_at", 1e18)
            <= time.time()
        ),
        30.0,
        f"the orphaned lease on {job_id} to expire",
    )


def _run_scenario(
    point_name: str,
    action: str,
    *,
    workdir: Path,
    config: str,
    lease_s: float,
    clock_skew_s: float,
    reference: str,
    failure_type: str,
) -> CrashOutcome:
    point = CRASHPOINTS[point_name]
    started = time.monotonic()
    service_dir = workdir / f"{point_name.replace('.', '-')}--{action}--{config}"
    shutil.rmtree(service_dir, ignore_errors=True)  # stale state from a retry
    service_dir.mkdir(parents=True, exist_ok=True)
    if point.scenario == "failure":
        spec = validate_spec(FAILING_SPEC)
    elif point.scenario == "preempt":
        spec = validate_spec(PREEMPT_SPEC)
    else:
        spec = validate_spec(DEFAULT_SPEC)
    job_id = job_id_for(spec)
    plan = CrashPlan([CrashSpec(point_name, action)], clock_skew_s=clock_skew_s)
    table = _table(service_dir, lease_s)
    problems: List[str] = []
    kill_proven = action != "kill"

    def saw_kill(rc: int) -> int:
        nonlocal kill_proven
        if rc == -signal.SIGKILL:
            kill_proven = True
        return rc

    try:
        if point.scenario in ("success", "failure"):
            # The victim performs the submission itself (--submit-spec),
            # so for the submit points the armed transaction is a real
            # INSERT, not a dedup read.
            if not point_name.startswith("jobs.submit."):
                table.submit(spec)
            saw_kill(
                _run_victim(
                    service_dir,
                    plan,
                    spec,
                    lease_s=lease_s,
                    clock_skew_s=clock_skew_s,
                )
            )
        elif point.scenario == "preempt":
            table.submit(spec)
            saw_kill(
                _run_preempt_victim(
                    service_dir,
                    table,
                    plan,
                    spec,
                    job_id,
                    lease_s=lease_s,
                    clock_skew_s=clock_skew_s,
                )
            )
        elif point.scenario == "reaper":
            table.submit(spec)
            _orphan_lease(
                service_dir,
                table,
                spec,
                job_id,
                "jobs.claim.post-commit",
                lease_s=lease_s,
                clock_skew_s=clock_skew_s,
            )
            saw_kill(
                _wait(
                    _spawn(
                        service_dir,
                        lease_s=lease_s,
                        plan=plan,
                        reap_once=True,
                        clock_skew_s=clock_skew_s,
                    ),
                    30.0,
                )
            )
        elif point.scenario == "resume":
            table.submit(spec)
            _orphan_lease(
                service_dir,
                table,
                spec,
                job_id,
                "journal.append",
                lease_s=lease_s,
                clock_skew_s=clock_skew_s,
            )
            table.requeue_expired()
            saw_kill(
                _run_victim(
                    service_dir,
                    plan,
                    spec,
                    lease_s=lease_s,
                    clock_skew_s=clock_skew_s,
                )
            )
        else:  # pragma: no cover - registry validation forbids it
            raise FaultError(f"unknown scenario {point.scenario!r}")

        job = _recover(
            table, spec, job_id, service_dir, lease_s=lease_s
        )
        if job is None:
            problems.append("job never reached a terminal state (lost)")
        else:
            problems.extend(
                _check_invariants(
                    job,
                    point_name,
                    action,
                    scenario=point.scenario,
                    reference=reference,
                    failure_type=failure_type,
                )
            )
        if not kill_proven:
            problems.append(
                "planned kill never fired (no process died of SIGKILL) — "
                "the scenario no longer reaches this point"
            )
    except (ReproError, OSError) as exc:
        problems.append(f"{type(exc).__name__}: {exc}")
    seconds = time.monotonic() - started
    if problems:
        return CrashOutcome(
            point_name,
            action,
            point.scenario,
            config,
            "fail",
            "; ".join(problems),
            seconds,
        )
    shutil.rmtree(service_dir, ignore_errors=True)
    return CrashOutcome(
        point_name, action, point.scenario, config, "pass", "", seconds
    )


def _check_invariants(
    job: Dict[str, object],
    point_name: str,
    action: str,
    *,
    scenario: str,
    reference: str,
    failure_type: str,
) -> List[str]:
    problems: List[str] = []
    if scenario == "failure":
        if job["state"] != "failed":
            problems.append(f"expected state 'failed', got {job['state']!r}")
        elif job["completions"] != 0:
            problems.append(
                f"failed job shows {job['completions']} completion(s)"
            )
        else:
            try:
                payload = parse_job_failure(
                    str(job["error"]), source=f"job {job['id']}"
                )
            except ReproError as exc:
                problems.append(f"unparsable failure envelope: {exc}")
            else:
                got = payload["error"]["type"]
                if got != failure_type:
                    problems.append(
                        f"expected failure type {failure_type!r}, got {got!r}"
                    )
        return problems
    if job["state"] != "done":
        problems.append(f"expected state 'done', got {job['state']!r}")
        return problems
    if job["completions"] != 1:
        problems.append(
            f"double-completion: completions={job['completions']} (want 1)"
        )
    completed_by = str(job["completed_by"] or "")
    if "@" not in completed_by:
        problems.append(f"missing completed_by owner, got {completed_by!r}")
    elif (
        action == "kill"
        and point_name not in _VICTIM_MAY_COMPLETE
        and not completed_by.endswith(f"@{HOST_B}")
    ):
        problems.append(
            f"no takeover: killed victim's host still completed "
            f"({completed_by!r})"
        )
    if job["result"] != reference:
        problems.append(
            "result envelope differs from the undisturbed serial run "
            f"({len(str(job['result'] or ''))} vs {len(reference)} bytes)"
        )
    return problems


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------


def _reference_result(workdir: Path, spec: Dict[str, object], tag: str) -> str:
    """The undisturbed serial envelope every recovery must reproduce."""
    return execute_spec(
        validate_spec(spec),
        journal_dir=workdir / f"reference-journal-{tag}",
        jobs=1,
    )


def _reference_failure(workdir: Path) -> str:
    """The typed error the failure scenario deterministically buys."""
    try:
        execute_spec(
            validate_spec(FAILING_SPEC),
            journal_dir=workdir / "reference-failure-journal",
            jobs=1,
        )
    except ReproError as exc:
        return type(exc).__name__
    raise FaultError(
        "FAILING_SPEC unexpectedly succeeded; the failure scenario needs "
        "a spec that deterministically raises a ReproError"
    )


def crash_campaign(
    *,
    points: Optional[Sequence[str]] = None,
    actions: Optional[Sequence[str]] = None,
    budget_s: float = 900.0,
    lease_s: float = 1.0,
    skew_s: float = 0.6,
    workdir: Optional[Path] = None,
    log: Optional[_Log] = None,
) -> CrashTestReport:
    """Run the crash matrix; returns the full per-scenario report.

    The baseline pass covers every registered point × every supported
    action (filter with ``points``/``actions``); the skew pass re-runs
    :data:`SKEW_POINTS` kills with the victim's clock ``±skew_s``
    seconds wrong (default 0.6 s against a 1 s lease — more than the
    lease/3 heartbeat period in both directions).  ``budget_s`` bounds
    wall clock: scenarios that do not get to run are reported as
    ``skip`` and make the report not-:attr:`~CrashTestReport.ok`, so a
    starved matrix cannot pass silently.
    """
    say: _Log = log if log is not None else (lambda _msg: None)
    crashpoints.disarm()
    selected = sorted(points if points is not None else CRASHPOINTS)
    for name in selected:
        if name not in CRASHPOINTS:
            raise FaultError(
                f"unknown crash point {name!r}; known: "
                f"{', '.join(sorted(CRASHPOINTS))}"
            )
    if skew_s < 0:
        raise FaultError(f"skew_s must be >= 0, got {skew_s}")
    jobs_plan: List[Tuple[str, str, float, str]] = []
    for name in selected:
        for action in CRASHPOINTS[name].actions:
            if actions is not None and action not in actions:
                continue
            jobs_plan.append((name, action, 0.0, "baseline"))
    if skew_s:
        for name in SKEW_POINTS:
            if name not in selected:
                continue
            for direction in (skew_s, -skew_s):
                jobs_plan.append(
                    (name, "kill", direction, f"skew{direction:+.1f}s")
                )

    own_workdir = workdir is None
    root = Path(
        workdir if workdir is not None else tempfile.mkdtemp(prefix="crashtest-")
    )
    root.mkdir(parents=True, exist_ok=True)
    outcomes: List[CrashOutcome] = []
    started = time.monotonic()
    try:
        say(f"crash matrix: {len(jobs_plan)} scenario(s), budget {budget_s:.0f}s")
        # Only pay for the reference runs the selected scenarios need.
        needed = {CRASHPOINTS[name].scenario for name, _, _, _ in jobs_plan}
        references: Dict[str, str] = {}
        if needed - {"failure", "preempt"}:
            references[""] = _reference_result(root, DEFAULT_SPEC, "default")
        if "preempt" in needed:
            references["preempt"] = _reference_result(
                root, PREEMPT_SPEC, "preempt"
            )
        failure_type = (
            _reference_failure(root) if "failure" in needed else ""
        )
        for name, action, skew, config in jobs_plan:
            if time.monotonic() - started > budget_s:
                outcomes.append(
                    CrashOutcome(
                        name,
                        action,
                        CRASHPOINTS[name].scenario,
                        config,
                        "skip",
                        "wall-clock budget exhausted before this scenario",
                    )
                )
                continue
            scenario = CRASHPOINTS[name].scenario
            reference = references.get(
                scenario, references.get("", "")
            )
            outcome = _run_scenario(
                name,
                action,
                workdir=root,
                config=config,
                lease_s=lease_s,
                clock_skew_s=skew,
                reference=reference,
                failure_type=failure_type,
            )
            if outcome.status == "fail" and "never fired" in outcome.detail:
                # The one tolerated race: the victim finished before the
                # trigger (e.g. a SIGTERM that lost the claim race).
                # One clean retry; a second miss is a real finding.
                say(f"  RETRY {name} [{action}, {config}]: {outcome.detail}")
                outcome = _run_scenario(
                    name,
                    action,
                    workdir=root,
                    config=config,
                    lease_s=lease_s,
                    clock_skew_s=skew,
                    reference=reference,
                    failure_type=failure_type,
                )
            say(
                f"  {outcome.status.upper():4s} {name} [{action}, {config}] "
                f"({outcome.seconds:.1f}s)"
                + (f": {outcome.detail}" if outcome.detail else "")
            )
            outcomes.append(outcome)
    finally:
        if own_workdir:
            shutil.rmtree(root, ignore_errors=True)
    return CrashTestReport(
        outcomes=outcomes,
        budget_s=budget_s,
        elapsed_s=time.monotonic() - started,
    )
