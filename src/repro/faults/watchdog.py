"""The barrier watchdog: typed, recoverable stall detection.

The engine's built-in deadlock detection only fires when the event heap
drains — correct, but terminal: the run dies with
:class:`~repro.errors.DeadlockError` and nothing can be salvaged.  A
:class:`BarrierWatchdog` turns the same condition into a *recoverable*
failure.  It is an ordinary simulated process that wakes every
``deadline_ns`` of virtual time and asks the engine two questions:

1. does any live process other than me have a scheduled wakeup
   (:meth:`~repro.simcore.engine.Engine.pending_events`)?  If yes, the
   simulation can still make progress — go back to sleep.
2. otherwise, is anything parked
   (:attr:`~repro.simcore.engine.Engine.blocked_processes`)?  If yes,
   nothing can ever wake it — this is a certain stall.

On a stall it kills the in-flight kernels exactly like the driver
watchdog (cancelling block processes frees their SM slots and wakes
joiners with a :class:`~repro.simcore.process.Cancelled` sentinel), then
finishes.  The run loop drains cleanly and the harness raises a typed
:class:`~repro.errors.BarrierTimeoutError` naming every stuck process —
including any injected fault, whose ``waiting_on`` reason carries the
fault's name.

Because question 1 is exact (a pending event *is* future progress),
the watchdog never false-positives on stragglers or long computes: the
deadline only sets detection latency, not a tightness/correctness
trade-off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.simcore.effects import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device
    from repro.gpu.host import KernelHandle
    from repro.simcore.process import Process

__all__ = ["DEFAULT_BARRIER_DEADLINE_NS", "BarrierWatchdog"]

#: default stall-check cadence (virtual ns).  Virtual time is free, so
#: this only trades detection latency against a handful of extra events.
DEFAULT_BARRIER_DEADLINE_NS = 1_000_000


class BarrierWatchdog:
    """Detects a globally stalled run and kills the kernels in flight."""

    def __init__(
        self,
        device: "Device",
        deadline_ns: int = DEFAULT_BARRIER_DEADLINE_NS,
        strategy_name: str = "unknown",
    ):
        if deadline_ns < 1:
            raise ConfigError(f"deadline_ns must be >= 1, got {deadline_ns}")
        self.device = device
        self.deadline_ns = deadline_ns
        self.strategy_name = strategy_name
        #: kernel handles to kill on a stall (appended by the runner).
        self.handles: List["KernelHandle"] = []
        #: True once the watchdog detected a stall and killed the run.
        self.fired = False
        #: virtual time of the stall detection.
        self.fired_at: Optional[int] = None
        #: the parked processes at detection time.
        self.stuck: List[Tuple[str, str]] = []
        #: stall checks performed (diagnostics).
        self.checks = 0
        self._process: Optional["Process"] = None

    def arm(self) -> "Process":
        """Spawn the watchdog process on the device's engine."""
        self._process = self.device.engine.spawn(
            self._run(), name="barrier-watchdog"
        )
        return self._process

    def disarm(self) -> None:
        """Cancel the watchdog (call when the kernel drains normally)."""
        if self._process is not None and self._process.alive:
            self.device.engine.cancel(self._process, "kernel drained")

    def watch(self, handle: "KernelHandle") -> None:
        """Register a kernel to kill if the run stalls."""
        self.handles.append(handle)

    # -- the watchdog process ----------------------------------------------

    def _run(self) -> Generator:
        engine = self.device.engine
        while True:
            yield Delay(self.deadline_ns)
            self.checks += 1
            ignore = (self._process,) if self._process is not None else ()
            if engine.pending_events(ignore=ignore) > 0:
                continue  # someone else will run: progress is possible
            blocked = engine.blocked_processes
            if not blocked:
                return  # everything finished; we outlived the run
            # Certain stall: no pending work, processes parked forever.
            self.fired = True
            self.fired_at = engine.now
            self.stuck = blocked
            reason = (
                f"barrier watchdog killed {self.strategy_name} after "
                f"{self.deadline_ns} ns without progress"
            )
            for handle in self.handles:
                if handle.end_ns is not None or handle.killed:
                    continue
                handle.killed = True
                handle.end_ns = engine.now
                if handle.process is not None:
                    engine.cancel(handle.process, reason)
                for block in handle.block_processes:
                    engine.cancel(block, reason)
            return
