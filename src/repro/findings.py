"""The shared finding taxonomy for all correctness tooling.

Both correctness layers — the *dynamic* barrier sanitizer
(:mod:`repro.sanitize`, which must execute a schedule to find a bug)
and the *static* barrier-protocol linter (:mod:`repro.staticcheck`,
which finds it from the AST before a single simulated cycle runs) —
report against one registry of :class:`FindingCode` entries, so CLI
output, stored reports and the docs render every finding the same way:

    [SC003 error] stale-spin-read: <message> (paper §5; re-read the cell)
    [DYN002 error] barrier-deadlock: <message> (paper §5)

Static codes are ``SC001``–``SC008``; dynamic bug classes keep their
historical slug names (``barrier-deadlock`` …) and carry ``DYN00x``
codes.  ``related`` links each static code to the dynamic classes the
same defect produces at runtime — the cross-validation harness
(:mod:`repro.staticcheck.crossval`) holds the two layers to that
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "DYNAMIC_CODES",
    "FINDING_CODES",
    "FindingCode",
    "SEVERITIES",
    "STATIC_CODES",
    "by_name",
    "format_finding",
    "get_code",
]

#: recognised severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "advice")


@dataclass(frozen=True)
class FindingCode:
    """One entry of the shared static/dynamic finding taxonomy."""

    code: str  #: stable identifier, e.g. ``"SC001"`` or ``"DYN002"``
    name: str  #: human slug, e.g. ``"barrier-divergence"``
    severity: str  #: one of :data:`SEVERITIES`
    paper_ref: str  #: the paper section the hazard comes from
    summary: str  #: one-line description of the defect
    remedy: str  #: one-line fix advice
    origin: str  #: ``"static"`` (linter) or ``"dynamic"`` (sanitizer)
    #: codes of the counterpart layer that the same defect produces —
    #: a static code's related dynamic classes and vice versa.
    related: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"{self.code}: unknown severity {self.severity!r}; "
                f"known: {', '.join(SEVERITIES)}"
            )
        if self.origin not in ("static", "dynamic"):
            raise ValueError(
                f"{self.code}: origin must be 'static' or 'dynamic', "
                f"got {self.origin!r}"
            )


_STATIC = (
    FindingCode(
        code="SC001",
        name="barrier-divergence",
        severity="error",
        paper_ref="§4",
        summary=(
            "a barrier call is bypassed on a block-identity-dependent "
            "path, so the grid disagrees on how many rounds were "
            "synchronized"
        ),
        remedy="make every block execute the same barrier sequence",
        origin="static",
        related=("DYN003", "DYN002"),
    ),
    FindingCode(
        code="SC002",
        name="static-occupancy-violation",
        severity="error",
        paper_ref="§5",
        summary=(
            "grid size literal exceeds the device's SM count; "
            "non-preemptive blocks beyond co-residency starve a "
            "device-side barrier"
        ),
        remedy="keep num_blocks <= the device preset's SM count",
        origin="static",
        related=("DYN001",),
    ),
    FindingCode(
        code="SC003",
        name="stale-spin-read",
        severity="error",
        paper_ref="§5",
        summary=(
            "spin predicate reads a cached local instead of re-fetching "
            "the GlobalArray cell, so the awaited store is never observed "
            "(the volatile bug)"
        ),
        remedy="read array.data inside the spin predicate every poll",
        origin="static",
        related=("DYN002",),
    ),
    FindingCode(
        code="SC004",
        name="unguarded-atomic-arrival",
        severity="error",
        paper_ref="§5.1",
        summary=(
            "an atomic arrival on a loop-invariant cell can execute more "
            "than once per block per round (the leading-thread guard is "
            "missing), over-counting goalVal"
        ),
        remedy=(
            "guard the atomic so each block's leading thread adds "
            "exactly once per round"
        ),
        origin="static",
        related=("DYN004",),
    ),
    FindingCode(
        code="SC005",
        name="goalval-anti-pattern",
        severity="warning",
        paper_ref="§5.1",
        summary=(
            "goalVal protocol drift: the arrival counter is reset per "
            "round (the rejected §5.1 ablation) or the goal is not a "
            "whole multiple of the grid size (releases early)"
        ),
        remedy="accumulate goalVal by num_blocks each round, never reset",
        origin="static",
        related=("DYN004",),
    ),
    FindingCode(
        code="SC006",
        name="shared-memory-race",
        severity="error",
        paper_ref="§2",
        summary=(
            "two shared-memory accesses to the same array at different "
            "indices with no intervening __syncthreads()"
        ),
        remedy="separate conflicting shared accesses with syncthreads()",
        origin="static",
        related=("DYN006",),
    ),
    FindingCode(
        code="SC007",
        name="undersized-flag-array",
        severity="error",
        paper_ref="§5.3",
        summary=(
            "a per-block flag array indexed by block id is allocated "
            "with a size that does not scale with num_blocks"
        ),
        remedy="size lock-free flag arrays by the prepared num_blocks",
        origin="static",
        related=("DYN006", "DYN002"),
    ),
    FindingCode(
        code="SC008",
        name="unreleased-sync-path",
        severity="error",
        paper_ref="§5.3",
        summary=(
            "an acquired resource or awaited release flag has no "
            "reachable release on some path (e.g. the Fig. 9 scatter "
            "store is missing), so waiters spin forever"
        ),
        remedy=(
            "ensure every Acquire has a dominating Release and every "
            "awaited flag a reachable release store"
        ),
        origin="static",
        related=("DYN002",),
    ),
    FindingCode(
        code="SC009",
        name="undeclared-wait-spec",
        severity="advice",
        paper_ref="§5.3",
        summary=(
            "a spin site whose predicate is a mechanical threshold "
            "check carries no WaitSpec declaration, so the fast "
            "engine's indexed-waiter path silently degrades to "
            "predicate re-evaluation"
        ),
        remedy=(
            "declare the awaited condition with "
            "spec=WaitSpec(threshold, lo=...) at the spin site"
        ),
        origin="static",
    ),
    FindingCode(
        code="SC100",
        name="suboptimal-strategy",
        severity="advice",
        paper_ref="§7",
        summary=(
            "the configured barrier strategy diverges from the Eq. 3-9 "
            "cost model's recommendation for the workload under the "
            "preset's calibrated, topology-resolved timings"
        ),
        remedy=(
            "switch to the recommended strategy, or validate the "
            "configured one with a measured sweep (repro tune --measure)"
        ),
        origin="static",
    ),
)

_DYNAMIC = (
    FindingCode(
        code="DYN001",
        name="occupancy-deadlock",
        severity="error",
        paper_ref="§5",
        summary=(
            "grid exceeds co-resident capacity; a device barrier would "
            "starve (non-preemptive blocks, one block per SM)"
        ),
        remedy="shrink the grid or switch to a host-side barrier",
        origin="dynamic",
        related=("SC002",),
    ),
    FindingCode(
        code="DYN002",
        name="barrier-deadlock",
        severity="error",
        paper_ref="§5",
        summary=(
            "blocks entered a barrier round and can never leave it "
            "(e.g. a dropped release/scatter store)"
        ),
        remedy="release every waiter on every protocol path",
        origin="dynamic",
        related=("SC001", "SC003", "SC007", "SC008"),
    ),
    FindingCode(
        code="DYN003",
        name="barrier-divergence",
        severity="error",
        paper_ref="§4",
        summary=(
            "blocks disagree on which barrier rounds they entered "
            "(a block skipped a round others synchronized on)"
        ),
        remedy="make every block execute the same barrier sequence",
        origin="dynamic",
        related=("SC001",),
    ),
    FindingCode(
        code="DYN004",
        name="premature-release",
        severity="error",
        paper_ref="§5.1",
        summary=(
            "a block exited a barrier round before every block entered "
            "it (e.g. an under-counted goal value)"
        ),
        remedy="make the release condition require all N arrivals",
        origin="dynamic",
        related=("SC004", "SC005"),
    ),
    FindingCode(
        code="DYN005",
        name="round-overlap",
        severity="error",
        paper_ref="§4",
        summary=(
            "a block executed round r+1 work while round r was "
            "incomplete — conflicting accesses with no intervening grid "
            "barrier"
        ),
        remedy="separate dependent rounds with a grid-wide barrier",
        origin="dynamic",
        related=("SC001", "SC005"),
    ),
    FindingCode(
        code="DYN006",
        name="data-race",
        severity="error",
        paper_ref="§2",
        summary=(
            "different blocks touched the same global-memory cell in the "
            "same barrier epoch, at least one writing, outside any "
            "barrier protocol"
        ),
        remedy="order conflicting accesses with a barrier or atomics",
        origin="dynamic",
        related=("SC006", "SC007"),
    ),
    FindingCode(
        code="DYN007",
        name="verification-failed",
        severity="error",
        paper_ref="§7",
        summary=(
            "the algorithm's output does not match its reference "
            "(usually a downstream symptom of one of the classes above)"
        ),
        remedy="fix the upstream synchronization finding first",
        origin="dynamic",
    ),
    FindingCode(
        code="DYN008",
        name="simulation-error",
        severity="error",
        paper_ref="§5",
        summary=(
            "the run aborted inside the simulator (watchdog kill, "
            "protocol assertion, …) before the sanitizer could finish "
            "observing it"
        ),
        remedy="replay the printed seed and fix the aborting protocol",
        origin="dynamic",
    ),
)

#: every registered code, keyed by its stable ``code`` field.
FINDING_CODES: Dict[str, FindingCode] = {
    entry.code: entry for entry in _STATIC + _DYNAMIC
}

#: the linter's codes in rule order.
STATIC_CODES: Tuple[str, ...] = tuple(e.code for e in _STATIC)

#: the sanitizer's codes in bug-class order.
DYNAMIC_CODES: Tuple[str, ...] = tuple(e.code for e in _DYNAMIC)

_BY_NAME: Dict[str, FindingCode] = {}
for _entry in _STATIC + _DYNAMIC:
    # Dynamic and static entries may share a slug (barrier-divergence);
    # name lookup prefers the dynamic entry for backward compatibility
    # with the sanitizer's kind strings, which predate the registry.
    _BY_NAME.setdefault(_entry.name, _entry)
for _entry in _DYNAMIC:
    _BY_NAME[_entry.name] = _entry


def get_code(code: str) -> FindingCode:
    """Registry entry for a stable code (``SC00x`` / ``DYN00x``)."""
    try:
        return FINDING_CODES[code]
    except KeyError:
        raise KeyError(
            f"unknown finding code {code!r}; "
            f"known: {', '.join(sorted(FINDING_CODES))}"
        ) from None


def by_name(name: str) -> FindingCode:
    """Registry entry for a slug name (sanitizer ``kind`` strings)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown finding name {name!r}; "
            f"known: {', '.join(sorted(_BY_NAME))}"
        ) from None


def format_finding(code: FindingCode, message: str, suffix: str = "") -> str:
    """The one true finding line, shared by static and dynamic renders.

    ``[CODE severity] name: message (paper §ref[; suffix])``
    """
    tail = f"paper {code.paper_ref}"
    if suffix:
        tail = f"{tail}; {suffix}"
    return (
        f"[{code.code} {code.severity}] {code.name}: {message} ({tail})"
    )
