"""Discovery: find the kernel-shaped code in a module's AST.

The linter does not analyze arbitrary Python — it looks for the three
shapes device code takes in this repository:

* **strategy classes** — ``class FooSync(SyncStrategy)`` (or a subclass
  of another strategy class); their generator methods (``barrier``,
  ``instrumented_barrier``, helpers) are barrier protocol bodies and
  ``prepare`` holds the device-state allocations;
* **kernel generators** — any generator function whose first parameter
  is named ``ctx`` or ``wctx`` (the :class:`~repro.gpu.context.BlockCtx`
  convention), wherever it is defined, including nested inside another
  function (the ``examples/custom_kernel.py`` shape);
* **effect generators** — any other generator that yields a raw
  ``Acquire``/``Release`` effect (checked only for release-path bugs).

Everything else in a file is ignored, except the module-wide scan for
grid-size literals (rule SC002) and integer constant resolution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

__all__ = [
    "BARRIER_CALLS",
    "BLOCK_ID_ATTRS",
    "KernelUnit",
    "StrategyClass",
    "block_identity_names",
    "call_receiver",
    "call_tail",
    "discover",
    "expr_depends_on",
    "expr_names",
    "int_constants",
    "is_block_dependent",
    "is_generator",
    "resolve_attr_root",
    "resolve_int",
    "self_attr_aliases",
    "yielded_calls",
]

#: attribute names whose value identifies the executing block/thread.
BLOCK_ID_ATTRS: Set[str] = {
    "block_id",
    "block_idx",
    "is_leader_block",
    "checker_block",
    "warp_id",
    "thread_id",
}

#: call tails that constitute a grid-barrier synchronization point.
BARRIER_CALLS: Set[str] = {
    "syncthreads",
    "spin_until",
    "barrier",
    "instrumented_barrier",
    "run_warps",
}

#: effect constructors whose raw yield makes a function worth analyzing
#: (only the release-path rule reasons about them).
EFFECT_NAMES: Set[str] = {"Acquire", "Release"}

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class StrategyClass:
    """One ``SyncStrategy``-shaped class definition in a file."""

    node: ast.ClassDef
    name: str
    #: method name → function node (generator or not).
    methods: Dict[str, FunctionNode] = field(default_factory=dict)

    @property
    def line_span(self) -> Tuple[int, int]:
        return (self.node.lineno, self.node.end_lineno or self.node.lineno)


@dataclass
class KernelUnit:
    """One function body the rule engine analyzes."""

    func: FunctionNode
    qualname: str
    kind: str  #: ``"barrier-method"`` | ``"kernel"`` | ``"effect-gen"``
    cls: Optional[StrategyClass] = None


# -- small AST helpers -------------------------------------------------------


def _walk_scoped(node: ast.AST) -> Iterator[ast.AST]:
    """Yield descendants of ``node`` without entering nested functions."""
    stack: List[ast.AST] = [node]
    first = True
    while stack:
        here = stack.pop()
        if not first and isinstance(
            here, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        first = False
        yield here
        stack.extend(ast.iter_child_nodes(here))


def is_generator(func: FunctionNode) -> bool:
    """True when the function body contains a yield in its own scope."""
    for node in _walk_scoped(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def call_tail(call: ast.Call) -> Optional[str]:
    """The final name of a call: ``ctx.atomic_add(...)`` → ``atomic_add``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def call_receiver(call: ast.Call) -> Optional[str]:
    """The receiver name: ``ctx.atomic_add(...)`` → ``ctx`` (else None)."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def yielded_calls(stmt: ast.AST) -> List[ast.Call]:
    """All calls that are the value of a yield/yield-from in ``stmt``.

    Does not descend into nested functions or lambdas, so a spin
    predicate's body never counts as a yield site.
    """
    calls: List[ast.Call] = []
    for node in _walk_scoped(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = node.value
            if isinstance(value, ast.Call):
                calls.append(value)
    return calls


def expr_names(expr: ast.AST) -> Set[str]:
    """Every ``Name`` id referenced in an expression (scoped walk)."""
    return {
        node.id for node in _walk_scoped(expr) if isinstance(node, ast.Name)
    }


def expr_depends_on(expr: ast.AST, names: Set[str]) -> bool:
    """True if the expression references any of ``names`` (scoped)."""
    return bool(expr_names(expr) & names)


def int_constants(module: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int literal>`` bindings (incl. unary minus)."""
    consts: Dict[str, int] = {}
    for stmt in module.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = _int_literal(stmt.value)
        if value is not None:
            consts[target.id] = value
    return consts


def _int_literal(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _int_literal(node.operand)
        return -inner if inner is not None else None
    return None


def resolve_int(node: ast.AST, consts: Dict[str, int]) -> Optional[int]:
    """An expression's integer value, via literals and module constants."""
    literal = _int_literal(node)
    if literal is not None:
        return literal
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


# -- alias/dataflow helpers --------------------------------------------------


def resolve_attr_root(
    expr: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve an expression to the ``self`` attribute it aliases.

    ``self._mutex`` → ``_mutex``; ``mutex`` → via ``aliases``;
    ``self._mutexes[level]`` → ``_mutexes``.  Returns ``None`` when the
    expression is not rooted in an instance attribute.
    """
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self":
            return expr.attr
        return None
    if isinstance(expr, ast.Subscript):
        return resolve_attr_root(expr.value, aliases)
    if isinstance(expr, ast.Name):
        return aliases.get(expr.id)
    return None


def self_attr_aliases(func: FunctionNode) -> Dict[str, str]:
    """Local name → ``self`` attribute root, from straight assignments.

    Handles ``mutex = self._mutex``, tuple unpacking
    (``a, b = self._in, self._out``), subscripts
    (``mutex = self._mutexes[level]`` → ``_mutexes``) and one level of
    re-aliasing.  Flow-insensitive in source order, which is enough for
    the protocol bodies this linter targets.
    """
    aliases: Dict[str, str] = {}
    for node in _walk_scoped(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            pairs: List[Tuple[ast.expr, ast.expr]] = []
            if isinstance(target, ast.Name):
                pairs.append((target, node.value))
            elif isinstance(target, ast.Tuple) and isinstance(
                node.value, ast.Tuple
            ):
                if len(target.elts) == len(node.value.elts):
                    pairs.extend(zip(target.elts, node.value.elts))
            for tgt, value in pairs:
                if not isinstance(tgt, ast.Name):
                    continue
                root = resolve_attr_root(value, aliases)
                if root is not None:
                    aliases[tgt.id] = root
    return aliases


def block_identity_names(func: FunctionNode) -> Set[str]:
    """Local names carrying block/thread identity.

    Seeded with the conventional ``bid``/``tid`` plus every local
    assigned from a block-identity attribute (``bid = ctx.block_id``).
    """
    names: Set[str] = {"bid", "tid"}
    for node in _walk_scoped(func):
        if isinstance(node, ast.Assign):
            if _mentions_block_identity(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Tuple):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                names.add(elt.id)
    return names


def _mentions_block_identity(expr: ast.AST, extra_names: Set[str]) -> bool:
    for node in _walk_scoped(expr):
        if isinstance(node, ast.Attribute) and node.attr in BLOCK_ID_ATTRS:
            return True
        if isinstance(node, ast.Name) and node.id in extra_names:
            return True
    return False


def is_block_dependent(expr: ast.AST, identity_names: Set[str]) -> bool:
    """True when an expression depends on which block is executing."""
    return _mentions_block_identity(expr, identity_names)


# -- discovery ---------------------------------------------------------------

#: base-name suffixes that mark a class as a barrier strategy.
_STRATEGY_BASE_SUFFIXES = ("SyncStrategy", "Sync", "Barrier", "Strategy")


def _base_names(node: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_strategy_class(node: ast.ClassDef, known: Set[str]) -> bool:
    if node.name.endswith(_STRATEGY_BASE_SUFFIXES):
        return True
    for base in _base_names(node):
        if base in known:
            return True
        if base.endswith(_STRATEGY_BASE_SUFFIXES):
            return True
    return False


def discover(
    module: ast.Module,
) -> Tuple[List[KernelUnit], List[StrategyClass]]:
    """All analyzable units (and strategy classes) in a parsed module."""
    units: List[KernelUnit] = []
    classes: List[StrategyClass] = []
    known_strategy_names: Set[str] = set()
    seen_funcs: Set[int] = set()

    def add_unit(
        func: FunctionNode,
        qualname: str,
        kind: str,
        cls: Optional[StrategyClass] = None,
    ) -> None:
        if id(func) in seen_funcs:
            return
        seen_funcs.add(id(func))
        units.append(KernelUnit(func, qualname, kind, cls))

    # Pass 1: strategy classes and their methods.
    for node in ast.walk(module):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_strategy_class(node, known_strategy_names):
            continue
        known_strategy_names.add(node.name)
        cls = StrategyClass(node, node.name)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = stmt
        classes.append(cls)
        for name, func in cls.methods.items():
            if is_generator(func):
                add_unit(func, f"{cls.name}.{name}", "barrier-method", cls)

    # Pass 2: free kernel generators (first param ctx/wctx) and raw
    # effect generators, anywhere in the module (including nested).
    for node in ast.walk(module):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if id(node) in seen_funcs or not is_generator(node):
            continue
        args = node.args.posonlyargs + node.args.args
        first = args[0].arg if args else None
        if first in ("ctx", "wctx"):
            add_unit(node, node.name, "kernel")
            continue
        for stmt in node.body:
            for call in yielded_calls(stmt):
                if call_tail(call) in EFFECT_NAMES:
                    add_unit(node, node.name, "effect-gen")
                    break
            else:
                continue
            break

    return units, classes
