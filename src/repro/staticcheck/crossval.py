"""Cross-validation: the linter vs. the dynamic sanitizer's mutants.

The repository ships deliberately-broken barrier strategies
(:mod:`repro.sanitize.mutants`) that the *dynamic* sanitizer flags
after running fuzzed schedules.  This module asserts the static linter
catches the same defects **without executing a single simulated
cycle**, and that the two taxonomies agree: each mutant's expected
``SC`` code must be registry-linked (:mod:`repro.findings`) to the
dynamic bug class the sanitizer reports for it.

Since the repair engine (:mod:`repro.staticcheck.repair`), the harness
also closes the loop in the other direction: :func:`repair_mutant`
drives each seeded mutant through ``fix_source`` and
:func:`verify_repairs` proves the repaired classes are lint-clean,
sanitizer-clean, and produce verified results under both the
``reference`` and ``fast`` engines — every ``broken-*`` mutant must be
*repairable back to passing*, not merely detectable.

This is the linter's ground truth: if a future rule change stops
flagging a mutant — or starts flagging a clean shipped strategy — the
cross-validation tests fail before the rule ships.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Set

from repro.findings import FINDING_CODES
from repro.staticcheck.engine import LintError, lint_source, lint_strategy
from repro.staticcheck.repair import FixResult, fix_source
from repro.staticcheck.report import LintReport, StaticFinding

__all__ = [
    "MUTANT_EXPECTATIONS",
    "MutantExpectation",
    "MutantRepair",
    "SC009_FIXTURE",
    "crossval_mutant",
    "crossval_all",
    "expectation_links_ok",
    "repair_mutant",
    "repaired_findings",
    "verify_repairs",
]


@dataclass(frozen=True)
class MutantExpectation:
    """What both analyzers must say about one seeded mutant."""

    mutant: str  #: registered strategy name (``broken-*``)
    static: Set[str]  #: exact set of SC codes the linter must report
    dynamic: Set[str]  #: dynamic bug classes the sanitizer reports


#: the seeded-mutant ground truth.  Keys are registry names from
#: :mod:`repro.sanitize.mutants`; the ``dynamic`` sets mirror that
#: module's docstrings (and the sanitizer's own mutant tests).
MUTANT_EXPECTATIONS: Dict[str, MutantExpectation] = {
    exp.mutant: exp
    for exp in (
        MutantExpectation(
            mutant="broken-lockfree-noscatter",
            static={"SC008"},
            dynamic={"barrier-deadlock"},
        ),
        MutantExpectation(
            mutant="broken-simple-undercount",
            static={"SC005"},
            dynamic={"premature-release"},
        ),
        MutantExpectation(
            mutant="broken-simple-skipround",
            static={"SC001"},
            dynamic={"barrier-divergence"},
        ),
    )
}


def expectation_links_ok(exp: MutantExpectation) -> bool:
    """True when every expected SC code is registry-linked to (at least
    one of) the mutant's dynamic bug classes — the static and dynamic
    taxonomies agree this is the same defect."""
    from repro.findings import by_name

    dynamic_codes = {by_name(name).code for name in exp.dynamic}
    for sc in exp.static:
        related = set(FINDING_CODES[sc].related)
        if not related & dynamic_codes:
            return False
    return True


def crossval_mutant(name: str) -> LintReport:
    """Lint one registered mutant strategy class by registry name.

    ``respect_noqa=False``: the mutant files annotate their seeded bugs
    with ``# repro: noqa`` so ordinary tree-wide lint runs stay clean,
    but cross-validation must still see the defects.
    """
    from repro.sync.base import get_strategy

    strategy = get_strategy(name)
    return lint_strategy(strategy, respect_noqa=False)


def crossval_all() -> Dict[str, LintReport]:
    """Lint every mutant in :data:`MUTANT_EXPECTATIONS`.

    Importing :mod:`repro.sanitize.mutants` registers the mutants.
    """
    import repro.sanitize.mutants  # noqa: F401  (registration side effect)

    return {name: crossval_mutant(name) for name in MUTANT_EXPECTATIONS}


def verify_expectations() -> List[str]:
    """Run the full cross-validation; return human-readable failures.

    Empty list ⇒ every mutant is statically flagged with exactly its
    expected SC codes and every static/dynamic link holds.
    """
    problems: List[str] = []
    for name, report in crossval_all().items():
        exp = MUTANT_EXPECTATIONS[name]
        got = set(report.codes())
        if got != exp.static:
            problems.append(
                f"{name}: expected static codes {sorted(exp.static)}, "
                f"linter reported {sorted(got)}"
            )
        if not expectation_links_ok(exp):
            problems.append(
                f"{name}: static codes {sorted(exp.static)} are not "
                f"registry-linked to dynamic classes {sorted(exp.dynamic)}"
            )
    return problems


# ---------------------------------------------------------------------------
# Repair cross-validation: every mutant must be fixable back to passing
# ---------------------------------------------------------------------------

#: a kernel-shaped spin with no ``WaitSpec`` — the SC009 fixture.  The
#: repair tests drive it through :func:`fix_source` and assert the
#: engine inserts both the ``spec=`` argument and the import.
SC009_FIXTURE = '''\
"""SC009 crossval fixture: a spin site without a WaitSpec."""

from repro.sync.base import SyncStrategy


class FixtureBarrier(SyncStrategy):
    name = "crossval-sc009-fixture"

    def barrier(self, ctx, round_idx):
        goal = round_idx + 1
        yield from ctx.atomic_add(self._mutex, 0, 1)
        yield from ctx.spin_until(
            self._mutex,
            lambda: self._mutex.data[0] >= goal,
            f"g_mutex>={goal}",
        )
        yield from ctx.syncthreads()
'''


@dataclass(frozen=True)
class MutantRepair:
    """One seeded mutant driven through the auto-repair engine."""

    mutant: str  #: registry name (``broken-*``)
    cls_name: str  #: the mutant class the repair targets
    fix: FixResult  #: full-file repair result (class-scoped ``within``)
    repaired_cls: type  #: the class rebuilt from the repaired source


def repair_mutant(name: str) -> MutantRepair:
    """Auto-repair one registered mutant and rebuild its class.

    Runs :func:`fix_source` over the mutant's defining file with
    ``respect_noqa=False`` (the seeded bugs are annotated) and the fix
    scope restricted to the mutant class's own line span, then executes
    the repaired source in a scratch namespace to recover a runnable
    class.  Executing the module re-runs its ``register_strategy``
    calls, so the strategy registry is snapshotted and restored — a
    repair experiment must never swap the registered mutants out from
    under the sanitizer's ground truth.
    """
    from repro.sync.base import _REGISTRY, get_strategy

    cls = type(get_strategy(name))
    source_file = inspect.getsourcefile(cls)
    if source_file is None:  # pragma: no cover - mutants ship as files
        raise LintError(f"cannot locate source for mutant {name}")
    lines, start = inspect.getsourcelines(cls)
    file_source = Path(source_file).read_text(encoding="utf-8")
    result = fix_source(
        file_source,
        source_file,
        respect_noqa=False,
        within=(start, start + len(lines) - 1),
    )
    snapshot = dict(_REGISTRY)
    namespace: Dict[str, object] = {"__name__": f"<repaired:{name}>"}
    try:
        code = compile(result.fixed, f"<repaired:{name}>", "exec")
        exec(code, namespace)  # noqa: S102 - our own repaired source
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(snapshot)
    repaired = namespace[cls.__name__]
    assert isinstance(repaired, type)
    return MutantRepair(
        mutant=name, cls_name=cls.__name__, fix=result, repaired_cls=repaired
    )


def repaired_findings(repair: MutantRepair) -> List[StaticFinding]:
    """Findings the linter still attributes to the repaired class.

    Re-lints the repaired *source text* (the exec'd class has no file
    for ``lint_strategy`` to read) and keeps findings whose unit sits
    inside the mutant class — robust to the line drift repairs cause.
    """
    report = lint_source(
        repair.fix.fixed, f"<repaired:{repair.mutant}>", respect_noqa=False
    )
    return [
        f
        for f in report.findings
        if f.unit == repair.cls_name
        or f.unit.startswith(repair.cls_name + ".")
    ]


def verify_repairs(
    *, schedules: int = 10, rounds: int = 4, num_blocks: int = 8
) -> List[str]:
    """Prove every seeded mutant is repairable back to passing.

    For each ``broken-*`` mutant: the engine must apply at least one fix
    for the expected SC code, the repaired class must lint clean, the
    dynamic sanitizer (PR 1) must find nothing across ``schedules``
    fuzzed interleavings, and the repaired barrier must produce verified
    results under both the ``reference`` and ``fast`` engines with
    bit-identical virtual time (PR 6's differential guarantee).  Returns
    human-readable problems; empty ⇒ the repair loop is closed.
    """
    from repro.algorithms.microbench import MeanMicrobench
    from repro.harness.runner import run
    from repro.sanitize.sanitizer import sanitize_run

    import repro.sanitize.mutants  # noqa: F401  (registration side effect)

    problems: List[str] = []
    for name, exp in MUTANT_EXPECTATIONS.items():
        repair = repair_mutant(name)
        applied_codes = {a.code for a in repair.fix.applied}
        if not exp.static <= applied_codes:
            problems.append(
                f"{name}: expected fixes for {sorted(exp.static)}, "
                f"engine applied {sorted(applied_codes)}"
            )
            continue
        leftover = repaired_findings(repair)
        if leftover:
            problems.append(
                f"{name}: repaired class still lints dirty: "
                + ", ".join(f.code for f in leftover)
            )
            continue
        sanitized = sanitize_run(
            strategy=repair.repaired_cls(),
            num_blocks=num_blocks,
            schedules=schedules,
        )
        if not sanitized.clean:
            problems.append(
                f"{name}: repaired strategy still flagged by the "
                "sanitizer: "
                + ", ".join(sorted({f.kind for f in sanitized.findings}))
            )
            continue
        totals = {}
        for mode in ("reference", "fast"):
            algo = MeanMicrobench(rounds=rounds, num_blocks_hint=num_blocks)
            outcome = run(
                algo,
                repair.repaired_cls(),
                num_blocks,
                engine_mode=mode,
            )
            if outcome.verified is not True:
                problems.append(
                    f"{name}: repaired strategy fails verification "
                    f"under the {mode} engine"
                )
            totals[mode] = outcome.total_ns
        if (
            len(totals) == 2
            and totals["reference"] != totals["fast"]
        ):
            problems.append(
                f"{name}: repaired strategy diverges across engines "
                f"({totals['reference']} != {totals['fast']} ns)"
            )
    return problems
