"""Cross-validation: the linter vs. the dynamic sanitizer's mutants.

The repository ships deliberately-broken barrier strategies
(:mod:`repro.sanitize.mutants`) that the *dynamic* sanitizer flags
after running fuzzed schedules.  This module asserts the static linter
catches the same defects **without executing a single simulated
cycle**, and that the two taxonomies agree: each mutant's expected
``SC`` code must be registry-linked (:mod:`repro.findings`) to the
dynamic bug class the sanitizer reports for it.

This is the linter's ground truth: if a future rule change stops
flagging a mutant — or starts flagging a clean shipped strategy — the
cross-validation tests fail before the rule ships.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.findings import FINDING_CODES
from repro.staticcheck.engine import lint_strategy
from repro.staticcheck.report import LintReport

__all__ = [
    "MUTANT_EXPECTATIONS",
    "MutantExpectation",
    "crossval_mutant",
    "crossval_all",
    "expectation_links_ok",
]


@dataclass(frozen=True)
class MutantExpectation:
    """What both analyzers must say about one seeded mutant."""

    mutant: str  #: registered strategy name (``broken-*``)
    static: Set[str]  #: exact set of SC codes the linter must report
    dynamic: Set[str]  #: dynamic bug classes the sanitizer reports


#: the seeded-mutant ground truth.  Keys are registry names from
#: :mod:`repro.sanitize.mutants`; the ``dynamic`` sets mirror that
#: module's docstrings (and the sanitizer's own mutant tests).
MUTANT_EXPECTATIONS: Dict[str, MutantExpectation] = {
    exp.mutant: exp
    for exp in (
        MutantExpectation(
            mutant="broken-lockfree-noscatter",
            static={"SC008"},
            dynamic={"barrier-deadlock"},
        ),
        MutantExpectation(
            mutant="broken-simple-undercount",
            static={"SC005"},
            dynamic={"premature-release"},
        ),
        MutantExpectation(
            mutant="broken-simple-skipround",
            static={"SC001"},
            dynamic={"barrier-divergence"},
        ),
    )
}


def expectation_links_ok(exp: MutantExpectation) -> bool:
    """True when every expected SC code is registry-linked to (at least
    one of) the mutant's dynamic bug classes — the static and dynamic
    taxonomies agree this is the same defect."""
    from repro.findings import by_name

    dynamic_codes = {by_name(name).code for name in exp.dynamic}
    for sc in exp.static:
        related = set(FINDING_CODES[sc].related)
        if not related & dynamic_codes:
            return False
    return True


def crossval_mutant(name: str) -> LintReport:
    """Lint one registered mutant strategy class by registry name.

    ``respect_noqa=False``: the mutant files annotate their seeded bugs
    with ``# repro: noqa`` so ordinary tree-wide lint runs stay clean,
    but cross-validation must still see the defects.
    """
    from repro.sync.base import get_strategy

    strategy = get_strategy(name)
    return lint_strategy(strategy, respect_noqa=False)


def crossval_all() -> Dict[str, LintReport]:
    """Lint every mutant in :data:`MUTANT_EXPECTATIONS`.

    Importing :mod:`repro.sanitize.mutants` registers the mutants.
    """
    import repro.sanitize.mutants  # noqa: F401  (registration side effect)

    return {name: crossval_mutant(name) for name in MUTANT_EXPECTATIONS}


def verify_expectations() -> List[str]:
    """Run the full cross-validation; return human-readable failures.

    Empty list ⇒ every mutant is statically flagged with exactly its
    expected SC codes and every static/dynamic link holds.
    """
    problems: List[str] = []
    for name, report in crossval_all().items():
        exp = MUTANT_EXPECTATIONS[name]
        got = set(report.codes())
        if got != exp.static:
            problems.append(
                f"{name}: expected static codes {sorted(exp.static)}, "
                f"linter reported {sorted(got)}"
            )
        if not expectation_links_ok(exp):
            problems.append(
                f"{name}: static codes {sorted(exp.static)} are not "
                f"registry-linked to dynamic classes {sorted(exp.dynamic)}"
            )
    return problems
