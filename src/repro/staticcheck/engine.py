"""The lint driver: files in, :class:`LintReport` out.

Orchestrates the pipeline — parse → discover kernel-shaped units →
build per-file context → run the SC rule catalog → apply ``# repro:
noqa`` suppressions — and exposes the three entry points everything
else uses:

* :func:`lint_source` — one source string (tests, tooling);
* :func:`lint_paths` — files and directory trees (the CLI verb);
* :func:`lint_strategy` — one registered strategy class (the pytest
  plugin lints what the suite actually registered, not what happens to
  sit in a directory).

Suppression follows the sanitizer's comment convention: a trailing
``# repro: noqa`` silences every finding on that line, ``# repro: noqa
SC005`` (comma/space separated list) silences just those codes.
Suppressed findings are counted in :attr:`LintReport.suppressed` so a
report never silently shrinks.
"""

from __future__ import annotations

import ast
import inspect
import re
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.errors import ReproError
from repro.staticcheck.discover import discover, int_constants
from repro.staticcheck.report import LintReport, StaticFinding
from repro.staticcheck.rules import FileContext, run_rules

__all__ = [
    "DEFAULT_SM_LIMIT",
    "LintError",
    "lint_paths",
    "lint_source",
    "lint_strategy",
    "sm_limit_for_preset",
    "suppressed_codes",
]


class LintError(ReproError):
    """A lint run could not analyze its input (bad path, syntax error)."""


def _default_sm_limit() -> int:
    try:
        from repro.gpu.config import DeviceConfig

        cfg = DeviceConfig()
        return cfg.topology.max_co_resident_blocks(cfg)
    except Exception:  # pragma: no cover - preset import must not kill lint
        return 30


#: co-residency limit of the default (paper-calibrated GTX 280) device.
DEFAULT_SM_LIMIT: int = _default_sm_limit()


def sm_limit_for_preset(name: str) -> int:
    """The co-residency limit SC002 should lint against for a preset.

    Resolved through the preset's topology, so a cooperative-groups
    device (``grid_sync``) lints against its real co-resident capacity
    instead of the paper's one-block-per-SM rule.
    """
    from repro.gpu.presets import get_preset

    cfg = get_preset(name)
    return cfg.topology.max_co_resident_blocks(cfg)

#: ``# repro: noqa`` / ``# repro: noqa SC001, SC005`` (case-insensitive).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<codes>(?:[ \t,]+SC\d{3})*)\s*$",
    re.IGNORECASE,
)


def suppressed_codes(source: str) -> Dict[int, Set[str]]:
    """Per-line suppressions from ``# repro: noqa`` comments.

    Maps 1-based line number → the set of silenced ``SC`` codes; an
    empty set means *all* codes are silenced on that line.
    """
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = {c.upper() for c in re.findall(r"SC\d{3}", match.group("codes"))}
        table[lineno] = codes
    return table


def _apply_suppressions(
    findings: List[StaticFinding], table: Dict[int, Set[str]]
) -> Tuple[List[StaticFinding], Dict[str, int]]:
    if not table:
        return findings, {}
    kept: List[StaticFinding] = []
    suppressed: Dict[str, int] = {}
    for finding in findings:
        codes = table.get(finding.line)
        if codes is not None and (not codes or finding.code in codes):
            suppressed[finding.code] = suppressed.get(finding.code, 0) + 1
            continue
        kept.append(finding)
    return kept, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    sm_limit: int = DEFAULT_SM_LIMIT,
    respect_noqa: bool = True,
) -> LintReport:
    """Lint one Python source string.

    ``respect_noqa=False`` reports findings even on lines carrying a
    ``# repro: noqa`` comment — the cross-validation harness uses it to
    assert the seeded mutants stay detectable while their annotated
    lines keep ordinary ``repro lint`` runs clean.
    """
    try:
        module = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot lint, {exc}") from exc
    units, classes = discover(module)
    ctx = FileContext(
        path=path,
        module=module,
        consts=int_constants(module),
        sm_limit=sm_limit,
        units=units,
        classes=classes,
        source=source,
    )
    findings = run_rules(ctx)
    per_code: Dict[str, int] = {}
    if respect_noqa:
        findings, per_code = _apply_suppressions(
            findings, suppressed_codes(source)
        )
    return LintReport(
        files=[path],
        units_checked=len(units),
        findings=findings,
        suppressed=sum(per_code.values()),
        suppressed_codes=per_code,
    ).normalize()


def _collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    # De-duplicate while keeping deterministic order.
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        unique.append(path)
    return unique


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    sm_limit: int = DEFAULT_SM_LIMIT,
) -> LintReport:
    """Lint files and directory trees into one merged report."""
    report = LintReport()
    for path in _collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        report.merge(lint_source(source, str(path), sm_limit=sm_limit))
    return report


def lint_strategy(
    strategy: Union[type, object],
    *,
    sm_limit: int = DEFAULT_SM_LIMIT,
    respect_noqa: bool = True,
) -> LintReport:
    """Lint one strategy class (instance accepted) in isolation.

    Parses the defining module but keeps only findings attributed to
    the class's own line span, so linting ``GpuSimpleSync`` never
    reports a neighbour's bug.  Used by the pytest plugin to lint
    exactly the strategies the suite registered.
    """
    cls = strategy if isinstance(strategy, type) else type(strategy)
    try:
        source_file = inspect.getsourcefile(cls)
        source, start_line = inspect.getsourcelines(cls)
    except (OSError, TypeError) as exc:
        raise LintError(
            f"cannot locate source for strategy {cls.__name__}"
        ) from exc
    if source_file is None:
        raise LintError(f"cannot locate source for strategy {cls.__name__}")
    file_source = Path(source_file).read_text(encoding="utf-8")
    report = lint_source(
        file_source, source_file, sm_limit=sm_limit, respect_noqa=respect_noqa
    )
    end_line = start_line + len(source) - 1
    report.findings = [
        f for f in report.findings if start_line <= f.line <= end_line
    ]
    return report.normalize()
