"""A control-flow graph over one Python function body.

The linter's rules reason about *paths* through a device-kernel
generator — "is a barrier yield reachable on every path?", "can exit be
reached from this ``Acquire`` without passing a ``Release``?" — so this
module lowers a function's AST into a small CFG:

* one node per simple statement;
* ``If``/``While`` tests and ``For`` iterators get their own *branch*
  nodes (their bodies' statements become ordinary nodes downstream);
* synthetic ``ENTRY``/``EXIT`` nodes bracket the function; ``return``
  and ``raise`` edge straight to ``EXIT``;
* loops edge back to their branch node, ``break``/``continue`` edge to
  the loop exit / loop head.

The representation is deliberately conservative: a ``for`` loop keeps
its zero-iteration bypass edge, ``try`` blocks are approximated (the
handler is reachable from anywhere in the body), and nested function
definitions are opaque single nodes.  Rules that would over-report
under this approximation (e.g. barrier-divergence) additionally require
a block-identity-dependent branch on the offending path, which the
conservative edges never introduce on their own.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set

__all__ = ["CFG", "CFGNode", "build_cfg"]

ENTRY = 0
EXIT = 1


@dataclass
class CFGNode:
    """One CFG node: a statement, a branch test, or a synthetic anchor."""

    index: int
    kind: str  #: ``"entry"`` | ``"exit"`` | ``"stmt"`` | ``"branch"`` | ``"loop"``
    stmt: Optional[ast.AST] = None
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def line(self) -> int:
        """Source line of the underlying statement (0 for synthetic)."""
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """The graph plus the reachability queries the rules need."""

    def __init__(self, func: ast.AST):
        self.func = func
        self.nodes: List[CFGNode] = [
            CFGNode(ENTRY, "entry"),
            CFGNode(EXIT, "exit"),
        ]

    # -- construction ------------------------------------------------------

    def _new(self, kind: str, stmt: Optional[ast.AST]) -> int:
        node = CFGNode(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes)

    def statement_nodes(self) -> List[CFGNode]:
        """All non-synthetic nodes, in creation (source) order."""
        return [n for n in self.nodes if n.stmt is not None]

    def reachable(
        self, start: int, avoid: Iterable[int] = ()
    ) -> Set[int]:
        """Node indices reachable from ``start`` without entering ``avoid``.

        ``start`` itself is included (unless it is in ``avoid``); the
        avoided nodes are never entered, so paths through them do not
        count.
        """
        blocked = set(avoid)
        if start in blocked:
            return set()
        seen = {start}
        frontier = [start]
        while frontier:
            here = frontier.pop()
            for nxt in self.nodes[here].succs:
                if nxt in blocked or nxt in seen:
                    continue
                seen.add(nxt)
                frontier.append(nxt)
        return seen

    def exit_reachable_avoiding(
        self, start: int, avoid: Iterable[int]
    ) -> bool:
        """True if ``EXIT`` is reachable from ``start`` bypassing ``avoid``."""
        return EXIT in self.reachable(start, avoid)

    def bypass_nodes(self, avoid: Iterable[int]) -> Set[int]:
        """Nodes on some ENTRY→EXIT path that avoids all of ``avoid``.

        The set is the intersection of forward reachability from entry
        and backward reachability from exit, both restricted to the
        graph with ``avoid`` removed.  Empty when no bypass path exists.
        """
        blocked = set(avoid)
        forward = self.reachable(ENTRY, blocked)
        if EXIT not in forward:
            return set()
        backward = {EXIT}
        frontier = [EXIT]
        while frontier:
            here = frontier.pop()
            for prev in self.nodes[here].preds:
                if prev in blocked or prev in backward:
                    continue
                backward.add(prev)
                frontier.append(prev)
        return forward & backward


class _LoopFrame:
    """Break/continue targets of the innermost enclosing loop."""

    def __init__(self, head: int):
        self.head = head
        self.breaks: List[int] = []


class _Builder:
    def __init__(self, func: ast.AST):
        self.cfg = CFG(func)
        self.loops: List[_LoopFrame] = []

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        out = self._body(body, [ENTRY])
        for src in out:
            self.cfg._edge(src, EXIT)
        return self.cfg

    # ``frontier`` is the set of nodes whose control flow falls through
    # into the next statement; each handler returns the new frontier.

    def _body(self, body: Sequence[ast.stmt], frontier: List[int]) -> List[int]:
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            test = cfg._new("branch", stmt)
            for src in frontier:
                cfg._edge(src, test)
            then_out = self._body(stmt.body, [test])
            if stmt.orelse:
                else_out = self._body(stmt.orelse, [test])
            else:
                else_out = [test]
            return then_out + else_out
        if isinstance(stmt, ast.While):
            head = cfg._new("branch", stmt)
            for src in frontier:
                cfg._edge(src, head)
            frame = _LoopFrame(head)
            self.loops.append(frame)
            body_out = self._body(stmt.body, [head])
            self.loops.pop()
            for src in body_out:
                cfg._edge(src, head)
            out = [head] + frame.breaks
            if stmt.orelse:
                out = self._body(stmt.orelse, [head]) + frame.breaks
            return out
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head = cfg._new("loop", stmt)
            for src in frontier:
                cfg._edge(src, head)
            frame = _LoopFrame(head)
            self.loops.append(frame)
            body_out = self._body(stmt.body, [head])
            self.loops.pop()
            for src in body_out:
                cfg._edge(src, head)
            out = [head] + frame.breaks
            if stmt.orelse:
                out = self._body(stmt.orelse, [head]) + frame.breaks
            return out
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = cfg._new("stmt", stmt)
            for src in frontier:
                cfg._edge(src, node)
            cfg._edge(node, EXIT)
            return []
        if isinstance(stmt, ast.Break):
            node = cfg._new("stmt", stmt)
            for src in frontier:
                cfg._edge(src, node)
            if self.loops:
                self.loops[-1].breaks.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg._new("stmt", stmt)
            for src in frontier:
                cfg._edge(src, node)
            if self.loops:
                cfg._edge(node, self.loops[-1].head)
            return []
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg._new("stmt", stmt)
            for src in frontier:
                cfg._edge(src, node)
            return self._body(stmt.body, [node])
        if isinstance(stmt, ast.Try):
            entry = cfg._new("stmt", stmt)
            for src in frontier:
                cfg._edge(src, entry)
            body_out = self._body(stmt.body, [entry])
            handler_out: List[int] = []
            for handler in stmt.handlers:
                # Conservative: the handler is reachable from the try
                # entry (an exception can occur anywhere in the body).
                handler_out += self._body(handler.body, [entry])
            if stmt.orelse:
                body_out = self._body(stmt.orelse, body_out)
            out = body_out + handler_out
            if stmt.finalbody:
                out = self._body(stmt.finalbody, out)
            return out
        # Simple statements — including nested function/class definitions,
        # which are deliberately opaque here (they are discovered and
        # analyzed as their own units).
        node = cfg._new("stmt", stmt)
        for src in frontier:
            cfg._edge(src, node)
        return [node]


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a ``FunctionDef``/``AsyncFunctionDef`` body."""
    body = getattr(func, "body", None)
    if not isinstance(body, list):
        raise TypeError(f"build_cfg needs a function node, got {func!r}")
    return _Builder(func).build(body)
