"""Static findings and the deterministic lint report.

Mirrors :mod:`repro.sanitize.report`: a :class:`StaticFinding` is one
detected protocol bug *site* in source code, a :class:`LintReport`
aggregates a whole lint run, and both serialize through the shared
schema-2 envelope (:mod:`repro.serialization`) under the
``lint-report`` kind, so lint reports store, load and diff exactly like
sanitizer reports.

Rendering is deterministic and input-order independent: findings sort
by ``(file, line, code, message)`` and files are recorded sorted, so
linting the same tree always produces byte-identical text regardless of
how the paths were given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.findings import FINDING_CODES, FindingCode, format_finding

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.staticcheck.repair import Fix

__all__ = ["LintReport", "StaticFinding"]


@dataclass(frozen=True)
class StaticFinding:
    """One statically-detected barrier-protocol bug site."""

    code: str  #: an ``SC00x`` code from :mod:`repro.findings`
    message: str  #: human-readable one-liner, names the offending code
    file: str  #: path as recorded by the lint run
    line: int  #: 1-based source line of the offending node
    unit: str = "<module>"  #: qualname of the analyzed function/class
    #: machine-applicable repairs (``repro lint --fix``); excluded from
    #: equality so loaded reports compare equal to freshly-linted ones.
    fixes: Tuple["Fix", ...] = field(default=(), compare=False, repr=False)

    def __post_init__(self) -> None:
        meta = FINDING_CODES.get(self.code)
        if meta is None or meta.origin != "static":
            raise ValueError(
                f"unknown static finding code {self.code!r}"
            )

    @property
    def meta(self) -> FindingCode:
        """The registry entry behind this finding's code."""
        return FINDING_CODES[self.code]

    @property
    def severity(self) -> str:
        return self.meta.severity

    @property
    def sort_key(self) -> Any:
        return (self.file, self.line, self.code, self.message, self.unit)

    def render(self) -> str:
        """One deterministic text line (same shape as dynamic findings)."""
        return f"{self.file}:{self.line}: " + format_finding(
            self.meta, self.message, suffix=f"in {self.unit}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "name": self.meta.name,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "unit": self.unit,
            "fixable": bool(self.fixes),
        }


@dataclass
class LintReport:
    """Everything one lint run observed."""

    #: sorted, de-duplicated file paths that were parsed.
    files: List[str] = field(default_factory=list)
    #: kernel-shaped units (functions/methods) analyzed across them.
    units_checked: int = 0
    findings: List[StaticFinding] = field(default_factory=list)
    #: findings silenced by ``# repro: noqa`` comments.
    suppressed: int = 0
    #: per-code breakdown of the suppressed findings — kept separate
    #: from the summary totals so CI logs never read suppressed noise
    #: as outstanding findings.
    suppressed_codes: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no unsuppressed finding remains."""
        return not self.findings

    @property
    def errors(self) -> List[StaticFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def codes(self) -> List[str]:
        """Distinct finding codes present, sorted."""
        return sorted({f.code for f in self.findings})

    def exit_code(self, strict: bool = False) -> int:
        """CLI exit status: 1 on errors (any finding under ``strict``)."""
        if strict:
            return 0 if self.clean else 1
        return 0 if not self.errors else 1

    def normalize(self) -> "LintReport":
        """Sort files and findings into canonical order (in place)."""
        self.files = sorted(dict.fromkeys(self.files))
        self.findings.sort(key=lambda f: f.sort_key)
        return self

    def to_dict(self) -> Dict[str, Any]:
        self.normalize()
        return {
            "files": list(self.files),
            "files_checked": len(self.files),
            "units_checked": self.units_checked,
            "suppressed": self.suppressed,
            "suppressed_codes": {
                code: self.suppressed_codes[code]
                for code in sorted(self.suppressed_codes)
            },
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        """Deterministic JSON in the shared versioned envelope."""
        from repro.serialization import dump_result

        return dump_result("lint-report", self.to_dict())

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "LintReport":
        """Rebuild a report from :meth:`to_json` output (typed failures)."""
        from repro.serialization import parse_result, require

        payload = parse_result(text, kind="lint-report", source=source)
        report = cls(
            files=list(require(payload, "files", source)),
            units_checked=require(payload, "units_checked", source),
            suppressed=require(payload, "suppressed", source),
            # Older stored reports predate the per-code breakdown.
            suppressed_codes=dict(payload.get("suppressed_codes", {})),
        )
        for entry in require(payload, "findings", source):
            report.findings.append(
                StaticFinding(
                    code=entry["code"],
                    message=entry["message"],
                    file=entry["file"],
                    line=entry["line"],
                    unit=entry.get("unit", "<module>"),
                )
            )
        return report.normalize()

    def render(self) -> str:
        """Deterministic plain-text report."""
        self.normalize()
        verdict = "CLEAN" if self.clean else f"{len(self.findings)} finding(s)"
        lines = [
            f"lint: {len(self.files)} file(s), {self.units_checked} kernel "
            f"unit(s) — {verdict}",
        ]
        if self.suppressed:
            breakdown = ""
            if self.suppressed_codes:
                per_code = ", ".join(
                    f"{code} x{self.suppressed_codes[code]}"
                    for code in sorted(self.suppressed_codes)
                )
                breakdown = f" ({per_code})"
            lines.append(
                f"  {self.suppressed} finding(s) suppressed by "
                f"'# repro: noqa' comments{breakdown}"
            )
        for finding in self.findings:
            lines.append("  " + finding.render())
        if self.clean:
            lines.append(
                "  no statically-detectable barrier divergence, occupancy "
                "violations, stale spins or unreleased paths"
            )
        return "\n".join(lines)

    def merge(self, other: "LintReport") -> "LintReport":
        """Fold another report into this one (for per-file linting)."""
        self.files.extend(other.files)
        self.units_checked += other.units_checked
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        for code, count in other.suppressed_codes.items():
            self.suppressed_codes[code] = (
                self.suppressed_codes.get(code, 0) + count
            )
        return self.normalize()
