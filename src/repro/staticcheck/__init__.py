"""Static barrier-protocol analysis (``repro lint``).

The dynamic sanitizer (:mod:`repro.sanitize`) finds synchronization
bugs by *running* fuzzed schedules; this package finds the same bug
classes by *reading the code*: it parses device-kernel generators and
``SyncStrategy`` implementations into ASTs and small CFGs and checks
the barrier-protocol invariants of the paper (Xiao & Feng, IPDPS 2010)
— every block passes every barrier round (§4), grids never exceed the
one-block-per-SM co-residency limit (§5), spins re-observe memory,
arrival counters accumulate their goalVal (§5.1), lock-free flag
arrays scale with the grid and always get their release scatter (§5.3).

Entry points:

* :func:`lint_paths` / :func:`lint_source` / :func:`lint_strategy` —
  the programmatic API (all return a :class:`LintReport`);
* ``repro lint [paths] --format text|json --strict`` — the CLI verb;
* ``pytest --staticcheck`` — lint every registered strategy as part of
  a test run (see :mod:`repro.staticcheck.pytest_plugin`);
* :mod:`repro.staticcheck.crossval` — asserts the linter agrees with
  the dynamic sanitizer on the seeded mutants.

The rule catalog (SC001–SC008) lives in the shared finding registry
(:mod:`repro.findings`), cross-linked to the sanitizer's dynamic bug
classes; ``docs/staticcheck.md`` documents each rule with its paper
citation and suppression syntax (``# repro: noqa SC00x``).
"""

from repro.staticcheck.cfg import CFG, CFGNode, build_cfg
from repro.staticcheck.discover import KernelUnit, StrategyClass, discover
from repro.staticcheck.engine import (
    DEFAULT_SM_LIMIT,
    LintError,
    lint_paths,
    lint_source,
    lint_strategy,
    sm_limit_for_preset,
)
from repro.staticcheck.report import LintReport, StaticFinding
from repro.staticcheck.rules import RULES

__all__ = [
    "CFG",
    "CFGNode",
    "DEFAULT_SM_LIMIT",
    "KernelUnit",
    "LintError",
    "LintReport",
    "RULES",
    "StaticFinding",
    "StrategyClass",
    "build_cfg",
    "discover",
    "lint_paths",
    "lint_source",
    "lint_strategy",
    "sm_limit_for_preset",
]
