"""Typed auto-repair: structured edit plans over source spans.

Each :class:`~repro.staticcheck.report.StaticFinding` may carry zero or
more :class:`Fix` objects — machine-applicable edit plans built by the
rule that produced the finding (see the fix factories in
:mod:`repro.staticcheck.rules`).  This module is the patcher and the
driver:

* :func:`apply_edits` / :func:`apply_fixes` — the span patcher.  It is
  **idempotent** (re-applying a fix whose replacement text is already in
  place is a no-op), it **refuses overlapping edits** with a typed
  :class:`FixConflictError` instead of corrupting source, and it applies
  strictly bottom-up so earlier edits never invalidate later spans.
* :func:`fix_source` — the fixed-point driver.  It lints, applies every
  non-conflicting fix, **re-lints the patched source to prove the fixed
  findings are gone and no new finding appeared** (anything else raises
  :class:`FixVerificationError`), and repeats until no fixable finding
  remains.
* :func:`fix_paths` — the tree-level entry point behind
  ``repro lint --fix [--diff|--check]``.

Spans are half-open ``(line, column)`` intervals over the *current*
source text (1-based lines, 0-based columns, like :mod:`ast` end
positions).  An edit records the ``original`` text it expects at its
span; a span whose text matches neither the original nor the
replacement is *stale* and conflicts rather than being force-applied.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.staticcheck.report import LintReport, StaticFinding

__all__ = [
    "AppliedFix",
    "Fix",
    "FixConflictError",
    "FixResult",
    "FixVerificationError",
    "SpanEdit",
    "apply_edits",
    "apply_fixes",
    "fix_paths",
    "fix_source",
]


class FixConflictError(ReproError):
    """Two edits claim overlapping spans, or a span no longer matches."""


class FixVerificationError(ReproError):
    """A fix was applied but re-linting disproved the repair.

    Raised when the targeted finding survives the patch or the patch
    introduces a finding that was not there before — the engine never
    reports source as repaired without the linter's own proof.
    """


@dataclass(frozen=True)
class SpanEdit:
    """One atomic text replacement over a half-open source span.

    ``start``/``end`` are ``(line, column)`` pairs — 1-based line,
    0-based column, end exclusive.  A zero-width span (``start == end``)
    is a pure insertion.  ``original`` is the text the edit expects to
    find at the span; recording it is what makes staleness detectable.
    """

    start: Tuple[int, int]
    end: Tuple[int, int]
    original: str
    replacement: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"edit span ends before it starts: {self}")
        if self.original == self.replacement:
            raise ValueError(f"edit replaces text with itself: {self}")


@dataclass(frozen=True)
class Fix:
    """A machine-applicable repair plan attached to one finding."""

    code: str  #: the ``SC00x`` code this fix repairs
    description: str  #: one-line human summary of the edit
    edits: Tuple[SpanEdit, ...]

    def __post_init__(self) -> None:
        if not self.edits:
            raise ValueError(f"fix for {self.code} carries no edits")


@dataclass(frozen=True)
class AppliedFix:
    """Provenance of one fix the driver actually applied."""

    code: str
    unit: str
    line: int
    description: str

    def render(self) -> str:
        return f"line {self.line}: [{self.code}] {self.description}"


@dataclass
class FixResult:
    """Outcome of driving one file to its repair fixed point."""

    path: str
    original: str
    fixed: str
    applied: List[AppliedFix] = field(default_factory=list)
    iterations: int = 0
    #: findings still present after the fixed point (no fix available).
    remaining: List[StaticFinding] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.fixed != self.original

    def diff(self) -> str:
        """Unified diff from the original to the repaired source."""
        if not self.changed:
            return ""
        return "".join(
            difflib.unified_diff(
                self.original.splitlines(keepends=True),
                self.fixed.splitlines(keepends=True),
                fromfile=f"a/{self.path}",
                tofile=f"b/{self.path}",
            )
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "changed": self.changed,
            "iterations": self.iterations,
            "applied": [
                {
                    "code": a.code,
                    "unit": a.unit,
                    "line": a.line,
                    "description": a.description,
                }
                for a in self.applied
            ],
            "remaining": [f.to_dict() for f in self.remaining],
        }


# ---------------------------------------------------------------------------
# The span patcher
# ---------------------------------------------------------------------------

def _line_starts(source: str) -> List[int]:
    """Byte offset of the start of every 1-based line."""
    starts = [0]
    for i, ch in enumerate(source):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def _offset(source: str, starts: List[int], pos: Tuple[int, int]) -> int:
    line, col = pos
    if line < 1 or line > len(starts) + 1:
        raise FixConflictError(
            f"edit position {pos} is outside the source ({len(starts)} lines)"
        )
    if line == len(starts) + 1:
        # One-past-the-last-line with column 0: appending at EOF.
        if col != 0:
            raise FixConflictError(f"edit position {pos} is past end of file")
        return len(source)
    offset = starts[line - 1] + col
    if offset > len(source):
        raise FixConflictError(f"edit position {pos} is past end of file")
    return offset


@dataclass(frozen=True)
class _Resolved:
    """A SpanEdit with its span resolved to absolute offsets."""

    start: int
    end: int
    edit: SpanEdit


def _resolve(source: str, edits: Sequence[SpanEdit]) -> List[_Resolved]:
    """Dedupe, skip-already-applied, offset-resolve and overlap-check.

    Exact duplicates collapse to one application (several fixes in a
    file may share e.g. the same import insertion).  An edit whose
    non-empty ``replacement`` already sits at its start position is
    dropped — that is the idempotency guarantee, and it is decided
    before the *end* position is resolved, because an applied edit's
    end may lie past EOF of the (shorter) patched text.  Distinct
    remaining edits whose spans overlap — including two different
    insertions at the same point, whose order would be ambiguous —
    raise :class:`FixConflictError`.
    """
    starts = _line_starts(source)
    resolved: List[_Resolved] = []
    for e in dict.fromkeys(edits):
        start = _offset(source, starts, e.start)
        if (
            e.replacement
            and source[start : start + len(e.replacement)] == e.replacement
        ):
            continue  # already applied: idempotent no-op
        resolved.append(_Resolved(start, _offset(source, starts, e.end), e))
    resolved.sort(key=lambda r: (r.start, r.end))
    for prev, cur in zip(resolved, resolved[1:]):
        if cur.start < prev.end or cur.start == prev.start:
            raise FixConflictError(
                f"overlapping edits: {prev.edit} and {cur.edit}"
            )
    return resolved


def apply_edits(source: str, edits: Sequence[SpanEdit]) -> str:
    """Apply a batch of span edits to ``source``.

    Per edit, exactly one of three things happens (checked in order):

    * the text *starting* at the span already equals a non-empty
      ``replacement`` → the edit is skipped (already applied:
      idempotency — re-applying a batch is a no-op);
    * the text at the span equals ``original`` → the edit applies;
    * anything else → the span is stale and :class:`FixConflictError`
      is raised rather than patching the wrong text.

    Pure deletions (empty ``replacement``) have no already-applied
    signature, so re-applying one reports its span as stale instead of
    silently deleting different text.

    Overlapping distinct edits raise :class:`FixConflictError` before
    anything is modified; on any failure the source is untouched.
    """
    pieces: List[str] = []
    cursor = 0
    for r in _resolve(source, edits):
        found = source[r.start : r.end]
        if found != r.edit.original:
            raise FixConflictError(
                f"stale edit at {r.edit.start}: expected "
                f"{r.edit.original!r}, found {found!r}"
            )
        pieces.append(source[cursor : r.start])
        pieces.append(r.edit.replacement)
        cursor = r.end
    pieces.append(source[cursor:])
    return "".join(pieces)


def apply_fixes(source: str, fixes: Sequence[Fix]) -> str:
    """Apply every edit of every fix as one batch (same guarantees)."""
    return apply_edits(source, [e for fx in fixes for e in fx.edits])


# ---------------------------------------------------------------------------
# The fixed-point driver
# ---------------------------------------------------------------------------

def _counts(findings: Sequence[StaticFinding]) -> Dict[Tuple[str, str], int]:
    counts: Dict[Tuple[str, str], int] = {}
    for f in findings:
        key = (f.code, f.unit)
        counts[key] = counts.get(key, 0) + 1
    return counts


def fix_source(
    source: str,
    path: str = "<string>",
    *,
    sm_limit: Optional[int] = None,
    respect_noqa: bool = True,
    within: Optional[Tuple[int, int]] = None,
    max_iterations: int = 8,
) -> FixResult:
    """Drive one source string to its repair fixed point.

    Each iteration lints, gathers the findings that carry fixes
    (optionally only those whose line falls in the inclusive ``within``
    span), applies the largest non-conflicting batch, then re-lints:
    every targeted ``(code, unit)`` count must strictly drop and no
    count may rise, else :class:`FixVerificationError`.  Fixes that
    conflicted with the batch are retried on the next iteration against
    the freshly patched source.
    """
    from repro.staticcheck.engine import DEFAULT_SM_LIMIT, lint_source

    limit = DEFAULT_SM_LIMIT if sm_limit is None else sm_limit

    def lint(text: str) -> LintReport:
        return lint_source(text, path, sm_limit=limit, respect_noqa=respect_noqa)

    def in_scope(f: StaticFinding) -> bool:
        return within is None or within[0] <= f.line <= within[1]

    current = source
    applied: List[AppliedFix] = []
    iterations = 0
    report = lint(current)
    while iterations < max_iterations:
        fixable = [f for f in report.findings if f.fixes and in_scope(f)]
        if not fixable:
            break
        iterations += 1
        batch: List[Tuple[StaticFinding, Fix]] = []
        batch_edits: List[SpanEdit] = []
        for finding in sorted(fixable, key=lambda f: f.sort_key):
            fix = finding.fixes[0]
            try:
                apply_edits(current, batch_edits + list(fix.edits))
            except FixConflictError:
                continue  # retried next iteration on fresh source
            batch.append((finding, fix))
            batch_edits.extend(fix.edits)
        if not batch:
            break  # every candidate conflicts; nothing safe to do
        patched = apply_edits(current, batch_edits)
        if patched == current:
            break  # all edits were already in place; avoid looping
        after = lint(patched)
        before_counts = _counts(report.findings)
        after_counts = _counts(after.findings)
        for key, count in after_counts.items():
            if count > before_counts.get(key, 0):
                raise FixVerificationError(
                    f"{path}: fix introduced new finding "
                    f"{key[0]} in {key[1]}"
                )
        for finding, fix in batch:
            key = (finding.code, finding.unit)
            if after_counts.get(key, 0) >= before_counts[key]:
                raise FixVerificationError(
                    f"{path}: fix for {finding.code} at line "
                    f"{finding.line} did not remove the finding"
                )
        applied.extend(
            AppliedFix(f.code, f.unit, f.line, fx.description)
            for f, fx in batch
        )
        current = patched
        report = after
    return FixResult(
        path=path,
        original=source,
        fixed=current,
        applied=applied,
        iterations=iterations,
        remaining=[f for f in report.findings if in_scope(f)],
    )


def fix_paths(
    paths: Sequence[Union[str, Path]],
    *,
    sm_limit: Optional[int] = None,
    respect_noqa: bool = True,
    write: bool = False,
) -> List[FixResult]:
    """Run :func:`fix_source` over files and trees (CLI entry point).

    With ``write=True`` changed files are rewritten in place; otherwise
    the results only describe what *would* change (``--diff`` /
    ``--check``).
    """
    from repro.staticcheck.engine import LintError, _collect_files

    results: List[FixResult] = []
    for file_path in _collect_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        result = fix_source(
            source,
            str(file_path),
            sm_limit=sm_limit,
            respect_noqa=respect_noqa,
        )
        if write and result.changed:
            file_path.write_text(result.fixed, encoding="utf-8")
        results.append(result)
    return results
