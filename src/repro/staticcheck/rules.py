"""The paper-grounded rule catalog (SC001–SC009).

Each rule is a function over a :class:`FileContext` returning
:class:`~repro.staticcheck.report.StaticFinding` objects.  Rules are
deliberately *protocol-shaped*, not general dataflow: they know the
device DSL (``ctx.atomic_add``, ``ctx.spin_until``, ``ctx.gwrite``,
``ctx.syncthreads``, raw ``Acquire``/``Release`` effects) and encode
exactly the misuse patterns the paper's barriers are one typo away
from.  See ``docs/staticcheck.md`` for the catalog with citations and
the per-rule false-positive discussion.

Rules whose defect admits a mechanical repair attach typed
:class:`~repro.staticcheck.repair.Fix` plans to their findings (the
*fix factories*); ``repro lint --fix`` applies them through
:mod:`repro.staticcheck.repair`.  A factory only emits a fix when it
can prove the edit is exactly the canonical protocol shape — anything
ambiguous stays advisory-only (see the repair catalog in
``docs/staticcheck.md``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.cfg import CFG, build_cfg
from repro.staticcheck.discover import (
    BARRIER_CALLS,
    KernelUnit,
    StrategyClass,
    block_identity_names,
    call_receiver,
    call_tail,
    expr_names,
    is_block_dependent,
    resolve_attr_root,
    resolve_int,
    self_attr_aliases,
    yielded_calls,
)
from repro.staticcheck.repair import Fix, SpanEdit
from repro.staticcheck.report import StaticFinding

__all__ = ["FileContext", "RULES", "run_rules"]


@dataclass
class FileContext:
    """Everything the rules need to know about one parsed file."""

    path: str
    module: ast.Module
    consts: Dict[str, int]
    sm_limit: int
    units: List[KernelUnit]
    classes: List[StrategyClass]
    #: raw source text; fix factories need it to record the original
    #: span contents (empty when a caller only has the AST — rules
    #: still report, they just attach fewer fixes).
    source: str = ""
    _cfgs: Dict[int, CFG] = field(default_factory=dict)

    def cfg(self, unit: KernelUnit) -> CFG:
        key = id(unit.func)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(unit.func)
        return self._cfgs[key]


def _walk_scoped(node: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``node`` without entering nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        here = stack.pop()
        if isinstance(here, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield here
        stack.extend(ast.iter_child_nodes(here))


def _unparse(node: ast.AST, limit: int = 60) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 1] + "…"


# -- fix-factory plumbing ----------------------------------------------------
#
# Factories build SpanEdits from exact node positions plus the raw file
# source (for the ``original`` text that makes staleness detectable).
# Pure insertions work without source; replacements and deletions
# require ``ctx.source`` and silently stay advisory without it.


def _source_lines(ctx: FileContext) -> List[str]:
    return ctx.source.splitlines(keepends=True)


def _line_indent(ctx: FileContext, lineno: int) -> Optional[str]:
    lines = _source_lines(ctx)
    if not 1 <= lineno <= len(lines):
        return None
    text = lines[lineno - 1]
    return text[: len(text) - len(text.lstrip())]


def _insert_at(lineno: int, col: int, text: str) -> SpanEdit:
    return SpanEdit((lineno, col), (lineno, col), "", text)


def _node_span(node: ast.AST) -> Optional[Tuple[Tuple[int, int], Tuple[int, int]]]:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    lineno = getattr(node, "lineno", None)
    col = getattr(node, "col_offset", None)
    if None in (lineno, col, end_line, end_col):
        return None
    return (lineno, col), (end_line, end_col)


def _node_text(ctx: FileContext, node: ast.AST) -> Optional[str]:
    if not ctx.source:
        return None
    text = ast.get_source_segment(ctx.source, node)
    return text


def _node_edit(
    ctx: FileContext, node: ast.AST, replacement: str
) -> Optional[SpanEdit]:
    """Replace one expression/statement node with new source text."""
    span = _node_span(node)
    original = _node_text(ctx, node)
    if span is None or original is None or original == replacement:
        return None
    return SpanEdit(span[0], span[1], original, replacement)


def _delete_lines_edit(
    ctx: FileContext, first: int, last: int
) -> Optional[SpanEdit]:
    """Delete whole source lines ``first``..``last`` (1-based, inclusive)."""
    lines = _source_lines(ctx)
    if not ctx.source or not 1 <= first <= last <= len(lines):
        return None
    return SpanEdit(
        (first, 0), (last + 1, 0), "".join(lines[first - 1 : last]), ""
    )


# -- spin-predicate shape analysis (shared by SC008's scatter fix and
#    SC009) -----------------------------------------------------------------


@dataclass(frozen=True)
class _SpinShape:
    """A mechanical threshold spin, resolved to enclosing-scope source."""

    array_src: str  #: the spun array, as written at the call site
    threshold_src: str  #: the awaited threshold expression
    lo_src: Optional[str]  #: watched cell / slice start (None = whole)
    hi_src: Optional[str]  #: slice end (None = single cell / open)
    whole_array: bool  #: an ``(arr.data >= t).all()`` gather shape

    def wait_spec_src(self) -> str:
        parts = [self.threshold_src]
        if self.lo_src is not None:
            parts.append(f"lo={self.lo_src}")
        if self.hi_src is not None:
            parts.append(f"hi={self.hi_src}")
        return f"WaitSpec({', '.join(parts)})"


def _lambda_bindings(lam: ast.Lambda) -> Optional[Dict[str, ast.expr]]:
    """Param → default-expression map; None for unpollable lambdas."""
    args = lam.args
    if args.posonlyargs or args.kwonlyargs or args.vararg or args.kwarg:
        return None
    params = [a.arg for a in args.args]
    defaults = args.defaults
    if len(defaults) != len(params):
        return None  # a default-less param could never be polled with ()
    return dict(zip(params, defaults))


def _resolve_in_scope(
    expr: ast.expr, bound: Dict[str, ast.expr]
) -> Optional[str]:
    """Source for ``expr`` valid in the enclosing scope (via defaults)."""
    if isinstance(expr, ast.Name) and expr.id in bound:
        return ast.unparse(bound[expr.id])
    if expr_names(expr) & set(bound):
        return None  # a param buried inside a larger expression
    return ast.unparse(expr)


def _spin_wait_shape(call: ast.Call) -> Optional[_SpinShape]:
    """Parse a ``spin_until`` whose predicate is a threshold check.

    Recognized shapes (``X`` must be the spun array itself)::

        lambda ...: X.data[i] >= t            → (t, lo=i)
        lambda ...: (X.data >= t).all()       → (t,) whole-array
        lambda ...: bool((X.data >= t).all()) → (t,) whole-array
        lambda ...: (X.data[lo:hi] >= t).all()→ (t, lo, hi)

    Anything else — compound predicates, inverted comparisons, tuple
    indices — returns None: the spin is not mechanically declarable.
    """
    array_arg = _call_arg(call, 0, "array")
    predicate = _call_arg(call, 1, "predicate")
    if array_arg is None or not isinstance(predicate, ast.Lambda):
        return None
    bound = _lambda_bindings(predicate)
    if bound is None:
        return None
    body: ast.expr = predicate.body
    if (
        isinstance(body, ast.Call)
        and isinstance(body.func, ast.Name)
        and body.func.id == "bool"
        and len(body.args) == 1
        and not body.keywords
    ):
        body = body.args[0]
    whole = False
    if (
        isinstance(body, ast.Call)
        and isinstance(body.func, ast.Attribute)
        and body.func.attr == "all"
        and not body.args
        and not body.keywords
    ):
        whole = True
        body = body.func.value
    if not (
        isinstance(body, ast.Compare)
        and len(body.ops) == 1
        and isinstance(body.ops[0], ast.GtE)
        and len(body.comparators) == 1
    ):
        return None
    left, threshold = body.left, body.comparators[0]
    threshold_src = _resolve_in_scope(threshold, bound)
    if threshold_src is None:
        return None
    index: Optional[ast.expr] = None
    if isinstance(left, ast.Subscript):
        index = left.slice
        left = left.value
    if not (isinstance(left, ast.Attribute) and left.attr == "data"):
        return None
    array_src = _resolve_in_scope(left.value, bound)
    if array_src is None or array_src != ast.unparse(array_arg):
        return None
    lo_src: Optional[str] = None
    hi_src: Optional[str] = None
    if index is None:
        if not whole:
            return None  # bare array truthiness — not a threshold spin
    elif isinstance(index, ast.Slice):
        if not whole or index.step is not None:
            return None
        if index.lower is not None:
            lo_src = _resolve_in_scope(index.lower, bound)
            if lo_src is None:
                return None
        if index.upper is not None:
            hi_src = _resolve_in_scope(index.upper, bound)
            if hi_src is None:
                return None
    elif isinstance(index, ast.Tuple):
        return None  # multi-dimensional flags — WaitSpec is 1-D
    else:
        if whole:
            return None
        lo_src = _resolve_in_scope(index, bound)
        if lo_src is None:
            return None
    return _SpinShape(array_src, threshold_src, lo_src, hi_src, whole)


# -- SC001: barrier divergence ----------------------------------------------


def rule_sc001(ctx: FileContext) -> List[StaticFinding]:
    """A barrier yield bypassed on a block-identity-dependent path.

    Paper §4: blocks are non-preemptive, so a block that skips a
    barrier round other blocks synchronize on starves the grid (or
    permanently under-counts an accumulating goalVal).  We flag a
    function that *does* contain barrier yields but admits an
    entry→exit path avoiding all of them, when a branch on that bypass
    path depends on block identity.  Paths that merely do *asymmetric
    work inside* the protocol (the Fig. 9 checking block) still pass
    the closing barrier yields and are not flagged.
    """
    findings: List[StaticFinding] = []
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        cfg = ctx.cfg(unit)
        barrier_nodes = [
            n.index
            for n in cfg.statement_nodes()
            if any(
                call_tail(c) in BARRIER_CALLS
                for c in yielded_calls(n.stmt)
            )
        ]
        if not barrier_nodes:
            continue
        bypass = cfg.bypass_nodes(barrier_nodes)
        if not bypass:
            continue
        identity = block_identity_names(unit.func)
        seen_lines: Set[int] = set()
        for idx in sorted(bypass):
            node = cfg.nodes[idx]
            if node.kind not in ("branch", "loop"):
                continue
            stmt = node.stmt
            test = getattr(stmt, "test", None)
            if test is None or not is_block_dependent(test, identity):
                continue
            if node.line in seen_lines:
                continue
            seen_lines.add(node.line)
            findings.append(
                StaticFinding(
                    code="SC001",
                    message=(
                        f"barrier can be skipped when "
                        f"'{_unparse(test)}' takes the bypassing branch; "
                        "blocks would disagree on synchronized rounds"
                    ),
                    file=ctx.path,
                    line=node.line,
                    unit=unit.qualname,
                    fixes=_sc001_fix(ctx, unit, stmt),
                )
            )
    return findings


def _sc001_fix(
    ctx: FileContext, unit: KernelUnit, stmt: ast.AST
) -> Tuple[Fix, ...]:
    """Delete a pure early-return bypass branch.

    Only the provably-safe shape is repaired: ``if <identity test>:
    return`` with no else and no other effect, sitting directly in the
    function body next to the barrier statements it skips.  Deleting it
    makes every block fall through to the same barrier sequence (the
    SC001 remedy).  Branches that *do* work before returning are left
    for a human.
    """
    func_body = getattr(unit.func, "body", [])
    if not (
        isinstance(stmt, ast.If)
        and not stmt.orelse
        and len(stmt.body) == 1
        and isinstance(stmt.body[0], ast.Return)
        and stmt.body[0].value is None
        and stmt in func_body
        and len(func_body) > 1
    ):
        return ()
    end = stmt.end_lineno or stmt.lineno
    edit = _delete_lines_edit(ctx, stmt.lineno, end)
    if edit is None:
        return ()
    return (
        Fix(
            "SC001",
            "delete the block-dependent early return so every block "
            "runs the same barrier sequence",
            (edit,),
        ),
    )


# -- SC002: static occupancy violation --------------------------------------

#: strategy-name prefixes that imply a device-side (co-resident) barrier.
_DEVICE_PREFIXES = ("gpu-", "broken-")
#: call tails that take (algorithm, strategy, num_blocks, ...).
_RUN_TAILS = {"run", "sanitize_run"}


def _call_arg(
    call: ast.Call, position: int, keyword: str
) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


def rule_sc002(ctx: FileContext) -> List[StaticFinding]:
    """A grid-size literal exceeding the device's co-residency limit.

    Paper §5: a device-side barrier deadlocks the moment blocks
    outnumber the co-resident capacity, because waiting blocks are
    never preempted to let the rest run.  The limit comes from the
    target preset's topology (``ctx.sm_limit``): one block per SM under
    the paper's exclusive policy, the per-SM block cap times ``num_sms``
    under cooperative scheduling — so grids that are legal on a
    ``grid_sync``-class device aren't false-flagged when linting with
    ``sm_limit_for_preset("grid_sync")``.  The dynamic sanitizer catches
    this at prepare() time; this rule catches it while the file is
    being written.  Only device strategies named by a string literal
    are flagged — host-side barriers legitimately run arbitrarily large
    grids.
    """
    findings: List[StaticFinding] = []
    for node in ast.walk(ctx.module):
        if not isinstance(node, ast.Call):
            continue
        tail = call_tail(node)
        blocks_expr: Optional[ast.expr] = None
        if tail in _RUN_TAILS:
            strategy = _call_arg(node, 1, "strategy")
            if not (
                isinstance(strategy, ast.Constant)
                and isinstance(strategy.value, str)
                and strategy.value.startswith(_DEVICE_PREFIXES)
            ):
                continue
            blocks_expr = _call_arg(node, 2, "num_blocks")
        elif tail == "prepare" and isinstance(node.func, ast.Attribute):
            blocks_expr = _call_arg(node, 1, "num_blocks")
        else:
            continue
        if blocks_expr is None:
            continue
        value = resolve_int(blocks_expr, ctx.consts)
        if value is not None and value > ctx.sm_limit:
            findings.append(
                StaticFinding(
                    code="SC002",
                    message=(
                        f"num_blocks={value} exceeds the "
                        f"{ctx.sm_limit}-block co-residency limit of the "
                        "target device preset; a device-side barrier "
                        "would deadlock"
                    ),
                    file=ctx.path,
                    line=node.lineno,
                )
            )
    return findings


# -- SC003: stale spin read --------------------------------------------------


def _reads_memory(expr: ast.AST) -> bool:
    """True when evaluating the expression re-observes device state."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "data":
            return True
        if isinstance(node, ast.Call):
            return True
    return False


def rule_sc003(ctx: FileContext) -> List[StaticFinding]:
    """A spin whose predicate can never observe the awaited store.

    The paper's §5 implementations hinge on ``volatile``-qualified spin
    reads; the simulated analogue is a predicate that re-reads
    ``array.data`` on every poll.  A predicate over captured locals
    (or lambda *defaults*, which are evaluated once) is a constant:
    the spin either exits immediately or never — the classic dropped
    ``volatile`` bug.  The same applies to a ``while`` wait-loop whose
    condition no statement in the body can change.
    """
    findings: List[StaticFinding] = []
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        for node in _walk_scoped(unit.func):
            if isinstance(node, ast.Call) and call_tail(node) == "spin_until":
                predicate = _call_arg(node, 1, "predicate")
                if not isinstance(predicate, ast.Lambda):
                    continue
                if not _reads_memory(predicate.body):
                    findings.append(
                        StaticFinding(
                            code="SC003",
                            message=(
                                "spin predicate "
                                f"'{_unparse(predicate)}' never re-reads "
                                "device memory (.data); the awaited store "
                                "can never be observed"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=unit.qualname,
                        )
                    )
        for node in _walk_scoped(unit.func):
            if not isinstance(node, ast.While):
                continue
            if _reads_memory(node.test):
                continue
            tested = expr_names(node.test)
            if not tested:
                continue  # e.g. ``while True`` — not a spin shape
            has_yield = any(
                isinstance(sub, (ast.Yield, ast.YieldFrom))
                for stmt in node.body
                for sub in _walk_scoped(stmt)
            ) or any(
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, (ast.Yield, ast.YieldFrom))
                for stmt in node.body
            )
            if not has_yield:
                continue
            rebound = _assigned_names(node.body)
            if tested & rebound:
                continue
            findings.append(
                StaticFinding(
                    code="SC003",
                    message=(
                        f"wait loop condition '{_unparse(node.test)}' "
                        "reads only locals the loop body never updates; "
                        "the spin can never terminate"
                    ),
                    file=ctx.path,
                    line=node.lineno,
                    unit=unit.qualname,
                )
            )
    return findings


def _assigned_names(body: List[ast.stmt]) -> Set[str]:
    """Names (re)bound anywhere in a statement list (scoped walk)."""
    names: Set[str] = set()

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    for stmt in body:
        for node in [stmt, *_walk_scoped(stmt)]:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    collect_target(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                collect_target(node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                collect_target(node.target)
    return names


# -- SC004: unguarded atomic arrival -----------------------------------------


def rule_sc004(ctx: FileContext) -> List[StaticFinding]:
    """An atomic arrival that can execute more than once per round.

    Paper §5.1: exactly one thread per block performs the
    ``atomicAdd(&g_mutex, 1)`` arrival (the leading-thread guard), and
    each block arrives exactly once per round — otherwise the counter
    passes ``goalVal`` early and the barrier releases before all blocks
    arrived.  The simulator's one-agent-per-block model makes the guard
    implicit, so the statically-checkable residue is *repetition*: an
    ``atomic_add`` inside a loop whose target cell does not vary with
    the loop (the tree barrier's per-level atomics vary their mutex
    each iteration and are fine).
    """
    findings: List[StaticFinding] = []
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        for loop in _walk_scoped(unit.func):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            bound = _assigned_names(loop.body)
            if isinstance(loop, ast.For):
                bound |= expr_names(loop.target)
            for stmt in loop.body:
                for node in [stmt, *_walk_scoped(stmt)]:
                    if not (
                        isinstance(node, ast.Call)
                        and call_tail(node) == "atomic_add"
                        and len(node.args) >= 2
                    ):
                        continue
                    cell_names = expr_names(node.args[0]) | expr_names(
                        node.args[1]
                    )
                    if cell_names & bound:
                        continue  # cell varies with the loop: fine
                    findings.append(
                        StaticFinding(
                            code="SC004",
                            message=(
                                "atomic arrival on loop-invariant cell "
                                f"'{_unparse(node.args[0])}"
                                f"[{_unparse(node.args[1])}]' repeats every "
                                "iteration; each block must arrive exactly "
                                "once per round"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=unit.qualname,
                        )
                    )
    return findings


# -- class-level helpers for SC005 / SC007 / SC008 ---------------------------


def _generator_methods(cls: StrategyClass) -> List[Tuple[str, ast.AST]]:
    from repro.staticcheck.discover import is_generator

    return [
        (name, func)
        for name, func in cls.methods.items()
        if is_generator(func)
    ]


def _atomic_roots(cls: StrategyClass) -> Set[str]:
    """Cells (self-attr roots or local names) receiving atomic_add."""
    roots: Set[str] = set()
    for _name, func in _generator_methods(cls):
        aliases = self_attr_aliases(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and call_tail(node) == "atomic_add":
                if not node.args:
                    continue
                root = resolve_attr_root(node.args[0], aliases)
                if root is None and isinstance(node.args[0], ast.Name):
                    root = f"local:{node.args[0].id}"
                if root is not None:
                    roots.add(root)
    return roots


def _expr_root(expr: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    root = resolve_attr_root(expr, aliases)
    if root is None and isinstance(expr, ast.Name):
        return f"local:{expr.id}"
    return root


# -- SC005: goalVal anti-patterns --------------------------------------------


def _is_non_multiple_goal(expr: ast.expr) -> bool:
    """Matches ``round * n + k`` (k a non-zero literal): an arrival goal
    satisfiable before all N blocks arrive."""
    if not (isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add)):
        return False
    left, right = expr.left, expr.right
    for product, offset in ((left, right), (right, left)):
        if (
            isinstance(product, ast.BinOp)
            and isinstance(product.op, ast.Mult)
            and isinstance(offset, ast.Constant)
            and isinstance(offset.value, int)
            and offset.value != 0
        ):
            return True
    return False


def rule_sc005(ctx: FileContext) -> List[StaticFinding]:
    """goalVal protocol drift (paper §5.1 and its ablation).

    Two shapes: (a) the arrival counter is *reset* to zero each round —
    the design §5.1 explicitly rejects because the extra store and spin
    phase cost real time and open a reset/arrival race; (b) the goal an
    arrival counter is spun against is ``round·N + k`` instead of a
    whole multiple of N, so the first ``k``-th arrival satisfies it and
    the barrier releases early.
    """
    findings: List[StaticFinding] = []
    for cls in ctx.classes:
        atomic_roots = _atomic_roots(cls)
        if not atomic_roots:
            continue
        for name, func in _generator_methods(cls):
            aliases = self_attr_aliases(func)
            qual = f"{cls.name}.{name}"
            # (a) reset store to an atomic counter cell.
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and call_tail(node) == "gwrite"
                    and len(node.args) >= 3
                ):
                    continue
                root = _expr_root(node.args[0], aliases)
                if root not in atomic_roots:
                    continue
                value = node.args[2]
                if isinstance(value, ast.Constant) and value.value == 0:
                    findings.append(
                        StaticFinding(
                            code="SC005",
                            message=(
                                "arrival counter "
                                f"'{_unparse(node.args[0])}' is reset to 0 "
                                "instead of accumulating goalVal — the "
                                "rejected §5.1 design (extra store + spin "
                                "phase per round)"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=qual,
                        )
                    )
            # (b) non-multiple goal spun against an atomic counter.
            goal_names = _spin_goal_names(func, aliases, atomic_roots)
            if not goal_names:
                continue
            for node in _walk_scoped(func):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in goal_names
                ):
                    continue
                if _is_non_multiple_goal(node.value):
                    findings.append(
                        StaticFinding(
                            code="SC005",
                            message=(
                                f"arrival goal '{node.targets[0].id} = "
                                f"{_unparse(node.value)}' is not a whole "
                                "multiple of the grid size; the barrier "
                                "releases before every block arrives"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=qual,
                            fixes=_sc005_goal_fix(ctx, node.value),
                        )
                    )
    return findings


def _looks_like_grid_size(expr: ast.expr) -> bool:
    """Heuristic: the factor that is the grid size, not the round."""
    src = ast.unparse(expr)
    tail = src.rsplit(".", 1)[-1].rsplit("_", 1)[-1]
    return tail in ("n", "num_blocks", "blocks", "nblocks")


def _sc005_goal_fix(ctx: FileContext, value: ast.expr) -> Tuple[Fix, ...]:
    """Rewrite ``round·N + k`` to the canonical ``(round + 1) · N``.

    Emitted only when exactly one factor of the product is recognizably
    the grid size — otherwise which factor accumulates per round is
    ambiguous and the finding stays advisory.
    """
    if not (isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add)):
        return ()
    product = value.left if isinstance(value.left, ast.BinOp) else value.right
    if not (
        isinstance(product, ast.BinOp) and isinstance(product.op, ast.Mult)
    ):
        return ()
    left_src = ast.unparse(product.left)
    right_src = ast.unparse(product.right)
    left_grid = _looks_like_grid_size(product.left)
    right_grid = _looks_like_grid_size(product.right)
    if left_grid == right_grid:
        return ()
    if right_grid:
        replacement = f"({left_src} + 1) * {right_src}"
    else:
        replacement = f"{left_src} * ({right_src} + 1)"
    edit = _node_edit(ctx, value, replacement)
    if edit is None:
        return ()
    return (
        Fix(
            "SC005",
            f"accumulate the arrival goal as a whole multiple of the "
            f"grid size: {replacement}",
            (edit,),
        ),
    )


def _spin_goal_names(
    func: ast.AST, aliases: Dict[str, str], atomic_roots: Set[str]
) -> Set[str]:
    """Names compared against an atomic counter inside spin predicates."""
    goals: Set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call) and call_tail(node) == "spin_until"
        ):
            continue
        if not node.args:
            continue
        if _expr_root(node.args[0], aliases) not in atomic_roots:
            continue
        predicate = _call_arg(node, 1, "predicate")
        if not isinstance(predicate, ast.Lambda):
            continue
        # Names in the body, mapped through lambda defaults back to the
        # enclosing scope where applicable.
        body_names = expr_names(predicate.body)
        params = [a.arg for a in predicate.args.args]
        defaults = predicate.args.defaults
        bound = dict(zip(params[len(params) - len(defaults):], defaults))
        for name in body_names:
            if name in bound:
                default = bound[name]
                if isinstance(default, ast.Name):
                    goals.add(default.id)
            else:
                goals.add(name)
        # Array aliases are not goals.
        goals = {
            g
            for g in goals
            if _expr_root(ast.Name(id=g), aliases) not in atomic_roots
        }
    return goals


# -- SC006: shared-memory race -----------------------------------------------


def rule_sc006(ctx: FileContext) -> List[StaticFinding]:
    """Conflicting shared-memory accesses with no ``__syncthreads``.

    Intra-block threads share the SM scratchpad (paper §2); a write and
    a subsequent access of the same shared array at a *different* index
    expression, with no intervening intra-block barrier, is the classic
    shared-memory race.  The pass is a linear def-use scan in source
    order: any ``syncthreads()`` (or grid barrier, which implies one)
    clears the pending-write set.
    """
    findings: List[StaticFinding] = []
    shared_ops = {"swrite", "sread"}
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        events: List[Tuple[int, str, str, str, ast.Call]] = []
        for node in _walk_scoped(unit.func):
            if not isinstance(node, ast.Call):
                continue
            tail = call_tail(node)
            if tail in BARRIER_CALLS:
                events.append((node.lineno, "barrier", "", "", node))
            elif tail in shared_ops and len(node.args) >= 2:
                events.append(
                    (
                        node.lineno,
                        tail,
                        ast.dump(node.args[0]),
                        ast.dump(node.args[1]),
                        node,
                    )
                )
        events.sort(key=lambda e: e[0])
        pending: Dict[str, Tuple[str, int]] = {}
        for line, kind, array, index, call in events:
            if kind == "barrier":
                pending.clear()
                continue
            prior = pending.get(array)
            if prior is not None and prior[0] != index:
                findings.append(
                    StaticFinding(
                        code="SC006",
                        message=(
                            "shared-memory access conflicts with the "
                            f"write at line {prior[1]} (different index, "
                            "same array, no __syncthreads between them)"
                        ),
                        file=ctx.path,
                        line=line,
                        unit=unit.qualname,
                        fixes=_sc006_fix(ctx, call),
                    )
                )
            if kind == "swrite":
                pending[array] = (index, line)
    return findings


def _sc006_fix(ctx: FileContext, call: ast.Call) -> Tuple[Fix, ...]:
    """Insert ``yield from <recv>.syncthreads()`` before the access.

    Only when the conflicting access opens its own ``yield``(-from)
    statement line — inserting a full line inside a bracketed
    continuation would not parse, so those stay advisory.
    """
    receiver = call_receiver(call)
    indent = _line_indent(ctx, call.lineno)
    if receiver is None or indent is None:
        return ()
    lines = _source_lines(ctx)
    if not lines[call.lineno - 1].lstrip().startswith("yield"):
        return ()
    text = f"{indent}yield from {receiver}.syncthreads()\n"
    return (
        Fix(
            "SC006",
            "insert __syncthreads() before the conflicting shared "
            "access",
            (_insert_at(call.lineno, 0, text),),
        ),
    )


# -- SC007: under-sized lock-free flag array ---------------------------------


def _num_blocks_dependents(prepare: ast.AST) -> Set[str]:
    """Names/attrs in ``prepare`` transitively derived from num_blocks."""
    args = getattr(prepare, "args", None)
    param_names = [a.arg for a in args.args] if args else []
    seeds = {n for n in param_names if n == "num_blocks"}
    if not seeds and len(param_names) >= 3:
        seeds = {param_names[2]}  # (self, device, <grid size>)
    deps: Set[str] = set(seeds)

    def expr_hits(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in deps:
                return True
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and f"attr:{node.attr}" in deps
            ):
                return True
        return False

    changed = True
    while changed:
        changed = False
        for node in _walk_scoped(prepare):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], node.iter
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets, value = [node.target], node.value
            if value is None or not expr_hits(value):
                continue
            for target in targets:
                for leaf in ast.walk(target):
                    marker: Optional[str] = None
                    if isinstance(leaf, ast.Name):
                        marker = leaf.id
                    elif (
                        isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                    ):
                        marker = f"attr:{leaf.attr}"
                    if marker is not None and marker not in deps:
                        deps.add(marker)
                        changed = True
    return deps


def rule_sc007(ctx: FileContext) -> List[StaticFinding]:
    """A per-block flag array whose size does not scale with the grid.

    Paper §5.3: the lock-free barrier stores one flag per block
    (``Arrayin[i]``/``Arrayout[i]``).  Sizing those arrays with a
    constant silently corrupts neighbouring state (or drops arrivals)
    the first time the grid grows past it.  Flagged when a strategy's
    ``prepare`` allocates an array with a num_blocks-independent size
    and a barrier method then indexes that array by block identity.
    """
    findings: List[StaticFinding] = []
    for cls in ctx.classes:
        prepare = cls.methods.get("prepare")
        if prepare is None:
            continue
        deps = _num_blocks_dependents(prepare)

        def size_depends(expr: ast.AST) -> bool:
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in deps:
                    return True
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and f"attr:{node.attr}" in deps
                ):
                    return True
            return False

        allocs: Dict[str, Tuple[ast.expr, int]] = {}
        for node in ast.walk(prepare):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and isinstance(node.value, ast.Call)
                and call_tail(node.value) == "alloc"
                and len(node.value.args) >= 2
            ):
                continue
            allocs[node.targets[0].attr] = (node.value.args[1], node.lineno)

        if not allocs:
            continue

        block_indexed: Dict[str, int] = {}
        for name, func in _generator_methods(cls):
            aliases = self_attr_aliases(func)
            identity = block_identity_names(func)
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and call_tail(node) in ("gwrite", "gread", "atomic_add")
                    and len(node.args) >= 2
                ):
                    continue
                root = resolve_attr_root(node.args[0], aliases)
                if root is None or root not in allocs:
                    continue
                if is_block_dependent(node.args[1], identity):
                    block_indexed.setdefault(root, node.lineno)

        for root, access_line in sorted(block_indexed.items()):
            size_expr, alloc_line = allocs[root]
            if size_depends(size_expr):
                continue
            findings.append(
                StaticFinding(
                    code="SC007",
                    message=(
                        f"flag array 'self.{root}' is indexed by block id "
                        f"(line {access_line}) but allocated with size "
                        f"'{_unparse(size_expr)}', which does not scale "
                        "with num_blocks"
                    ),
                    file=ctx.path,
                    line=alloc_line,
                    unit=f"{cls.name}.prepare",
                    fixes=_sc007_fix(ctx, prepare, size_expr),
                )
            )
    return findings


def _sc007_fix(
    ctx: FileContext, prepare: ast.AST, size_expr: ast.expr
) -> Tuple[Fix, ...]:
    """Resize a literal flag-array allocation to the grid size.

    Only constant sizes are rewritten (a wrong *expression* needs a
    human to decide what it meant); the replacement is ``prepare``'s
    own num_blocks parameter, so the repaired allocation scales.
    """
    if not isinstance(size_expr, ast.Constant):
        return ()
    args = getattr(prepare, "args", None)
    params = [a.arg for a in args.args] if args else []
    if "num_blocks" in params:
        grid = "num_blocks"
    elif len(params) >= 3:
        grid = params[2]  # (self, device, <grid size>)
    else:
        return ()
    edit = _node_edit(ctx, size_expr, grid)
    if edit is None:
        return ()
    return (
        Fix(
            "SC007",
            f"allocate one flag per block: size '{grid}' instead of "
            f"'{_unparse(size_expr)}'",
            (edit,),
        ),
    )


# -- SC008: unreleased synchronization path ----------------------------------


def rule_sc008(ctx: FileContext) -> List[StaticFinding]:
    """An acquire/await with no reachable release.

    Two shapes of the same §5.3 hazard (a waiter nothing will ever
    wake): (a) a raw ``Acquire`` effect from which the function can
    reach exit without yielding the matching ``Release`` — the
    simulated analogue of leaking a FIFO atomic unit; (b) a barrier
    class that spins on a flag array **no method of the class ever
    stores to** — the lock-free barrier with its Fig. 9 step-2 scatter
    dropped, which deadlocks every block on ``Arrayout``.
    """
    findings: List[StaticFinding] = []

    # (a) effect-level: Acquire with an exit path that skips Release.
    for unit in ctx.units:
        cfg = ctx.cfg(unit)
        acquires: List[Tuple[int, str, str, int]] = []
        releases: Dict[str, List[int]] = {}
        all_releases: List[int] = []
        for node in cfg.statement_nodes():
            for call in yielded_calls(node.stmt):
                tail = call_tail(call)
                if tail == "Acquire" and call.args:
                    acquires.append(
                        (
                            node.index,
                            ast.dump(call.args[0]),
                            _unparse(call.args[0]),
                            node.line,
                        )
                    )
                elif tail == "Release":
                    key = ast.dump(call.args[0]) if call.args else ""
                    releases.setdefault(key, []).append(node.index)
                    all_releases.append(node.index)
        for node_idx, resource_key, resource_src, line in acquires:
            matching = releases.get(resource_key) or all_releases
            if not matching or cfg.exit_reachable_avoiding(
                node_idx, matching
            ):
                findings.append(
                    StaticFinding(
                        code="SC008",
                        message=(
                            f"Acquire of '{resource_src}' can reach "
                            "function exit without a matching Release; "
                            "contenders queue forever"
                        ),
                        file=ctx.path,
                        line=line,
                        unit=unit.qualname,
                    )
                )

    # (b) class-level: spun flag arrays nobody stores to.
    for cls in ctx.classes:
        written: Set[str] = set()
        spins: List[Tuple[str, int, str, ast.AST, ast.Call]] = []
        for name, func in _generator_methods(cls):
            aliases = self_attr_aliases(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                tail = call_tail(node)
                if tail in ("gwrite", "atomic_add") and node.args:
                    root = resolve_attr_root(node.args[0], aliases)
                    if root is not None:
                        written.add(root)
                elif tail == "spin_until" and node.args:
                    root = resolve_attr_root(node.args[0], aliases)
                    if root is not None:
                        spins.append((root, node.lineno, name, func, node))
        for root, line, method, func, spin_call in spins:
            if root in written:
                continue
            findings.append(
                StaticFinding(
                    code="SC008",
                    message=(
                        f"barrier spins on 'self.{root}' but no method of "
                        f"{cls.name} ever stores to it — the release "
                        "scatter (Fig. 9 step 2) is missing, so every "
                        "waiter deadlocks"
                    ),
                    file=ctx.path,
                    line=line,
                    unit=f"{cls.name}.{method}",
                    fixes=_sc008_scatter_fix(ctx, func, spin_call),
                )
            )
    return findings


def _is_syncthreads_stmt(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.YieldFrom)
        and isinstance(stmt.value.value, ast.Call)
        and call_tail(stmt.value.value) == "syncthreads"
    )


def _sc008_scatter_fix(
    ctx: FileContext, func: ast.AST, spin_call: ast.Call
) -> Tuple[Fix, ...]:
    """Insert the missing Fig. 9 step-2 release scatter.

    Recognizes the lock-free checker shape: a block-identity branch
    containing a whole-array gather spin followed by a
    ``syncthreads()``, while the flagged spin awaits a threshold on the
    never-written array.  The fix stores the awaited threshold to every
    cell (``gwrite(arr, slice(None), goal)``) right after the checker's
    last ``syncthreads`` — exactly the store the paper's Fig. 9
    performs.  Any deviation from that shape stays advisory.
    """
    shape = _spin_wait_shape(spin_call)
    receiver = call_receiver(spin_call)
    if shape is None or shape.whole_array or receiver is None:
        return ()
    if not spin_call.args:
        return ()
    arr_src = ast.unparse(spin_call.args[0])
    identity = block_identity_names(func)
    for node in _walk_scoped(func):
        if not (
            isinstance(node, ast.If)
            and is_block_dependent(node.test, identity)
        ):
            continue
        gather = any(
            (gather_shape := _spin_wait_shape(sub)) is not None
            and gather_shape.whole_array
            for stmt in node.body
            for sub in ast.walk(stmt)
            if isinstance(sub, ast.Call) and call_tail(sub) == "spin_until"
        )
        syncs = [stmt for stmt in node.body if _is_syncthreads_stmt(stmt)]
        if not gather or not syncs:
            continue
        anchor = syncs[-1]
        indent = _line_indent(ctx, anchor.lineno)
        if indent is None:
            return ()
        insert_line = (anchor.end_lineno or anchor.lineno) + 1
        text = (
            f"{indent}yield from {receiver}.gwrite("
            f"{arr_src}, slice(None), {shape.threshold_src})\n"
        )
        return (
            Fix(
                "SC008",
                f"insert the missing release scatter: every cell of "
                f"{arr_src} set to {shape.threshold_src}",
                (_insert_at(insert_line, 0, text),),
            ),
        )
    return ()


# -- SC009: spin site without a WaitSpec declaration -------------------------


def _has_wait_spec(call: ast.Call) -> bool:
    """True when the spin already declares a spec (kw or positional)."""
    if any(kw.arg == "spec" for kw in call.keywords):
        return True
    return len(call.args) >= 4  # (array, predicate, reason, spec)


def _binds_wait_spec(module: ast.Module) -> bool:
    """Is the name ``WaitSpec`` already bound at module level?"""
    for node in ast.walk(module):
        if isinstance(node, ast.ImportFrom):
            if any((a.asname or a.name) == "WaitSpec" for a in node.names):
                return True
        elif isinstance(node, ast.Import):
            if any(
                (a.asname or a.name.split(".")[0]) == "WaitSpec"
                for a in node.names
            ):
                return True
    return False


_WAIT_SPEC_IMPORT = "from repro.simcore.effects import WaitSpec\n"


def _wait_spec_import_edit(ctx: FileContext) -> SpanEdit:
    """Insert the WaitSpec import in isort-compatible position.

    Sorted into the first-party ``repro`` from-import block when one
    exists (so ruff's import sorting stays clean), else appended after
    the last import, else after the module docstring.
    """
    target = "repro.simcore.effects"
    insert_before: Optional[int] = None
    last_repro_end: Optional[int] = None
    last_import_end: Optional[int] = None
    for stmt in ctx.module.body:
        if not isinstance(stmt, (ast.Import, ast.ImportFrom)):
            continue
        last_import_end = stmt.end_lineno or stmt.lineno
        if not (
            isinstance(stmt, ast.ImportFrom)
            and stmt.level == 0
            and stmt.module is not None
            and (stmt.module == "repro" or stmt.module.startswith("repro."))
        ):
            continue
        last_repro_end = stmt.end_lineno or stmt.lineno
        if insert_before is None and stmt.module > target:
            insert_before = stmt.lineno
    if insert_before is not None:
        line = insert_before
    elif last_repro_end is not None:
        line = last_repro_end + 1
    elif last_import_end is not None:
        line = last_import_end + 1
    else:
        first = ctx.module.body[0] if ctx.module.body else None
        docstring = (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        )
        if docstring and first is not None:
            line = (first.end_lineno or first.lineno) + 1
        else:
            line = 1
    return _insert_at(line, 0, _WAIT_SPEC_IMPORT)


def _sc009_fix(
    ctx: FileContext, call: ast.Call, shape: _SpinShape
) -> Tuple[Fix, ...]:
    """Append ``spec=WaitSpec(...)`` to the spin call (plus import)."""
    ends = [
        _node_span(arg) for arg in call.args
    ] + [_node_span(kw.value) for kw in call.keywords]
    spans = [s for s in ends if s is not None]
    if not spans:
        return ()
    last = max(span[1] for span in spans)
    edits: List[SpanEdit] = [
        _insert_at(last[0], last[1], f", spec={shape.wait_spec_src()}")
    ]
    if not _binds_wait_spec(ctx.module):
        edits.append(_wait_spec_import_edit(ctx))
    return (
        Fix(
            "SC009",
            f"declare the awaited condition: spec={shape.wait_spec_src()}",
            tuple(edits),
        ),
    )


def rule_sc009(ctx: FileContext) -> List[StaticFinding]:
    """A mechanical threshold spin with no ``WaitSpec`` declaration.

    The fast engine's indexed-waiter path (PR 6) wakes a spinning block
    only when the exact awaited cells cross the declared threshold;
    without a ``spec=WaitSpec(...)`` the engine falls back to
    re-evaluating the Python predicate on every store — correct, but
    the §5.3 flag-array fast path silently degrades.  Only spins whose
    predicate is *provably* a threshold check are flagged (and those
    are exactly the ones the fix can declare mechanically); compound
    predicates are not WaitSpec-expressible and stay silent.
    """
    findings: List[StaticFinding] = []
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        for node in _walk_scoped(unit.func):
            if not (
                isinstance(node, ast.Call)
                and call_tail(node) == "spin_until"
            ):
                continue
            if _has_wait_spec(node):
                continue
            shape = _spin_wait_shape(node)
            if shape is None:
                continue
            findings.append(
                StaticFinding(
                    code="SC009",
                    message=(
                        f"threshold spin on '{shape.array_src}' carries "
                        "no WaitSpec; the fast engine degrades to "
                        "re-evaluating the predicate on every store "
                        f"(declare spec={shape.wait_spec_src()})"
                    ),
                    file=ctx.path,
                    line=node.lineno,
                    unit=unit.qualname,
                    fixes=_sc009_fix(ctx, node, shape),
                )
            )
    return findings


#: rule registry, in code order (docs and the engine iterate this).
RULES: Dict[str, Callable[[FileContext], List[StaticFinding]]] = {
    "SC001": rule_sc001,
    "SC002": rule_sc002,
    "SC003": rule_sc003,
    "SC004": rule_sc004,
    "SC005": rule_sc005,
    "SC006": rule_sc006,
    "SC007": rule_sc007,
    "SC008": rule_sc008,
    "SC009": rule_sc009,
}


def run_rules(ctx: FileContext) -> List[StaticFinding]:
    """Run every rule over one file's context."""
    findings: List[StaticFinding] = []
    for rule in RULES.values():
        findings.extend(rule(ctx))
    return findings
