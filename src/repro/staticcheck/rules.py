"""The paper-grounded rule catalog (SC001–SC008).

Each rule is a function over a :class:`FileContext` returning
:class:`~repro.staticcheck.report.StaticFinding` objects.  Rules are
deliberately *protocol-shaped*, not general dataflow: they know the
device DSL (``ctx.atomic_add``, ``ctx.spin_until``, ``ctx.gwrite``,
``ctx.syncthreads``, raw ``Acquire``/``Release`` effects) and encode
exactly the misuse patterns the paper's barriers are one typo away
from.  See ``docs/staticcheck.md`` for the catalog with citations and
the per-rule false-positive discussion.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.cfg import CFG, build_cfg
from repro.staticcheck.discover import (
    BARRIER_CALLS,
    KernelUnit,
    StrategyClass,
    block_identity_names,
    call_tail,
    expr_names,
    is_block_dependent,
    resolve_attr_root,
    resolve_int,
    self_attr_aliases,
    yielded_calls,
)
from repro.staticcheck.report import StaticFinding

__all__ = ["FileContext", "RULES", "run_rules"]


@dataclass
class FileContext:
    """Everything the rules need to know about one parsed file."""

    path: str
    module: ast.Module
    consts: Dict[str, int]
    sm_limit: int
    units: List[KernelUnit]
    classes: List[StrategyClass]
    _cfgs: Dict[int, CFG] = field(default_factory=dict)

    def cfg(self, unit: KernelUnit) -> CFG:
        key = id(unit.func)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(unit.func)
        return self._cfgs[key]


def _walk_scoped(node: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``node`` without entering nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        here = stack.pop()
        if isinstance(here, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield here
        stack.extend(ast.iter_child_nodes(here))


def _unparse(node: ast.AST, limit: int = 60) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 1] + "…"


# -- SC001: barrier divergence ----------------------------------------------


def rule_sc001(ctx: FileContext) -> List[StaticFinding]:
    """A barrier yield bypassed on a block-identity-dependent path.

    Paper §4: blocks are non-preemptive, so a block that skips a
    barrier round other blocks synchronize on starves the grid (or
    permanently under-counts an accumulating goalVal).  We flag a
    function that *does* contain barrier yields but admits an
    entry→exit path avoiding all of them, when a branch on that bypass
    path depends on block identity.  Paths that merely do *asymmetric
    work inside* the protocol (the Fig. 9 checking block) still pass
    the closing barrier yields and are not flagged.
    """
    findings: List[StaticFinding] = []
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        cfg = ctx.cfg(unit)
        barrier_nodes = [
            n.index
            for n in cfg.statement_nodes()
            if any(
                call_tail(c) in BARRIER_CALLS
                for c in yielded_calls(n.stmt)
            )
        ]
        if not barrier_nodes:
            continue
        bypass = cfg.bypass_nodes(barrier_nodes)
        if not bypass:
            continue
        identity = block_identity_names(unit.func)
        seen_lines: Set[int] = set()
        for idx in sorted(bypass):
            node = cfg.nodes[idx]
            if node.kind not in ("branch", "loop"):
                continue
            stmt = node.stmt
            test = getattr(stmt, "test", None)
            if test is None or not is_block_dependent(test, identity):
                continue
            if node.line in seen_lines:
                continue
            seen_lines.add(node.line)
            findings.append(
                StaticFinding(
                    code="SC001",
                    message=(
                        f"barrier can be skipped when "
                        f"'{_unparse(test)}' takes the bypassing branch; "
                        "blocks would disagree on synchronized rounds"
                    ),
                    file=ctx.path,
                    line=node.line,
                    unit=unit.qualname,
                )
            )
    return findings


# -- SC002: static occupancy violation --------------------------------------

#: strategy-name prefixes that imply a device-side (co-resident) barrier.
_DEVICE_PREFIXES = ("gpu-", "broken-")
#: call tails that take (algorithm, strategy, num_blocks, ...).
_RUN_TAILS = {"run", "sanitize_run"}


def _call_arg(
    call: ast.Call, position: int, keyword: str
) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


def rule_sc002(ctx: FileContext) -> List[StaticFinding]:
    """A grid-size literal exceeding the device's co-residency limit.

    Paper §5: a device-side barrier deadlocks the moment blocks
    outnumber the co-resident capacity, because waiting blocks are
    never preempted to let the rest run.  The limit comes from the
    target preset's topology (``ctx.sm_limit``): one block per SM under
    the paper's exclusive policy, the per-SM block cap times ``num_sms``
    under cooperative scheduling — so grids that are legal on a
    ``grid_sync``-class device aren't false-flagged when linting with
    ``sm_limit_for_preset("grid_sync")``.  The dynamic sanitizer catches
    this at prepare() time; this rule catches it while the file is
    being written.  Only device strategies named by a string literal
    are flagged — host-side barriers legitimately run arbitrarily large
    grids.
    """
    findings: List[StaticFinding] = []
    for node in ast.walk(ctx.module):
        if not isinstance(node, ast.Call):
            continue
        tail = call_tail(node)
        blocks_expr: Optional[ast.expr] = None
        if tail in _RUN_TAILS:
            strategy = _call_arg(node, 1, "strategy")
            if not (
                isinstance(strategy, ast.Constant)
                and isinstance(strategy.value, str)
                and strategy.value.startswith(_DEVICE_PREFIXES)
            ):
                continue
            blocks_expr = _call_arg(node, 2, "num_blocks")
        elif tail == "prepare" and isinstance(node.func, ast.Attribute):
            blocks_expr = _call_arg(node, 1, "num_blocks")
        else:
            continue
        if blocks_expr is None:
            continue
        value = resolve_int(blocks_expr, ctx.consts)
        if value is not None and value > ctx.sm_limit:
            findings.append(
                StaticFinding(
                    code="SC002",
                    message=(
                        f"num_blocks={value} exceeds the "
                        f"{ctx.sm_limit}-block co-residency limit of the "
                        "target device preset; a device-side barrier "
                        "would deadlock"
                    ),
                    file=ctx.path,
                    line=node.lineno,
                )
            )
    return findings


# -- SC003: stale spin read --------------------------------------------------


def _reads_memory(expr: ast.AST) -> bool:
    """True when evaluating the expression re-observes device state."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "data":
            return True
        if isinstance(node, ast.Call):
            return True
    return False


def rule_sc003(ctx: FileContext) -> List[StaticFinding]:
    """A spin whose predicate can never observe the awaited store.

    The paper's §5 implementations hinge on ``volatile``-qualified spin
    reads; the simulated analogue is a predicate that re-reads
    ``array.data`` on every poll.  A predicate over captured locals
    (or lambda *defaults*, which are evaluated once) is a constant:
    the spin either exits immediately or never — the classic dropped
    ``volatile`` bug.  The same applies to a ``while`` wait-loop whose
    condition no statement in the body can change.
    """
    findings: List[StaticFinding] = []
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        for node in _walk_scoped(unit.func):
            if isinstance(node, ast.Call) and call_tail(node) == "spin_until":
                predicate = _call_arg(node, 1, "predicate")
                if not isinstance(predicate, ast.Lambda):
                    continue
                if not _reads_memory(predicate.body):
                    findings.append(
                        StaticFinding(
                            code="SC003",
                            message=(
                                "spin predicate "
                                f"'{_unparse(predicate)}' never re-reads "
                                "device memory (.data); the awaited store "
                                "can never be observed"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=unit.qualname,
                        )
                    )
        for node in _walk_scoped(unit.func):
            if not isinstance(node, ast.While):
                continue
            if _reads_memory(node.test):
                continue
            tested = expr_names(node.test)
            if not tested:
                continue  # e.g. ``while True`` — not a spin shape
            has_yield = any(
                isinstance(sub, (ast.Yield, ast.YieldFrom))
                for stmt in node.body
                for sub in _walk_scoped(stmt)
            ) or any(
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, (ast.Yield, ast.YieldFrom))
                for stmt in node.body
            )
            if not has_yield:
                continue
            rebound = _assigned_names(node.body)
            if tested & rebound:
                continue
            findings.append(
                StaticFinding(
                    code="SC003",
                    message=(
                        f"wait loop condition '{_unparse(node.test)}' "
                        "reads only locals the loop body never updates; "
                        "the spin can never terminate"
                    ),
                    file=ctx.path,
                    line=node.lineno,
                    unit=unit.qualname,
                )
            )
    return findings


def _assigned_names(body: List[ast.stmt]) -> Set[str]:
    """Names (re)bound anywhere in a statement list (scoped walk)."""
    names: Set[str] = set()

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    for stmt in body:
        for node in [stmt, *_walk_scoped(stmt)]:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    collect_target(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                collect_target(node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                collect_target(node.target)
    return names


# -- SC004: unguarded atomic arrival -----------------------------------------


def rule_sc004(ctx: FileContext) -> List[StaticFinding]:
    """An atomic arrival that can execute more than once per round.

    Paper §5.1: exactly one thread per block performs the
    ``atomicAdd(&g_mutex, 1)`` arrival (the leading-thread guard), and
    each block arrives exactly once per round — otherwise the counter
    passes ``goalVal`` early and the barrier releases before all blocks
    arrived.  The simulator's one-agent-per-block model makes the guard
    implicit, so the statically-checkable residue is *repetition*: an
    ``atomic_add`` inside a loop whose target cell does not vary with
    the loop (the tree barrier's per-level atomics vary their mutex
    each iteration and are fine).
    """
    findings: List[StaticFinding] = []
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        for loop in _walk_scoped(unit.func):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            bound = _assigned_names(loop.body)
            if isinstance(loop, ast.For):
                bound |= expr_names(loop.target)
            for stmt in loop.body:
                for node in [stmt, *_walk_scoped(stmt)]:
                    if not (
                        isinstance(node, ast.Call)
                        and call_tail(node) == "atomic_add"
                        and len(node.args) >= 2
                    ):
                        continue
                    cell_names = expr_names(node.args[0]) | expr_names(
                        node.args[1]
                    )
                    if cell_names & bound:
                        continue  # cell varies with the loop: fine
                    findings.append(
                        StaticFinding(
                            code="SC004",
                            message=(
                                "atomic arrival on loop-invariant cell "
                                f"'{_unparse(node.args[0])}"
                                f"[{_unparse(node.args[1])}]' repeats every "
                                "iteration; each block must arrive exactly "
                                "once per round"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=unit.qualname,
                        )
                    )
    return findings


# -- class-level helpers for SC005 / SC007 / SC008 ---------------------------


def _generator_methods(cls: StrategyClass) -> List[Tuple[str, ast.AST]]:
    from repro.staticcheck.discover import is_generator

    return [
        (name, func)
        for name, func in cls.methods.items()
        if is_generator(func)
    ]


def _atomic_roots(cls: StrategyClass) -> Set[str]:
    """Cells (self-attr roots or local names) receiving atomic_add."""
    roots: Set[str] = set()
    for _name, func in _generator_methods(cls):
        aliases = self_attr_aliases(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and call_tail(node) == "atomic_add":
                if not node.args:
                    continue
                root = resolve_attr_root(node.args[0], aliases)
                if root is None and isinstance(node.args[0], ast.Name):
                    root = f"local:{node.args[0].id}"
                if root is not None:
                    roots.add(root)
    return roots


def _expr_root(expr: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    root = resolve_attr_root(expr, aliases)
    if root is None and isinstance(expr, ast.Name):
        return f"local:{expr.id}"
    return root


# -- SC005: goalVal anti-patterns --------------------------------------------


def _is_non_multiple_goal(expr: ast.expr) -> bool:
    """Matches ``round * n + k`` (k a non-zero literal): an arrival goal
    satisfiable before all N blocks arrive."""
    if not (isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add)):
        return False
    left, right = expr.left, expr.right
    for product, offset in ((left, right), (right, left)):
        if (
            isinstance(product, ast.BinOp)
            and isinstance(product.op, ast.Mult)
            and isinstance(offset, ast.Constant)
            and isinstance(offset.value, int)
            and offset.value != 0
        ):
            return True
    return False


def rule_sc005(ctx: FileContext) -> List[StaticFinding]:
    """goalVal protocol drift (paper §5.1 and its ablation).

    Two shapes: (a) the arrival counter is *reset* to zero each round —
    the design §5.1 explicitly rejects because the extra store and spin
    phase cost real time and open a reset/arrival race; (b) the goal an
    arrival counter is spun against is ``round·N + k`` instead of a
    whole multiple of N, so the first ``k``-th arrival satisfies it and
    the barrier releases early.
    """
    findings: List[StaticFinding] = []
    for cls in ctx.classes:
        atomic_roots = _atomic_roots(cls)
        if not atomic_roots:
            continue
        for name, func in _generator_methods(cls):
            aliases = self_attr_aliases(func)
            qual = f"{cls.name}.{name}"
            # (a) reset store to an atomic counter cell.
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and call_tail(node) == "gwrite"
                    and len(node.args) >= 3
                ):
                    continue
                root = _expr_root(node.args[0], aliases)
                if root not in atomic_roots:
                    continue
                value = node.args[2]
                if isinstance(value, ast.Constant) and value.value == 0:
                    findings.append(
                        StaticFinding(
                            code="SC005",
                            message=(
                                "arrival counter "
                                f"'{_unparse(node.args[0])}' is reset to 0 "
                                "instead of accumulating goalVal — the "
                                "rejected §5.1 design (extra store + spin "
                                "phase per round)"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=qual,
                        )
                    )
            # (b) non-multiple goal spun against an atomic counter.
            goal_names = _spin_goal_names(func, aliases, atomic_roots)
            if not goal_names:
                continue
            for node in _walk_scoped(func):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in goal_names
                ):
                    continue
                if _is_non_multiple_goal(node.value):
                    findings.append(
                        StaticFinding(
                            code="SC005",
                            message=(
                                f"arrival goal '{node.targets[0].id} = "
                                f"{_unparse(node.value)}' is not a whole "
                                "multiple of the grid size; the barrier "
                                "releases before every block arrives"
                            ),
                            file=ctx.path,
                            line=node.lineno,
                            unit=qual,
                        )
                    )
    return findings


def _spin_goal_names(
    func: ast.AST, aliases: Dict[str, str], atomic_roots: Set[str]
) -> Set[str]:
    """Names compared against an atomic counter inside spin predicates."""
    goals: Set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call) and call_tail(node) == "spin_until"
        ):
            continue
        if not node.args:
            continue
        if _expr_root(node.args[0], aliases) not in atomic_roots:
            continue
        predicate = _call_arg(node, 1, "predicate")
        if not isinstance(predicate, ast.Lambda):
            continue
        # Names in the body, mapped through lambda defaults back to the
        # enclosing scope where applicable.
        body_names = expr_names(predicate.body)
        params = [a.arg for a in predicate.args.args]
        defaults = predicate.args.defaults
        bound = dict(zip(params[len(params) - len(defaults):], defaults))
        for name in body_names:
            if name in bound:
                default = bound[name]
                if isinstance(default, ast.Name):
                    goals.add(default.id)
            else:
                goals.add(name)
        # Array aliases are not goals.
        goals = {
            g
            for g in goals
            if _expr_root(ast.Name(id=g), aliases) not in atomic_roots
        }
    return goals


# -- SC006: shared-memory race -----------------------------------------------


def rule_sc006(ctx: FileContext) -> List[StaticFinding]:
    """Conflicting shared-memory accesses with no ``__syncthreads``.

    Intra-block threads share the SM scratchpad (paper §2); a write and
    a subsequent access of the same shared array at a *different* index
    expression, with no intervening intra-block barrier, is the classic
    shared-memory race.  The pass is a linear def-use scan in source
    order: any ``syncthreads()`` (or grid barrier, which implies one)
    clears the pending-write set.
    """
    findings: List[StaticFinding] = []
    shared_ops = {"swrite", "sread"}
    for unit in ctx.units:
        if unit.kind not in ("barrier-method", "kernel"):
            continue
        events: List[Tuple[int, str, str, str]] = []
        for node in _walk_scoped(unit.func):
            if not isinstance(node, ast.Call):
                continue
            tail = call_tail(node)
            if tail in BARRIER_CALLS:
                events.append((node.lineno, "barrier", "", ""))
            elif tail in shared_ops and len(node.args) >= 2:
                events.append(
                    (
                        node.lineno,
                        tail,
                        ast.dump(node.args[0]),
                        ast.dump(node.args[1]),
                    )
                )
        events.sort(key=lambda e: e[0])
        pending: Dict[str, Tuple[str, int]] = {}
        for line, kind, array, index in events:
            if kind == "barrier":
                pending.clear()
                continue
            prior = pending.get(array)
            if prior is not None and prior[0] != index:
                findings.append(
                    StaticFinding(
                        code="SC006",
                        message=(
                            "shared-memory access conflicts with the "
                            f"write at line {prior[1]} (different index, "
                            "same array, no __syncthreads between them)"
                        ),
                        file=ctx.path,
                        line=line,
                        unit=unit.qualname,
                    )
                )
            if kind == "swrite":
                pending[array] = (index, line)
    return findings


# -- SC007: under-sized lock-free flag array ---------------------------------


def _num_blocks_dependents(prepare: ast.AST) -> Set[str]:
    """Names/attrs in ``prepare`` transitively derived from num_blocks."""
    args = getattr(prepare, "args", None)
    param_names = [a.arg for a in args.args] if args else []
    seeds = {n for n in param_names if n == "num_blocks"}
    if not seeds and len(param_names) >= 3:
        seeds = {param_names[2]}  # (self, device, <grid size>)
    deps: Set[str] = set(seeds)

    def expr_hits(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in deps:
                return True
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and f"attr:{node.attr}" in deps
            ):
                return True
        return False

    changed = True
    while changed:
        changed = False
        for node in _walk_scoped(prepare):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], node.iter
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets, value = [node.target], node.value
            if value is None or not expr_hits(value):
                continue
            for target in targets:
                for leaf in ast.walk(target):
                    marker: Optional[str] = None
                    if isinstance(leaf, ast.Name):
                        marker = leaf.id
                    elif (
                        isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                    ):
                        marker = f"attr:{leaf.attr}"
                    if marker is not None and marker not in deps:
                        deps.add(marker)
                        changed = True
    return deps


def rule_sc007(ctx: FileContext) -> List[StaticFinding]:
    """A per-block flag array whose size does not scale with the grid.

    Paper §5.3: the lock-free barrier stores one flag per block
    (``Arrayin[i]``/``Arrayout[i]``).  Sizing those arrays with a
    constant silently corrupts neighbouring state (or drops arrivals)
    the first time the grid grows past it.  Flagged when a strategy's
    ``prepare`` allocates an array with a num_blocks-independent size
    and a barrier method then indexes that array by block identity.
    """
    findings: List[StaticFinding] = []
    for cls in ctx.classes:
        prepare = cls.methods.get("prepare")
        if prepare is None:
            continue
        deps = _num_blocks_dependents(prepare)

        def size_depends(expr: ast.AST) -> bool:
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in deps:
                    return True
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and f"attr:{node.attr}" in deps
                ):
                    return True
            return False

        allocs: Dict[str, Tuple[ast.expr, int]] = {}
        for node in ast.walk(prepare):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and isinstance(node.value, ast.Call)
                and call_tail(node.value) == "alloc"
                and len(node.value.args) >= 2
            ):
                continue
            allocs[node.targets[0].attr] = (node.value.args[1], node.lineno)

        if not allocs:
            continue

        block_indexed: Dict[str, int] = {}
        for name, func in _generator_methods(cls):
            aliases = self_attr_aliases(func)
            identity = block_identity_names(func)
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and call_tail(node) in ("gwrite", "gread", "atomic_add")
                    and len(node.args) >= 2
                ):
                    continue
                root = resolve_attr_root(node.args[0], aliases)
                if root is None or root not in allocs:
                    continue
                if is_block_dependent(node.args[1], identity):
                    block_indexed.setdefault(root, node.lineno)

        for root, access_line in sorted(block_indexed.items()):
            size_expr, alloc_line = allocs[root]
            if size_depends(size_expr):
                continue
            findings.append(
                StaticFinding(
                    code="SC007",
                    message=(
                        f"flag array 'self.{root}' is indexed by block id "
                        f"(line {access_line}) but allocated with size "
                        f"'{_unparse(size_expr)}', which does not scale "
                        "with num_blocks"
                    ),
                    file=ctx.path,
                    line=alloc_line,
                    unit=f"{cls.name}.prepare",
                )
            )
    return findings


# -- SC008: unreleased synchronization path ----------------------------------


def rule_sc008(ctx: FileContext) -> List[StaticFinding]:
    """An acquire/await with no reachable release.

    Two shapes of the same §5.3 hazard (a waiter nothing will ever
    wake): (a) a raw ``Acquire`` effect from which the function can
    reach exit without yielding the matching ``Release`` — the
    simulated analogue of leaking a FIFO atomic unit; (b) a barrier
    class that spins on a flag array **no method of the class ever
    stores to** — the lock-free barrier with its Fig. 9 step-2 scatter
    dropped, which deadlocks every block on ``Arrayout``.
    """
    findings: List[StaticFinding] = []

    # (a) effect-level: Acquire with an exit path that skips Release.
    for unit in ctx.units:
        cfg = ctx.cfg(unit)
        acquires: List[Tuple[int, str, str, int]] = []
        releases: Dict[str, List[int]] = {}
        all_releases: List[int] = []
        for node in cfg.statement_nodes():
            for call in yielded_calls(node.stmt):
                tail = call_tail(call)
                if tail == "Acquire" and call.args:
                    acquires.append(
                        (
                            node.index,
                            ast.dump(call.args[0]),
                            _unparse(call.args[0]),
                            node.line,
                        )
                    )
                elif tail == "Release":
                    key = ast.dump(call.args[0]) if call.args else ""
                    releases.setdefault(key, []).append(node.index)
                    all_releases.append(node.index)
        for node_idx, resource_key, resource_src, line in acquires:
            matching = releases.get(resource_key) or all_releases
            if not matching or cfg.exit_reachable_avoiding(
                node_idx, matching
            ):
                findings.append(
                    StaticFinding(
                        code="SC008",
                        message=(
                            f"Acquire of '{resource_src}' can reach "
                            "function exit without a matching Release; "
                            "contenders queue forever"
                        ),
                        file=ctx.path,
                        line=line,
                        unit=unit.qualname,
                    )
                )

    # (b) class-level: spun flag arrays nobody stores to.
    for cls in ctx.classes:
        written: Set[str] = set()
        spins: List[Tuple[str, int, str]] = []
        for name, func in _generator_methods(cls):
            aliases = self_attr_aliases(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                tail = call_tail(node)
                if tail in ("gwrite", "atomic_add") and node.args:
                    root = resolve_attr_root(node.args[0], aliases)
                    if root is not None:
                        written.add(root)
                elif tail == "spin_until" and node.args:
                    root = resolve_attr_root(node.args[0], aliases)
                    if root is not None:
                        spins.append((root, node.lineno, name))
        for root, line, method in spins:
            if root in written:
                continue
            findings.append(
                StaticFinding(
                    code="SC008",
                    message=(
                        f"barrier spins on 'self.{root}' but no method of "
                        f"{cls.name} ever stores to it — the release "
                        "scatter (Fig. 9 step 2) is missing, so every "
                        "waiter deadlocks"
                    ),
                    file=ctx.path,
                    line=line,
                    unit=f"{cls.name}.{method}",
                )
            )
    return findings


#: rule registry, in code order (docs and the engine iterate this).
RULES: Dict[str, Callable[[FileContext], List[StaticFinding]]] = {
    "SC001": rule_sc001,
    "SC002": rule_sc002,
    "SC003": rule_sc003,
    "SC004": rule_sc004,
    "SC005": rule_sc005,
    "SC006": rule_sc006,
    "SC007": rule_sc007,
    "SC008": rule_sc008,
}


def run_rules(ctx: FileContext) -> List[StaticFinding]:
    """Run every rule over one file's context."""
    findings: List[StaticFinding] = []
    for rule in RULES.values():
        findings.extend(rule(ctx))
    return findings
