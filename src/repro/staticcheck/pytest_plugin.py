"""Pytest integration for the static barrier-protocol linter.

Loaded via ``pytest_plugins = ("repro.staticcheck.pytest_plugin",)`` in
the repo-root ``conftest.py``.  Adds:

* ``--staticcheck`` — after collection, lint **every strategy class
  registered** via :func:`repro.sync.base.register_strategy` (the
  deliberately-broken ``broken-*`` mutants are exempt: their bugs are
  the sanitizer's seeded ground truth) and fail the session with a
  usage error if any finding survives;
* fixtures ``lint_strategy_report`` and ``lint_source_report`` for
  tests that want a :class:`~repro.staticcheck.report.LintReport`
  without importing the engine directly.

The plugin lints the strategies the suite *actually registered* — not
whatever files happen to sit in a directory — so a test-local strategy
defined inside a test module gets linted exactly like a shipped one.
"""

from __future__ import annotations

from typing import Callable, List

import pytest

from repro.staticcheck.engine import LintError, lint_source, lint_strategy
from repro.staticcheck.report import LintReport

__all__ = [
    "pytest_addoption",
    "pytest_collection_finish",
    "pytest_report_header",
]


def pytest_addoption(parser: "pytest.Parser") -> None:
    group = parser.getgroup("staticcheck", "static barrier-protocol linter")
    group.addoption(
        "--staticcheck",
        action="store_true",
        default=False,
        help="lint every registered sync strategy after collection and "
        "fail the session on any finding (broken-* mutants exempt)",
    )


def pytest_report_header(config: "pytest.Config") -> str:
    on = config.getoption("--staticcheck")
    return "staticcheck: %s" % ("lint registered strategies" if on else "off")


def _registered_strategy_classes() -> List[type]:
    """Distinct classes behind the non-mutant registry entries."""
    from repro.sync.base import get_strategy, strategy_names

    classes: List[type] = []
    seen = set()
    for name in strategy_names():
        if name.startswith("broken-"):
            continue
        cls = type(get_strategy(name))
        if cls in seen:
            continue
        seen.add(cls)
        classes.append(cls)
    return classes


def pytest_collection_finish(session: "pytest.Session") -> None:
    if not session.config.getoption("--staticcheck"):
        return
    failures: List[str] = []
    linted = 0
    for cls in _registered_strategy_classes():
        try:
            report = lint_strategy(cls)
        except LintError:
            # Strategies without retrievable source (REPL, exec) are
            # outside the linter's remit.
            continue
        linted += 1
        # Advice-severity findings (SC009, SC100) flag performance
        # hazards, not bugs — they gate ``repro lint --strict`` and
        # ``--fix --check``, never the test session.
        failures.extend(
            f.render() for f in report.findings if f.severity != "advice"
        )
    if failures:
        raise pytest.UsageError(
            "--staticcheck: %d finding(s) in registered strategies:\n%s"
            % (len(failures), "\n".join("  " + line for line in failures))
        )
    session.config._staticcheck_linted = linted


@pytest.fixture
def lint_strategy_report() -> Callable[..., LintReport]:
    """Factory fixture: lint one strategy class or instance."""

    def call(strategy, **kwargs) -> LintReport:
        return lint_strategy(strategy, **kwargs)

    return call


@pytest.fixture
def lint_source_report() -> Callable[..., LintReport]:
    """Factory fixture: lint a source string."""

    def call(source: str, path: str = "<test>", **kwargs) -> LintReport:
        return lint_source(source, path, **kwargs)

    return call
