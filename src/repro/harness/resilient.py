"""The resilient runtime: retry with backoff, then graceful degradation.

:func:`repro.harness.runner.run` is single-attempt: an injected fault or
a stalled barrier surfaces as one typed exception and the run is lost.
The resilient path (reached through ``repro.run(..., retry=...,
degrade=...)``) wraps it in the recovery policy a production driver
stack would apply:

1. **Retry with backoff** (:class:`RetryPolicy`).  A failed attempt's
   kernel has already been killed (by the barrier watchdog or the
   injected driver kill), and every attempt calls
   :meth:`~repro.algorithms.base.RoundAlgorithm.reset` through ``run`` —
   the checkpoint/restore step — so a relaunch starts from pristine
   state on a fresh device.  Transient faults (driver-kill,
   atomic-drop, mem-corrupt, spurious-wakeup) are *consumed* by the
   shared :class:`~repro.faults.FaultPlan`, so a retry genuinely
   survives them.  Each relaunch charges an exponentially growing
   virtual-time backoff, accumulated into
   :attr:`~repro.harness.runner.RunResult.retry_overhead_ns`.
2. **Graceful degradation** (:class:`DegradePolicy`).  Persistent faults
   (a hung block re-hangs on every relaunch) exhaust the retry budget;
   the runtime then swaps the barrier for the strategy's declared
   fallback (:meth:`~repro.sync.base.SyncStrategy.fallback_strategy` —
   device barriers fall back to the host-side ``cpu-implicit`` barrier,
   which a hung *barrier round* cannot deadlock because the kernel
   boundary itself synchronizes, paper §4.1).  An
   :class:`~repro.errors.OccupancyError` — the grid can never be
   co-resident — skips the pointless retries and degrades immediately.

Every action is recorded as a
:class:`~repro.harness.runner.RecoveryEvent` on the returned result;
if the fallback also fails (or none exists) the whole history surfaces
in a :class:`~repro.errors.RetryExhaustedError`.

This module recovers *simulated* failures — faults injected into the
virtual device.  Its process-level sibling is the supervised executor
(:mod:`repro.parallel.executor`): real worker-process deaths, hung
tasks and Ctrl-C are retried, quarantined or journaled for resume
there, with the same retry-then-contain philosophy
(docs/resilience.md).
"""

from __future__ import annotations
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.errors import (
    BarrierTimeoutError,
    ConfigError,
    FaultError,
    KernelTimeoutError,
    OccupancyError,
    RetryExhaustedError,
)
from repro.harness.runner import RecoveryEvent, RunResult, run
from repro.sync.base import SyncStrategy, get_strategy

__all__ = ["DegradePolicy", "RetryPolicy"]

#: failures one relaunch can plausibly outrun.
_RETRYABLE = (BarrierTimeoutError, KernelTimeoutError, FaultError, VerificationError)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to retry a failed launch before giving up.

    ``backoff_ns`` is the virtual-time pause charged before the first
    relaunch; each further relaunch multiplies it by ``backoff_factor``
    (a driver would wait for the device to settle after a kill).
    """

    max_attempts: int = 3
    backoff_ns: int = 10_000
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_ns < 0 or self.backoff_factor < 1.0:
            raise ConfigError(
                "need backoff_ns >= 0 and backoff_factor >= 1"
            )

    def backoff_for(self, attempt: int) -> int:
        """Backoff (ns) charged before relaunch number ``attempt + 1``."""
        return int(self.backoff_ns * self.backoff_factor ** (attempt - 1))


@dataclass(frozen=True)
class DegradePolicy:
    """Whether (and to what) to degrade once retries are exhausted.

    ``fallback`` overrides the strategy's own
    :meth:`~repro.sync.base.SyncStrategy.fallback_strategy`.
    """

    enabled: bool = True
    fallback: Optional[str] = None


def _run_resilient(
    algorithm: RoundAlgorithm,
    strategy: Union[str, SyncStrategy],
    num_blocks: int,
    retry: Optional[RetryPolicy] = None,
    degrade: Optional[DegradePolicy] = None,
    faults=None,
    barrier_deadline_ns: Optional[int] = None,
    **run_kwargs,
) -> RunResult:
    """Run with retry-with-backoff and graceful degradation.

    Accepts every keyword :func:`repro.harness.runner.run` accepts.
    Returns the first successful attempt's :class:`RunResult`, annotated
    with :attr:`~RunResult.attempts`, :attr:`~RunResult.degraded`,
    :attr:`~RunResult.retry_overhead_ns` and the full
    :attr:`~RunResult.recovery` history; raises
    :class:`~repro.errors.RetryExhaustedError` when nothing worked.
    """
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    retry = retry or RetryPolicy()
    degrade = degrade or DegradePolicy()

    events: List[RecoveryEvent] = []
    history: List[str] = []
    overhead_ns = 0
    attempt = 0

    def finish(result: RunResult, degraded_from: Optional[str]) -> RunResult:
        result.attempts = attempt
        result.retry_overhead_ns = overhead_ns
        result.total_ns += overhead_ns
        result.recovery = events
        if degraded_from is not None:
            result.degraded = True
            result.degraded_from = degraded_from
        if faults is not None:
            result.faults_fired = len(faults.fired)
        return result

    while attempt < retry.max_attempts:
        attempt += 1
        try:
            return finish(
                run(
                    algorithm,
                    strategy,
                    num_blocks,
                    faults=faults,
                    barrier_deadline_ns=barrier_deadline_ns,
                    **run_kwargs,
                ),
                None,
            )
        except OccupancyError as exc:
            # The grid can never be co-resident: no relaunch helps.
            history.append(f"attempt {attempt}: {exc}")
            break
        except _RETRYABLE as exc:
            history.append(f"attempt {attempt}: {exc}")
            if attempt >= retry.max_attempts:
                break
            backoff = retry.backoff_for(attempt)
            overhead_ns += backoff
            events.append(
                RecoveryEvent("retry", attempt, overhead_ns, str(exc))
            )
            if faults is not None:
                faults.next_attempt()

    fallback = degrade.fallback or strategy.fallback_strategy()
    if degrade.enabled and fallback is not None:
        events.append(
            RecoveryEvent(
                "degrade",
                attempt,
                overhead_ns,
                f"{strategy.name} -> {fallback}",
            )
        )
        if faults is not None:
            faults.next_attempt()
        attempt += 1
        try:
            return finish(
                run(
                    algorithm,
                    fallback,
                    num_blocks,
                    faults=faults,
                    barrier_deadline_ns=barrier_deadline_ns,
                    **run_kwargs,
                ),
                strategy.name,
            )
        except (OccupancyError,) + _RETRYABLE as exc:
            history.append(f"fallback {fallback}: {exc}")

    raise RetryExhaustedError(strategy.name, attempt, history)
