"""ASCII line plots for the terminal — the figures as *figures*.

The report tables carry the exact numbers; these plots make the shapes
(Fig. 11's linear-vs-flat race, Fig. 13's falling curves, Fig. 14's
fan-out) visible in a terminal with no plotting dependency::

    sweep = experiments.fig11(rounds=100)
    print(ascii_plot(sweep.blocks,
                     {s: sweep.sync_series(s) for s in sweep.totals},
                     title="Fig. 11 sync time", ylabel="ns"))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError

__all__ = ["ascii_plot", "plot_sweep"]

_MARKERS = "ox+*#%@&"


def ascii_plot(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
    ylabel: str = "",
    width: int = 64,
    height: int = 18,
) -> str:
    """Render one or more y(x) series as an ASCII chart with a legend."""
    if not series:
        raise ConfigError("ascii_plot needs at least one series")
    if width < 16 or height < 4:
        raise ConfigError("plot must be at least 16x4")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    if len(xs) < 2:
        raise ConfigError("need at least 2 x values")

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1
    x_min, x_max = min(xs), max(xs)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    legend = []
    for i, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"  {marker} {name}")
        # Draw line segments with simple interpolation between points.
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            c0, c1 = col(x0), col(x1)
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                y = y0 + t * (y1 - y0)
                grid[row(y)][c] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:,.0f}"
    bottom_label = f"{y_min:,.0f}"
    label_w = max(len(top_label), len(bottom_label), len(ylabel))
    for r, grid_row in enumerate(grid):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bottom_label
        elif r == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label.rjust(label_w)} |{''.join(grid_row)}")
    axis = f"{'':>{label_w}} +{'-' * width}"
    lines.append(axis)
    x_line = f"{x_min:g}".ljust(width - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(f"{'':>{label_w}}  {x_line}")
    lines.extend(legend)
    return "\n".join(lines)


def plot_sweep(sweep, sync: bool = False, title: Optional[str] = None) -> str:
    """Plot a :class:`~repro.harness.experiments.SweepResult`.

    ``sync=True`` plots synchronization time (Fig. 14 style) instead of
    total time (Fig. 11/13 style).
    """
    series = {
        name: (sweep.sync_series(name) if sync else sweep.totals[name])
        for name in sweep.totals
    }
    return ascii_plot(
        sweep.blocks,
        series,
        title=title or f"{sweep.algorithm}: "
        + ("synchronization time" if sync else "total kernel time"),
        ylabel="ns",
    )
