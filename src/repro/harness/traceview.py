"""Export device traces to the Chrome tracing (``chrome://tracing``,
Perfetto) JSON format.

Every span recorded during a run — per-block compute and sync phases,
kernel setup/teardown — becomes a complete ("X") trace event; block
owners map to thread rows so the paper's timing diagrams (Figs. 3, 5, 7,
10) can literally be *looked at* for any configuration::

    result = run(FFT(n=2**10), "gpu-lockfree", 8, keep_device=True)
    write_chrome_trace(result.device.trace, "lockfree.json")
    # open chrome://tracing or https://ui.perfetto.dev and load it

Times are exported in microseconds (the format's native unit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.simcore.trace import Trace

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: stable color assignment per phase (Chrome tracing color names).
_PHASE_COLORS = {
    "compute": "thread_state_running",
    "sync": "thread_state_iowait",
    "sync-overhead": "thread_state_uninterruptible",
    "kernel-setup": "startup",
    "kernel-teardown": "startup",
}


def to_chrome_trace(trace: Trace) -> Dict[str, List[dict]]:
    """Convert a :class:`~repro.simcore.trace.Trace` to Chrome JSON."""
    owners: Dict[str, int] = {}
    events: List[dict] = []
    for span in trace:
        tid = owners.setdefault(span.owner, len(owners) + 1)
        event = {
            "name": span.phase,
            "cat": span.phase,
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": span.start / 1e3,  # ns → µs
            "dur": span.duration / 1e3,
        }
        if span.meta:
            event["args"] = {k: str(v) for k, v in span.meta.items()}
        color = _PHASE_COLORS.get(span.phase)
        if color:
            event["cname"] = color
        events.append(event)
    # Name the thread rows after the block/kernel owners.
    meta_events = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": owner},
        }
        for owner, tid in owners.items()
    ]
    return {"traceEvents": meta_events + events, "displayTimeUnit": "ns"}


def write_chrome_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Serialize :func:`to_chrome_trace` output to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace), indent=1))
    return path
