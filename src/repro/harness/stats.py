"""Multi-run statistics — the paper's "each result is the average of
three runs" (§5.4, §7.1), made explicit.

On deterministic simulation a single run *is* the truth, so averaging
only matters when hardware-style variability is enabled
(``jitter_pct``).  :func:`repeat_run` runs one configuration under
``repeats`` different jitter seeds and aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.algorithms.base import RoundAlgorithm
from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig
from repro.harness.runner import RunResult, run
from repro.sync.base import SyncStrategy

__all__ = ["RunStatistics", "repeat_run", "summarize"]


@dataclass(frozen=True)
class RunStatistics:
    """Aggregate of repeated measurements of one configuration."""

    algorithm: str
    strategy: str
    num_blocks: int
    repeats: int
    mean_ns: float
    std_ns: float
    min_ns: int
    max_ns: int
    samples_ns: tuple

    @property
    def mean_ms(self) -> float:
        """Mean total time in milliseconds."""
        return self.mean_ns / 1e6

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std_ns / self.mean_ns if self.mean_ns else 0.0

    @property
    def ci95_ns(self) -> float:
        """Half-width of a normal-approximation 95 % confidence interval."""
        if self.repeats < 2:
            return 0.0
        return 1.96 * self.std_ns / math.sqrt(self.repeats)


def summarize(results: List[RunResult]) -> RunStatistics:
    """Aggregate already-collected results of one configuration."""
    if not results:
        raise ConfigError("summarize needs at least one result")
    first = results[0]
    for r in results[1:]:
        if (r.algorithm, r.strategy, r.num_blocks) != (
            first.algorithm,
            first.strategy,
            first.num_blocks,
        ):
            raise ConfigError("summarize requires homogeneous results")
    samples = [r.total_ns for r in results]
    n = len(samples)
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / (n - 1) if n > 1 else 0.0
    return RunStatistics(
        algorithm=first.algorithm,
        strategy=first.strategy,
        num_blocks=first.num_blocks,
        repeats=n,
        mean_ns=mean,
        std_ns=math.sqrt(var),
        min_ns=min(samples),
        max_ns=max(samples),
        samples_ns=tuple(samples),
    )


def repeat_run(
    algorithm: RoundAlgorithm,
    strategy: Union[str, SyncStrategy],
    num_blocks: int,
    repeats: int = 3,
    jitter_pct: float = 2.0,
    base_seed: int = 0,
    config: Optional[DeviceConfig] = None,
    verify: bool = True,
) -> RunStatistics:
    """Run a configuration ``repeats`` times with distinct jitter seeds.

    Defaults mirror the paper: three runs, a small run-to-run spread.
    Each repetition re-verifies the output (jitter perturbs *timing*
    only, never results — a failed verification means a barrier bug).
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    results = [
        run(
            algorithm,
            strategy,
            num_blocks,
            config=config,
            verify=verify,
            jitter_pct=jitter_pct,
            jitter_seed=base_seed + i,
        )
        for i in range(repeats)
    ]
    return summarize(results)
