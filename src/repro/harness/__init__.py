"""Experiment harness: run, measure, and reproduce every table & figure.

* :mod:`repro.harness.runner` — execute one (algorithm × strategy ×
  grid) configuration on a fresh simulated device and verify the output.
* :mod:`repro.harness.resilient` — retry-with-backoff and graceful
  degradation around the runner (the fault-tolerant execution path).
* :mod:`repro.harness.phases` — the paper's §7.3 phase-accounting
  methodology (sync time = total − compute-only run).
* :mod:`repro.harness.experiments` — drivers for Table 1, Fig. 11,
  Fig. 13a–c, Fig. 14a–c, Fig. 15, the headline speedups and the
  model-validation study.
* :mod:`repro.harness.perf` — engine-throughput workloads and the
  schema-versioned ``BENCH_*.json`` protocol behind CI's bench smoke.
* :mod:`repro.harness.report` — plain-text table/series rendering.
* :mod:`repro.harness.cli` — ``python -m repro.harness <experiment>``.
"""

from repro.harness.autotune import TuneResult, autotune, probe_barrier_cost
from repro.harness.perf import compare_modes, load_bench, measure_workload, render_bench
from repro.harness.phases import Breakdown, breakdown, compute_only, sync_time_ns
from repro.harness.resilient import DegradePolicy, RetryPolicy
from repro.harness.runner import RaceMonitor, RecoveryEvent, RunResult, run
from repro.harness.stats import RunStatistics, repeat_run, summarize

__all__ = [
    "Breakdown",
    "DegradePolicy",
    "RaceMonitor",
    "RecoveryEvent",
    "RetryPolicy",
    "RunResult",
    "RunStatistics",
    "TuneResult",
    "autotune",
    "breakdown",
    "compare_modes",
    "compute_only",
    "load_bench",
    "measure_workload",
    "probe_barrier_cost",
    "render_bench",
    "repeat_run",
    "run",
    "summarize",
    "sync_time_ns",
]
