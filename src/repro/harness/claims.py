"""Structured verification of the paper's quantitative claims.

Each check compares a measured quantity against the corresponding claim
in :mod:`repro.model.paper_data` under an explicit tolerance, yielding a
:class:`CheckResult`.  The report generator
(:mod:`repro.harness.paperreport`) and the integration suite consume the
same checks, so "does this reproduction still hold?" is one function
call: :func:`check_all`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gpu.config import DeviceConfig
from repro.harness import experiments
from repro.model import paper_data

__all__ = ["CheckResult", "check_all", "check_headline", "check_table1"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one claim."""

    claim_id: str
    paper_value: float
    measured_value: float
    tolerance: str  #: human-readable tolerance description
    passed: bool
    where: str  #: paper location of the claim

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"[{mark}] {self.claim_id}: paper {self.paper_value:g} "
            f"({self.where}), measured {self.measured_value:.2f} "
            f"[{self.tolerance}]"
        )


def _within(measured: float, target: float, abs_tol: float) -> bool:
    return abs(measured - target) <= abs_tol


def check_table1(
    config: Optional[DeviceConfig] = None,
    num_blocks: int = 30,
    abs_tol_pct: float = 5.0,
    results: Optional[Dict] = None,
) -> List[CheckResult]:
    """Table 1 sync shares within ``abs_tol_pct`` percentage points."""
    measured = results if results is not None else experiments.table1(
        config, num_blocks
    )
    out: List[CheckResult] = []
    for name, claim in paper_data.TABLE1_SYNC_PCT.items():
        value = measured[name].sync_pct
        out.append(
            CheckResult(
                claim_id=f"table1/{name}",
                paper_value=claim.value,
                measured_value=value,
                tolerance=f"±{abs_tol_pct:g} points",
                passed=_within(value, claim.value, abs_tol_pct),
                where=claim.where,
            )
        )
    # The ordering itself is a claim worth checking explicitly.
    ordered = (
        measured["fft"].sync_pct
        < measured["swat"].sync_pct
        < measured["bitonic"].sync_pct
    )
    out.append(
        CheckResult(
            claim_id="table1/ordering",
            paper_value=1.0,
            measured_value=1.0 if ordered else 0.0,
            tolerance="exact",
            passed=ordered,
            where="Table 1",
        )
    )
    return out


def check_headline(
    config: Optional[DeviceConfig] = None,
    micro_rounds: int = 200,
    ratio_rel_tol: float = 0.10,
    results: Optional[Dict[str, float]] = None,
) -> List[CheckResult]:
    """Abstract numbers: micro ratios within 10 %; improvements ordered
    and within generous bands (see EXPERIMENTS.md E6 for why the bands
    are wide on the improvement side)."""
    measured = results if results is not None else experiments.headline(
        config, micro_rounds=micro_rounds
    )
    out: List[CheckResult] = []
    for key in ("micro_lockfree_vs_explicit", "micro_lockfree_vs_implicit"):
        claim = paper_data.HEADLINE[key]
        value = measured[key]
        out.append(
            CheckResult(
                claim_id=f"headline/{key}",
                paper_value=claim.value,
                measured_value=value,
                tolerance=f"±{100*ratio_rel_tol:g}%",
                passed=abs(value - claim.value) <= ratio_rel_tol * claim.value,
                where=claim.where,
            )
        )
    bands = {
        "fft_improvement_pct": (5.0, 20.0),
        "swat_improvement_pct": (20.0, 45.0),
        "bitonic_improvement_pct": (30.0, 50.0),
    }
    for key, (lo, hi) in bands.items():
        claim = paper_data.HEADLINE[key]
        value = measured[key]
        out.append(
            CheckResult(
                claim_id=f"headline/{key}",
                paper_value=claim.value,
                measured_value=value,
                tolerance=f"band [{lo:g}, {hi:g}]%",
                passed=lo <= value <= hi,
                where=claim.where,
            )
        )
    ordered = (
        measured["fft_improvement_pct"]
        < measured["swat_improvement_pct"]
        < measured["bitonic_improvement_pct"]
    )
    out.append(
        CheckResult(
            claim_id="headline/improvement-ordering",
            paper_value=1.0,
            measured_value=1.0 if ordered else 0.0,
            tolerance="exact (the Eq. 2 ρ-ordering)",
            passed=ordered,
            where="abstract / §7.2",
        )
    )
    return out


def check_all(
    config: Optional[DeviceConfig] = None,
    micro_rounds: int = 200,
) -> List[CheckResult]:
    """Run every claim check at default (calibrated) problem sizes."""
    return check_table1(config) + check_headline(config, micro_rounds)
