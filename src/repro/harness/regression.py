"""Regression comparison between stored experiment sweeps.

Workflow: persist a blessed sweep with
:func:`repro.harness.store.save_sweep`, re-run the experiment after a
change, and diff::

    baseline = load_sweep("blessed/fig11.json")
    current = experiments.fig11(rounds=200)
    drifts = compare_sweeps(baseline, current, rel_tol=0.01)
    assert not drifts, "\\n".join(map(str, drifts))

Because the simulator is deterministic, the expected drift for a
behavior-preserving change is exactly zero; ``rel_tol`` exists for
intentional recalibrations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ExperimentError
from repro.harness.experiments import SweepResult

__all__ = ["Drift", "compare_sweeps"]


@dataclass(frozen=True)
class Drift:
    """One point whose value moved more than the tolerance."""

    strategy: str  #: series name ("<null>" for the compute-only baseline)
    blocks: int
    baseline_ns: int
    current_ns: int

    @property
    def relative(self) -> float:
        """Signed relative change (current vs baseline)."""
        if self.baseline_ns == 0:
            return float("inf") if self.current_ns else 0.0
        return (self.current_ns - self.baseline_ns) / self.baseline_ns

    def __str__(self) -> str:
        return (
            f"{self.strategy} @ {self.blocks} blocks: "
            f"{self.baseline_ns} → {self.current_ns} ns "
            f"({100 * self.relative:+.2f}%)"
        )


def compare_sweeps(
    baseline: SweepResult, current: SweepResult, rel_tol: float = 0.0
) -> List[Drift]:
    """All points of ``current`` that drifted beyond ``rel_tol``.

    The sweeps must describe the same experiment: same algorithm, same
    block counts, same strategy set — structural mismatches raise
    (they mean you are comparing different experiments, not a
    regression).
    """
    if rel_tol < 0:
        raise ExperimentError(f"rel_tol must be non-negative, got {rel_tol}")
    if baseline.algorithm != current.algorithm:
        raise ExperimentError(
            f"different experiments: {baseline.algorithm!r} vs "
            f"{current.algorithm!r}"
        )
    if baseline.blocks != current.blocks:
        raise ExperimentError(
            f"different block grids: {baseline.blocks} vs {current.blocks}"
        )
    if set(baseline.totals) != set(current.totals):
        raise ExperimentError(
            "different strategy sets: "
            f"{sorted(baseline.totals)} vs {sorted(current.totals)}"
        )

    drifts: List[Drift] = []

    def check(name: str, base_series, cur_series) -> None:
        for n, b, c in zip(baseline.blocks, base_series, cur_series):
            if b == c:
                continue
            if b != 0 and abs(c - b) / abs(b) <= rel_tol:
                continue
            drifts.append(Drift(name, n, b, c))

    for name in baseline.totals:
        check(name, baseline.totals[name], current.totals[name])
    check("<null>", baseline.nulls, current.nulls)
    return drifts
