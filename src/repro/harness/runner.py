"""Run one algorithm under one synchronization strategy and measure it."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import RoundAlgorithm
from repro.errors import BarrierTimeoutError, ConfigError, FaultError, OccupancyError
from repro.faults.watchdog import DEFAULT_BARRIER_DEADLINE_NS, BarrierWatchdog
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.gpu.context import BlockCtx
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.sync.base import SyncStrategy, get_strategy

__all__ = ["RaceMonitor", "RecoveryEvent", "RunResult", "run"]


class RaceMonitor:
    """Detects barrier violations during a run.

    Every block's round work is wrapped; when block ``b`` executes round
    ``r`` before every block finished round ``r-1``, a violation is
    recorded.  A correct barrier yields zero violations; the broken/null
    configurations exercised in tests and the deadlock demo yield many.
    """

    def __init__(self, rounds: int, num_blocks: int):
        self.num_blocks = num_blocks
        self._done = np.zeros(rounds, dtype=np.int64)
        #: ``(round, block, blocks_done_in_previous_round)`` records.
        self.violations: List[Tuple[int, int, int]] = []

    def wrap(self, round_idx: int, block_id: int, work):
        """Wrap (possibly ``None``) round work with violation tracking."""

        def wrapped() -> None:
            if round_idx > 0 and self._done[round_idx - 1] < self.num_blocks:
                self.violations.append(
                    (round_idx, block_id, int(self._done[round_idx - 1]))
                )
            if work is not None:
                work()
            self._done[round_idx] += 1

        return wrapped

    @property
    def clean(self) -> bool:
        """True when no violation was observed."""
        return not self.violations


@dataclass(frozen=True)
class RecoveryEvent:
    """One resilience action taken during a run.

    ``kind`` is ``"retry"``, ``"degrade"`` or ``"watchdog-kill"``;
    ``detail`` is the human-readable cause (the caught error's message
    or the fallback strategy's name).
    """

    kind: str
    attempt: int  #: 1-based attempt the event happened in
    at_ns: int  #: virtual time charged up to this point
    detail: str


@dataclass
class RunResult:
    """Everything measured from one configuration."""

    algorithm: str
    strategy: str
    num_blocks: int
    threads_per_block: int
    rounds: int
    total_ns: int  #: wall-clock virtual time of the whole run
    kernel_launches: int
    verified: Optional[bool]  #: None when verification was skipped
    violations: int  #: barrier violations seen by the race monitor (-1: off)
    atomic_ops: int
    trace_compute_ns: int  #: sum of per-block compute spans
    trace_sync_ns: int  #: sum of per-block sync + sync-overhead spans
    device: Optional[Device] = field(default=None, repr=False)
    # -- resilient-runtime fields (defaults describe a plain clean run) --
    #: launch attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: True when the run finished on a fallback barrier, not ``strategy``.
    degraded: bool = False
    #: the original strategy a degraded run started on.
    degraded_from: Optional[str] = None
    #: injected faults that actually fired across all attempts.
    faults_fired: int = 0
    #: virtual time burned by failed attempts + backoff (already included
    #: in ``total_ns``).
    retry_overhead_ns: int = 0
    #: every resilience action taken, in order.
    recovery: List[RecoveryEvent] = field(default_factory=list)
    # -- executor-provenance fields (filled by supervised batch runs) --
    #: process-level re-executions the parallel supervisor forced for
    #: this task (timeouts, worker deaths) — distinct from ``attempts``,
    #: which counts *simulated* launch attempts inside one execution.
    retries: int = 0
    #: run-id of the journal this result was replayed from, if any.
    #: In-memory provenance only: excluded from serialization and
    #: equality so a resumed run stays bit-identical to a fresh one.
    resumed_from: Optional[str] = field(default=None, compare=False)

    @property
    def total_ms(self) -> float:
        """Total time in milliseconds."""
        return self.total_ns / 1e6

    @property
    def recovered(self) -> bool:
        """True when the run needed any resilience action to finish."""
        return self.attempts > 1 or self.degraded


def run(
    algorithm: RoundAlgorithm,
    strategy: Union[str, SyncStrategy],
    num_blocks: int,
    threads_per_block: Optional[int] = None,
    config: Optional[DeviceConfig] = None,
    verify: bool = True,
    monitor_races: bool = True,
    keep_device: bool = False,
    jitter_pct: float = 0.0,
    jitter_seed: int = 0,
    fuzzer=None,
    probe=None,
    faults=None,
    barrier_deadline_ns: Optional[int] = None,
    engine_mode: Optional[str] = None,
) -> RunResult:
    """Execute ``algorithm`` under ``strategy`` on a fresh device.

    * device strategies run a single kernel whose blocks loop over rounds
      calling the strategy's barrier (paper Fig. 4);
    * host strategies launch one kernel per round, synchronizing between
      launches when the strategy is explicit (paper Fig. 2).

    The algorithm is :meth:`~repro.algorithms.base.RoundAlgorithm.reset`
    before running and, unless ``verify=False`` or the strategy is the
    ``null`` timing stub, verified afterwards.

    ``jitter_pct`` adds hardware-style run-to-run variability: each
    block's round cost is scaled by a lognormal factor with that
    relative spread, deterministically derived from ``jitter_seed`` (so
    a given seed is exactly reproducible — use
    :func:`repro.harness.stats.repeat_run` to average over seeds the way
    the paper averages three runs).

    ``fuzzer`` (a :class:`repro.sanitize.ScheduleFuzzer`) permutes
    same-time event ordering and SM-placement tie-breaking — the
    sanitizer's adversarial-interleaving layer.  ``probe`` (a
    :class:`repro.sanitize.SanitizerProbe`) observes barrier rounds and
    global-memory traffic.  Both default to off and cost nothing then.

    ``faults`` (a :class:`repro.faults.FaultPlan`) arms deterministic
    fault injection on the device; armed runs (or any run passing
    ``barrier_deadline_ns``) also get a
    :class:`repro.faults.BarrierWatchdog`, so a stalled barrier raises
    a recoverable :class:`~repro.errors.BarrierTimeoutError` naming the
    stuck processes instead of a terminal
    :class:`~repro.errors.DeadlockError`, and a kernel killed mid-run
    (the ``driver-kill`` fault) raises
    :class:`~repro.errors.FaultError`.  Both default to off and cost
    nothing then — this function is single-attempt; recovery (retry,
    graceful degradation) lives in ``repro.harness.resilient`` (the
    :func:`repro.run` facade's ``resilient=`` path).

    ``engine_mode`` selects the event core ("reference" or "fast" — see
    ``docs/engine.md``); ``None`` defers to
    :func:`repro.simcore.use_engine_mode` / ``REPRO_ENGINE_MODE`` and
    defaults to the reference engine.  Both cores produce bit-identical
    results; the fast core is just faster.
    """
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    cfg = config or get_preset("gtx280")
    threads = threads_per_block or algorithm.default_threads
    if threads > cfg.max_threads_per_block:
        raise ConfigError(
            f"{threads} threads/block exceeds the device limit "
            f"{cfg.max_threads_per_block}"
        )
    if jitter_pct < 0:
        raise ConfigError(f"jitter_pct must be non-negative, got {jitter_pct}")
    strategy.validate_grid(cfg, num_blocks)

    algorithm.reset()
    device = Device(cfg, engine_mode=engine_mode, fuzzer=fuzzer, faults=faults)
    if probe is not None:
        device.probes.append(probe)
    host = Host(device)
    rounds = algorithm.num_rounds()
    monitor = RaceMonitor(rounds, num_blocks) if monitor_races else None

    # Resilient path: any armed run gets the barrier watchdog, so a
    # stall surfaces as a typed, recoverable error instead of a
    # heap-drain DeadlockError.
    watchdog: Optional[BarrierWatchdog] = None
    if faults is not None or barrier_deadline_ns is not None:
        watchdog = BarrierWatchdog(
            device,
            barrier_deadline_ns or DEFAULT_BARRIER_DEADLINE_NS,
            strategy_name=strategy.name,
        )

    if jitter_pct > 0:
        sigma = jitter_pct / 100.0
        jitter_rng = np.random.default_rng(jitter_seed)

        def jitter(cost: float) -> float:
            return cost * jitter_rng.lognormal(mean=0.0, sigma=sigma)

    else:

        def jitter(cost: float) -> float:
            return cost

    def work_for(round_idx: int, block_id: int):
        work = algorithm.round_work(round_idx, block_id, num_blocks)
        if monitor is None:
            return work
        return monitor.wrap(round_idx, block_id, work)

    if strategy.mode == "device":
        strategy.prepare(device, num_blocks)

        def program(ctx: BlockCtx) -> Generator:
            for r in range(rounds):
                cost = jitter(algorithm.round_cost(r, ctx.block_id, num_blocks))
                yield from ctx.compute(cost, work_for(r, ctx.block_id), round=r)
                yield from strategy.instrumented_barrier(ctx, r)

        spec = KernelSpec(
            name=f"{algorithm.name}:{strategy.name}",
            program=program,
            grid_blocks=num_blocks,
            block_threads=threads,
            shared_mem_per_block=strategy.shared_mem_request(cfg),
        )

        # The cudaLaunchCooperativeKernel rule: under cooperative
        # co-residency the topology's ``max_co_resident_blocks`` is only
        # an upper bound, so validate against the *actual* capacity of
        # this block shape (occupancy-aware).  Exclusive topologies keep
        # the paper's behavior untouched: validate_grid above is the
        # guard, and bypassing it still reaches the engine's own
        # deadlock detection.  Capacity 0 (a block that cannot be
        # placed at all) keeps the scheduler's own error.
        if cfg.topology.co_residency == "cooperative":
            capacity = device.scheduler.co_resident_capacity(spec)
            if capacity and num_blocks > capacity:
                raise OccupancyError(
                    f"{strategy.name}: {num_blocks} blocks of {threads} "
                    f"threads exceed the device's co-resident capacity of "
                    f"{capacity} blocks; a device-side barrier would "
                    "deadlock (non-preemptive blocks)"
                )

        def host_program() -> Generator:
            handle = yield from host.launch(spec)
            if watchdog is not None:
                watchdog.watch(handle)
            yield from host.synchronize()
            if watchdog is not None:
                watchdog.disarm()

    else:

        def round_program(ctx: BlockCtx, round_idx: int) -> Generator:
            cost = jitter(
                algorithm.round_cost(round_idx, ctx.block_id, num_blocks)
            )
            yield from ctx.compute(
                cost, work_for(round_idx, ctx.block_id), round=round_idx
            )

        def host_program() -> Generator:
            for r in range(rounds):
                spec = KernelSpec(
                    name=f"{algorithm.name}:r{r}",
                    program=round_program,
                    grid_blocks=num_blocks,
                    block_threads=threads,
                    params={"round_idx": r},
                )
                handle = yield from host.launch(spec)
                if watchdog is not None:
                    watchdog.watch(handle)
                if strategy.explicit:
                    yield from host.synchronize()
            yield from host.synchronize()
            if watchdog is not None:
                watchdog.disarm()

    if watchdog is not None:
        watchdog.arm()
    device.engine.spawn(host_program(), "host")
    total_ns = device.run()

    if watchdog is not None and watchdog.fired:
        raise BarrierTimeoutError(
            strategy.name,
            watchdog.deadline_ns,
            watchdog.fired_at or total_ns,
            watchdog.stuck,
            faults=[f.description for f in faults.fired] if faults else None,
        )
    if faults is not None:
        # Check the handles, not just the host's sticky error: in host
        # mode the final synchronize joins only the *last* kernel, so a
        # kill of an earlier launch never latches last_error.
        killed = [h for h in host.launches if h.killed]
        if killed:
            detail = host.get_last_error() or (
                f"kernel {killed[0].spec.name!r} was killed"
            )
            raise FaultError(f"kernel killed mid-run: {detail}")

    verified: Optional[bool] = None
    if verify and strategy.name != "null":
        algorithm.verify()  # raises VerificationError on mismatch
        verified = True

    return RunResult(
        algorithm=algorithm.name,
        strategy=strategy.name,
        num_blocks=num_blocks,
        threads_per_block=threads,
        rounds=rounds,
        total_ns=total_ns,
        kernel_launches=len(host.launches),
        verified=verified,
        violations=len(monitor.violations) if monitor is not None else -1,
        atomic_ops=device.atomics.ops,
        trace_compute_ns=device.trace.total("compute"),
        trace_sync_ns=(
            device.trace.total("sync") + device.trace.total("sync-overhead")
        ),
        device=device if keep_device else None,
        faults_fired=len(faults.fired) if faults is not None else 0,
    )
