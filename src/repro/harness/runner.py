"""Run one algorithm under one synchronization strategy and measure it."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import RoundAlgorithm
from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig, gtx280
from repro.gpu.context import BlockCtx
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.sync.base import SyncStrategy, get_strategy

__all__ = ["RaceMonitor", "RunResult", "run"]


class RaceMonitor:
    """Detects barrier violations during a run.

    Every block's round work is wrapped; when block ``b`` executes round
    ``r`` before every block finished round ``r-1``, a violation is
    recorded.  A correct barrier yields zero violations; the broken/null
    configurations exercised in tests and the deadlock demo yield many.
    """

    def __init__(self, rounds: int, num_blocks: int):
        self.num_blocks = num_blocks
        self._done = np.zeros(rounds, dtype=np.int64)
        #: ``(round, block, blocks_done_in_previous_round)`` records.
        self.violations: List[Tuple[int, int, int]] = []

    def wrap(self, round_idx: int, block_id: int, work):
        """Wrap (possibly ``None``) round work with violation tracking."""

        def wrapped() -> None:
            if round_idx > 0 and self._done[round_idx - 1] < self.num_blocks:
                self.violations.append(
                    (round_idx, block_id, int(self._done[round_idx - 1]))
                )
            if work is not None:
                work()
            self._done[round_idx] += 1

        return wrapped

    @property
    def clean(self) -> bool:
        """True when no violation was observed."""
        return not self.violations


@dataclass
class RunResult:
    """Everything measured from one configuration."""

    algorithm: str
    strategy: str
    num_blocks: int
    threads_per_block: int
    rounds: int
    total_ns: int  #: wall-clock virtual time of the whole run
    kernel_launches: int
    verified: Optional[bool]  #: None when verification was skipped
    violations: int  #: barrier violations seen by the race monitor (-1: off)
    atomic_ops: int
    trace_compute_ns: int  #: sum of per-block compute spans
    trace_sync_ns: int  #: sum of per-block sync + sync-overhead spans
    device: Optional[Device] = field(default=None, repr=False)

    @property
    def total_ms(self) -> float:
        """Total time in milliseconds."""
        return self.total_ns / 1e6


def run(
    algorithm: RoundAlgorithm,
    strategy: Union[str, SyncStrategy],
    num_blocks: int,
    threads_per_block: Optional[int] = None,
    config: Optional[DeviceConfig] = None,
    verify: bool = True,
    monitor_races: bool = True,
    keep_device: bool = False,
    jitter_pct: float = 0.0,
    jitter_seed: int = 0,
    fuzzer=None,
    probe=None,
) -> RunResult:
    """Execute ``algorithm`` under ``strategy`` on a fresh device.

    * device strategies run a single kernel whose blocks loop over rounds
      calling the strategy's barrier (paper Fig. 4);
    * host strategies launch one kernel per round, synchronizing between
      launches when the strategy is explicit (paper Fig. 2).

    The algorithm is :meth:`~repro.algorithms.base.RoundAlgorithm.reset`
    before running and, unless ``verify=False`` or the strategy is the
    ``null`` timing stub, verified afterwards.

    ``jitter_pct`` adds hardware-style run-to-run variability: each
    block's round cost is scaled by a lognormal factor with that
    relative spread, deterministically derived from ``jitter_seed`` (so
    a given seed is exactly reproducible — use
    :func:`repro.harness.stats.repeat_run` to average over seeds the way
    the paper averages three runs).

    ``fuzzer`` (a :class:`repro.sanitize.ScheduleFuzzer`) permutes
    same-time event ordering and SM-placement tie-breaking — the
    sanitizer's adversarial-interleaving layer.  ``probe`` (a
    :class:`repro.sanitize.SanitizerProbe`) observes barrier rounds and
    global-memory traffic.  Both default to off and cost nothing then.
    """
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    cfg = config or gtx280()
    threads = threads_per_block or algorithm.default_threads
    if threads > cfg.max_threads_per_block:
        raise ConfigError(
            f"{threads} threads/block exceeds the device limit "
            f"{cfg.max_threads_per_block}"
        )
    if jitter_pct < 0:
        raise ConfigError(f"jitter_pct must be non-negative, got {jitter_pct}")
    strategy.validate_grid(cfg, num_blocks)

    algorithm.reset()
    device = Device(cfg, fuzzer=fuzzer)
    if probe is not None:
        device.probes.append(probe)
    host = Host(device)
    rounds = algorithm.num_rounds()
    monitor = RaceMonitor(rounds, num_blocks) if monitor_races else None

    if jitter_pct > 0:
        sigma = jitter_pct / 100.0
        jitter_rng = np.random.default_rng(jitter_seed)

        def jitter(cost: float) -> float:
            return cost * jitter_rng.lognormal(mean=0.0, sigma=sigma)

    else:

        def jitter(cost: float) -> float:
            return cost

    def work_for(round_idx: int, block_id: int):
        work = algorithm.round_work(round_idx, block_id, num_blocks)
        if monitor is None:
            return work
        return monitor.wrap(round_idx, block_id, work)

    if strategy.mode == "device":
        strategy.prepare(device, num_blocks)

        def program(ctx: BlockCtx) -> Generator:
            for r in range(rounds):
                cost = jitter(algorithm.round_cost(r, ctx.block_id, num_blocks))
                yield from ctx.compute(cost, work_for(r, ctx.block_id), round=r)
                yield from strategy.instrumented_barrier(ctx, r)

        spec = KernelSpec(
            name=f"{algorithm.name}:{strategy.name}",
            program=program,
            grid_blocks=num_blocks,
            block_threads=threads,
            shared_mem_per_block=strategy.shared_mem_request(cfg),
        )

        def host_program() -> Generator:
            yield from host.launch(spec)
            yield from host.synchronize()

    else:

        def round_program(ctx: BlockCtx, round_idx: int) -> Generator:
            cost = jitter(
                algorithm.round_cost(round_idx, ctx.block_id, num_blocks)
            )
            yield from ctx.compute(
                cost, work_for(round_idx, ctx.block_id), round=round_idx
            )

        def host_program() -> Generator:
            for r in range(rounds):
                spec = KernelSpec(
                    name=f"{algorithm.name}:r{r}",
                    program=round_program,
                    grid_blocks=num_blocks,
                    block_threads=threads,
                    params={"round_idx": r},
                )
                yield from host.launch(spec)
                if strategy.explicit:
                    yield from host.synchronize()
            yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    total_ns = device.run()

    verified: Optional[bool] = None
    if verify and strategy.name != "null":
        algorithm.verify()  # raises VerificationError on mismatch
        verified = True

    return RunResult(
        algorithm=algorithm.name,
        strategy=strategy.name,
        num_blocks=num_blocks,
        threads_per_block=threads,
        rounds=rounds,
        total_ns=total_ns,
        kernel_launches=len(host.launches),
        verified=verified,
        violations=len(monitor.violations) if monitor is not None else -1,
        atomic_ops=device.atomics.ops,
        trace_compute_ns=device.trace.total("compute"),
        trace_sync_ns=(
            device.trace.total("sync") + device.trace.total("sync-overhead")
        ),
        device=device if keep_device else None,
    )
