"""One-shot reproduction report: every experiment, every claim, one file.

``python -m repro.harness report --report-out report.md`` (or
:func:`generate_report`) runs Table 1, Fig. 11, Fig. 15, the headline
numbers and the claim checks, and renders a Markdown document with a
PASS/FAIL verdict per claim — a machine-written companion to the
hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.harness import experiments
from repro.harness.claims import CheckResult, check_headline, check_table1

__all__ = ["generate_report", "render_markdown"]


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def render_markdown(
    table1_results,
    fig11_sweep,
    fig15_results,
    headline_results,
    checks: List[CheckResult],
    device_name: str,
    micro_rounds: int,
) -> str:
    """Render collected experiment outputs as one Markdown document."""
    passed = sum(1 for c in checks if c.passed)
    sections: List[str] = []
    sections.append("# Reproduction report")
    sections.append(
        f"Device: **{device_name}** (simulated). "
        f"Claims checked: **{passed}/{len(checks)} passed**."
    )

    sections.append("## Claim checks")
    sections.append(
        _md_table(
            ["claim", "paper", "measured", "tolerance", "verdict"],
            [
                [
                    c.claim_id,
                    f"{c.paper_value:g} ({c.where})",
                    f"{c.measured_value:.2f}",
                    c.tolerance,
                    "PASS" if c.passed else "**FAIL**",
                ]
                for c in checks
            ],
        )
    )

    sections.append("## Table 1 — inter-block communication share")
    sections.append(
        _md_table(
            ["algorithm", "total (ms)", "sync share"],
            [
                [name, f"{b.total_ns/1e6:.3f}", f"{b.sync_pct:.1f}%"]
                for name, b in table1_results.items()
            ],
        )
    )

    sections.append(
        f"## Fig. 11 — micro-benchmark ({micro_rounds} rounds), "
        "per-round sync time (µs)"
    )
    strategies = list(fig11_sweep.totals)
    rows = []
    for i, n in enumerate(fig11_sweep.blocks):
        rows.append(
            [str(n)]
            + [
                f"{fig11_sweep.sync_series(s)[i] / micro_rounds / 1e3:.2f}"
                for s in strategies
            ]
        )
    sections.append(_md_table(["blocks"] + strategies, rows))

    sections.append("## Fig. 15 — compute/sync split at 30 blocks")
    rows = []
    for algo, per_strategy in fig15_results.items():
        for strat, b in per_strategy.items():
            rows.append([algo, strat, f"{b.compute_pct:.1f}%", f"{b.sync_pct:.1f}%"])
    sections.append(_md_table(["algorithm", "strategy", "compute", "sync"], rows))

    sections.append("## Headline numbers")
    sections.append(
        _md_table(
            ["quantity", "measured"],
            [[k, f"{v:.2f}"] for k, v in headline_results.items()],
        )
    )
    return "\n\n".join(sections) + "\n"


def generate_report(
    path: Union[str, Path],
    config: Optional[DeviceConfig] = None,
    micro_rounds: int = 200,
    fig11_blocks=None,
) -> Path:
    """Run the full experiment battery and write the Markdown report.

    At the calibrated sizes this takes a few minutes of real time; tests
    use reduced ``micro_rounds``/``fig11_blocks`` and patched algorithm
    sizes.
    """
    cfg = config or get_preset("gtx280")
    table1_results = experiments.table1(cfg)
    fig11_sweep = experiments.fig11(cfg, rounds=micro_rounds, blocks=fig11_blocks)
    fig15_results = experiments.fig15(cfg)
    headline_results = experiments.headline(cfg, micro_rounds=micro_rounds)
    checks = check_table1(results=table1_results) + check_headline(
        results=headline_results
    )
    text = render_markdown(
        table1_results,
        fig11_sweep,
        fig15_results,
        headline_results,
        checks,
        device_name=cfg.name,
        micro_rounds=micro_rounds,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
