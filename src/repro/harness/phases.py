"""Phase accounting — the paper's §7.3 measurement methodology.

"the synchronization time is the difference between the total kernel
execution time and the computation time, which is obtained by running an
implementation ... with the synchronization function __gpu_sync()
removed.  For the implementation with the CPU [synchronization] method,
we assume its computation time is the same as the others."

:func:`compute_only` is the removed-barrier run (the ``null`` strategy);
:func:`sync_time_ns` and :func:`breakdown` derive synchronization time
and the Fig. 15 percentage split from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import RoundAlgorithm
from repro.errors import ExperimentError
from repro.gpu.config import DeviceConfig
from repro.harness.runner import RunResult, run

__all__ = ["Breakdown", "breakdown", "compute_only", "sync_time_ns"]


def compute_only(
    algorithm: RoundAlgorithm,
    num_blocks: int,
    threads_per_block: Optional[int] = None,
    config: Optional[DeviceConfig] = None,
) -> RunResult:
    """Run the algorithm with the barrier removed (timing only).

    Verification is disabled — without barriers the results are
    unspecified; only the clock matters here.
    """
    return run(
        algorithm,
        "null",
        num_blocks,
        threads_per_block=threads_per_block,
        config=config,
        verify=False,
        monitor_races=False,
    )


def sync_time_ns(result: RunResult, compute_only_result: RunResult) -> int:
    """Total synchronization time: measured total − compute-only total."""
    if result.algorithm != compute_only_result.algorithm:
        raise ExperimentError(
            f"mismatched runs: {result.algorithm} vs "
            f"{compute_only_result.algorithm}"
        )
    if result.num_blocks != compute_only_result.num_blocks:
        raise ExperimentError(
            "sync_time_ns needs both runs at the same block count "
            f"({result.num_blocks} vs {compute_only_result.num_blocks})"
        )
    return result.total_ns - compute_only_result.total_ns


@dataclass(frozen=True)
class Breakdown:
    """The Fig. 15 split of one run into computation vs synchronization."""

    strategy: str
    total_ns: int
    compute_ns: int
    sync_ns: int

    @property
    def compute_pct(self) -> float:
        """Computation share of the total, in percent."""
        return 100.0 * self.compute_ns / self.total_ns if self.total_ns else 0.0

    @property
    def sync_pct(self) -> float:
        """Synchronization share of the total, in percent."""
        return 100.0 * self.sync_ns / self.total_ns if self.total_ns else 0.0


def breakdown(result: RunResult, compute_only_result: RunResult) -> Breakdown:
    """Split one run's total into computation and synchronization."""
    sync = sync_time_ns(result, compute_only_result)
    return Breakdown(
        strategy=result.strategy,
        total_ns=result.total_ns,
        compute_ns=result.total_ns - sync,
        sync_ns=sync,
    )
