"""Trace analytics: the paper's barrier time-composition diagrams, measured.

Figures 7 and 10 of the paper are *conceptual* timing diagrams — how the
GPU simple and lock-free barriers decompose into atomic additions,
checking and intra-block synchronization.  The device records a span for
every atomic, spin observation and ``__syncthreads()``, so here the
decomposition is *measured*:

* :func:`barrier_composition` aggregates one run's spans into per-round,
  per-block averages for each primitive;
* :func:`composition_study` runs the micro-benchmark under each device
  barrier and tabulates the decomposition (the Fig. 7/10 reproduction —
  ``python -m repro.harness composition``).

A note on reading the numbers: spans are summed *per block* and averaged
over blocks and rounds, so the atomic figure for GPU simple reflects
each block's queue wait + service (the serialization that Eq. 6 counts
once, globally) — blocks arriving later wait longer, and the average
sits near ``(N/2)·t_a``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.algorithms.microbench import MeanMicrobench
from repro.errors import ExperimentError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.harness.runner import RunResult, run
from repro.simcore.trace import Trace

__all__ = ["barrier_composition", "composition_study", "BARRIER_PRIMITIVES"]

#: the primitive phases recorded by the BlockCtx helpers.
BARRIER_PRIMITIVES = ("atomic", "spin", "syncthreads", "sync-overhead")


def barrier_composition(result: RunResult) -> Dict[str, float]:
    """Average per-block, per-round time in each barrier primitive (ns).

    Requires a result obtained with ``keep_device=True`` (the spans live
    on the device trace).
    """
    if result.device is None:
        raise ExperimentError(
            "barrier_composition needs run(..., keep_device=True)"
        )
    trace: Trace = result.device.trace
    denominator = result.num_blocks * result.rounds
    out: Dict[str, float] = {}
    for phase in BARRIER_PRIMITIVES:
        out[phase] = trace.total(phase) / denominator
    out["total-sync"] = trace.total("sync") / denominator
    return out


def composition_study(
    strategies: Sequence[str] = (
        "gpu-simple",
        "gpu-tree-2",
        "gpu-lockfree",
    ),
    num_blocks: int = 30,
    rounds: int = 20,
    config: Optional[DeviceConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Figs. 7/10 as data: barrier decomposition per strategy.

    Returns ``{strategy: {primitive: avg ns per block per round}}``.
    """
    cfg = config or get_preset("gtx280")
    micro = MeanMicrobench(rounds=rounds, num_blocks_hint=num_blocks)
    out: Dict[str, Dict[str, float]] = {}
    for strategy in strategies:
        result = run(micro, strategy, num_blocks, config=cfg, keep_device=True)
        out[strategy] = barrier_composition(result)
    return out


def render_composition(study: Dict[str, Dict[str, float]]) -> str:
    """Plain-text table of a :func:`composition_study` result."""
    from repro.harness.report import format_table

    headers = ["strategy"] + [p for p in BARRIER_PRIMITIVES] + ["total sync"]
    rows = []
    for strategy, comp in study.items():
        rows.append(
            [strategy]
            + [f"{comp[p] / 1e3:.2f}" for p in BARRIER_PRIMITIVES]
            + [f"{comp['total-sync'] / 1e3:.2f}"]
        )
    return format_table(
        headers,
        rows,
        title=(
            "Barrier time composition, µs per block per round "
            "(paper Figs. 7/10, measured)"
        ),
    )
