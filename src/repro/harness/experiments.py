"""Experiment drivers: one function per paper table/figure (DESIGN.md §4).

Every driver returns a plain, documented data structure so the report
renderer, the pytest benches and the shape-assertion tests all consume
the same numbers.  Problem sizes default to the calibrated ones
(:mod:`repro.algorithms.costs`); block sweeps default to a step of 3 to
keep pure-Python simulation time reasonable (the paper sweeps 9–30 in
steps of 1; pass ``step=1`` for the full grid).

Every driver takes an ``executor=`` (:class:`repro.parallel.Executor`):
sweep cells are independent seeded simulations, so they shard across
worker processes and memoize in the content-addressed result cache,
with output bit-identical to the serial run (docs/parallel.md).

Every driver also takes a ``resume=`` run-id: a journaled sweep that was
interrupted (:class:`~repro.errors.InterruptedSweepError`) replays its
completed cells from the write-ahead journal and executes only the
remainder — the resumed result is bit-identical to an uninterrupted run
(docs/resilience.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.algorithms import (
    BitonicSort,
    FFT,
    MeanMicrobench,
    RoundAlgorithm,
    SmithWaterman,
)
from repro.errors import ExperimentError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.harness.phases import Breakdown, compute_only, sync_time_ns
from repro.harness.runner import run
from repro.model.barrier_costs import lockfree_cost, simple_cost, tree_cost
from repro.parallel import Executor
from repro.serialization import (
    device_config_to_dict,
    dump_result,
    parse_result,
    require,
)

__all__ = [
    "SweepResult",
    "ALGORITHM_FACTORIES",
    "GPU_STRATEGIES",
    "ALL_STRATEGIES",
    "make_algorithm",
    "table1",
    "fig11",
    "algorithm_sweep",
    "fig13",
    "fig14",
    "fig15",
    "headline",
    "model_validation",
]

#: strategies compared in the algorithm studies (§7.2: CPU explicit is
#: dropped after the micro-benchmark because it is never competitive).
GPU_STRATEGIES = ("gpu-simple", "gpu-tree-2", "gpu-tree-3", "gpu-lockfree")
ALL_STRATEGIES = ("cpu-implicit",) + GPU_STRATEGIES

#: default constructors at the calibrated problem sizes.
ALGORITHM_FACTORIES: Dict[str, Callable[[], RoundAlgorithm]] = {
    "fft": lambda: FFT(n=2**15),
    "swat": lambda: SmithWaterman(1024, 1024),
    "bitonic": lambda: BitonicSort(n=2**14),
}


def make_algorithm(name: str) -> RoundAlgorithm:
    """Instantiate one of the paper's three workloads at default size."""
    try:
        return ALGORITHM_FACTORIES[name]()
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; known: "
            f"{', '.join(sorted(ALGORITHM_FACTORIES))}"
        ) from None


def _algorithm_spec(name: str) -> Dict[str, Any]:
    """Validate a workload name and return its worker spec."""
    if name not in ALGORITHM_FACTORIES:
        raise ExperimentError(
            f"unknown algorithm {name!r}; known: "
            f"{', '.join(sorted(ALGORITHM_FACTORIES))}"
        )
    return {"name": name}


def _cell(
    algorithm: Dict[str, Any],
    strategy: str,
    num_blocks: int,
    device: Dict[str, Any],
) -> Dict[str, Any]:
    """One ``run-total`` worker payload (``strategy="null"`` = baseline)."""
    return {
        "algorithm": algorithm,
        "strategy": strategy,
        "num_blocks": num_blocks,
        "device": device,
    }


def _totals(
    executor: Optional[Executor],
    payloads: List[Dict[str, Any]],
    resume: Optional[str] = None,
) -> List[int]:
    """Run every cell through the (possibly parallel, cached) executor.

    With ``executor=None`` a throwaway inline executor runs the same
    worker functions serially in-process — the reference path parallel
    runs must reproduce bit-for-bit.  ``resume`` replays a journaled
    earlier invocation of the same batch (see
    :meth:`repro.parallel.Executor.map`); the batch's provenance stays
    readable on the executor's ``last_batch`` until the next call.
    """
    ex = executor if executor is not None else Executor(jobs=1)
    totals = ex.map("run-total", payloads, resume=resume)
    _totals_last_batch[0] = ex.last_batch
    return totals


#: provenance of the most recent :func:`_totals` batch; drivers stamp it
#: onto their sweep right after the map call returns.
_totals_last_batch: List[Any] = [None]


def _stamp(sweep: "SweepResult") -> "SweepResult":
    """Copy the last batch's partial-failure provenance onto a sweep."""
    stats = _totals_last_batch[0]
    if stats is not None:
        sweep.retries = stats.retries
        sweep.quarantined = list(stats.quarantined)
        sweep.resumed_from = stats.resumed_from
    return sweep


@dataclass
class SweepResult:
    """A block-count sweep of one algorithm over several strategies."""

    algorithm: str
    blocks: List[int]
    #: strategy → total kernel time (ns) per block count.
    totals: Dict[str, List[int]] = field(default_factory=dict)
    #: compute-only (null strategy) totals per block count.
    nulls: List[int] = field(default_factory=list)
    # -- partial-failure provenance (supervised executor batches) --
    #: process-level re-executions the supervisor forced (timeouts,
    #: worker deaths) while producing these totals.
    retries: int = 0
    #: payload indices quarantined as poison (empty on a clean sweep;
    #: only possible under ``on_poison="mark"`` executors).
    quarantined: List[int] = field(default_factory=list)
    #: run-id this sweep was resumed from, if any.  In-memory only:
    #: excluded from serialization and equality so a resumed sweep stays
    #: bit-identical to an uninterrupted one.
    resumed_from: Optional[str] = field(default=None, compare=False)

    def sync_series(self, strategy: str) -> List[int]:
        """Per-block-count synchronization time (total − compute-only)."""
        return [t - n for t, n in zip(self.totals[strategy], self.nulls)]

    def best(self, strategy: str) -> int:
        """The strategy's best (smallest) total over the sweep."""
        return min(self.totals[strategy])

    def to_csv(self, sync: bool = False) -> str:
        """Render the sweep as CSV (totals, or sync times with ``sync``).

        Columns: ``blocks`` then one column per strategy, values in ns —
        ready for pandas/gnuplot replotting of Figs. 11/13/14.
        """
        strategies = list(self.totals)
        lines = ["blocks," + ",".join(strategies)]
        for i, n in enumerate(self.blocks):
            values = [
                str(self.sync_series(s)[i] if sync else self.totals[s][i])
                for s in strategies
            ]
            lines.append(f"{n}," + ",".join(values))
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """Serialize via the shared versioned envelope (docs/parallel.md).

        Deterministic output: equal sweeps render byte-identical text,
        which is how the benches prove parallel == serial.
        """
        return dump_result(
            "sweep",
            {
                "algorithm": self.algorithm,
                "blocks": list(self.blocks),
                "nulls": list(self.nulls),
                "totals": {k: list(v) for k, v in self.totals.items()},
                "retries": self.retries,
                "quarantined": list(self.quarantined),
            },
        )

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "SweepResult":
        """Rebuild a sweep from :meth:`to_json` output.

        Accepts schema versions 1 (the pre-protocol store format), 2
        (pre-provenance envelope; ``retries``/``quarantined`` default to
        a clean sweep) and 3.  Every failure is a typed
        :class:`~repro.errors.ExperimentError` naming ``source``.
        """
        payload = parse_result(
            text, kind="sweep", source=source, accept=(1, 2, 3)
        )
        blocks = list(require(payload, "blocks", source))
        nulls = list(require(payload, "nulls", source))
        totals = {
            k: list(v) for k, v in require(payload, "totals", source).items()
        }
        for name, series in totals.items():
            if len(series) != len(blocks):
                raise ExperimentError(
                    f"{source}: series {name!r} length {len(series)} != "
                    f"{len(blocks)} block counts"
                )
        if len(nulls) != len(blocks):
            raise ExperimentError(f"{source}: nulls length mismatch")
        return cls(
            algorithm=require(payload, "algorithm", source),
            blocks=blocks,
            totals=totals,
            nulls=nulls,
            retries=int(payload.get("retries", 0)),
            quarantined=list(payload.get("quarantined", [])),
        )


# ---------------------------------------------------------------------------
# Table 1 — % of time spent on inter-block communication (CPU implicit)
# ---------------------------------------------------------------------------

def table1(
    config: Optional[DeviceConfig] = None,
    num_blocks: int = 30,
    algorithms: Sequence[str] = ("fft", "swat", "bitonic"),
    executor: Optional[Executor] = None,
    resume: Optional[str] = None,
) -> Dict[str, Breakdown]:
    """Reproduce Table 1: sync share under CPU implicit synchronization.

    Paper: FFT 19.6 %, SWat 49.7 %, bitonic sort 59.6 %.
    """
    cfg = config or get_preset("gtx280")
    device = device_config_to_dict(cfg)
    payloads: List[Dict[str, Any]] = []
    for name in algorithms:
        spec = _algorithm_spec(name)
        payloads.append(_cell(spec, "null", num_blocks, device))
        payloads.append(_cell(spec, "cpu-implicit", num_blocks, device))
    totals = _totals(executor, payloads, resume)
    out: Dict[str, Breakdown] = {}
    for i, name in enumerate(algorithms):
        null, total = totals[2 * i], totals[2 * i + 1]
        out[name] = Breakdown(
            strategy="cpu-implicit",
            total_ns=total,
            compute_ns=null,
            sync_ns=total - null,
        )
    return out


# ---------------------------------------------------------------------------
# Fig. 11 — micro-benchmark execution time vs number of blocks
# ---------------------------------------------------------------------------

def fig11(
    config: Optional[DeviceConfig] = None,
    rounds: int = 200,
    blocks: Optional[Sequence[int]] = None,
    strategies: Sequence[str] = ("cpu-explicit",) + ALL_STRATEGIES,
    executor: Optional[Executor] = None,
    resume: Optional[str] = None,
) -> SweepResult:
    """Reproduce Fig. 11: micro-benchmark total time per strategy per N.

    The paper uses 10 000 rounds; we default to 200 (every reported
    quantity is per-round or a ratio, so only absolute magnitudes shift —
    DESIGN.md §2).
    """
    cfg = config or get_preset("gtx280")
    xs = list(blocks) if blocks is not None else list(range(1, cfg.num_sms + 1))
    device = device_config_to_dict(cfg)
    spec = {"name": "micro", "rounds": rounds, "num_blocks_hint": max(xs)}
    payloads = [_cell(spec, "null", n, device) for n in xs]
    for strat in strategies:
        payloads.extend(_cell(spec, strat, n, device) for n in xs)
    totals = _totals(executor, payloads, resume)
    sweep = SweepResult(algorithm="micro", blocks=xs)
    sweep.nulls = totals[: len(xs)]
    for j, strat in enumerate(strategies):
        start = len(xs) * (j + 1)
        sweep.totals[strat] = totals[start : start + len(xs)]
    return _stamp(sweep)


# ---------------------------------------------------------------------------
# Figs. 13 & 14 — per-algorithm kernel time and sync time vs blocks
# ---------------------------------------------------------------------------

def algorithm_sweep(
    algorithm_name: str,
    config: Optional[DeviceConfig] = None,
    blocks: Optional[Sequence[int]] = None,
    step: int = 3,
    strategies: Sequence[str] = ALL_STRATEGIES,
    executor: Optional[Executor] = None,
    resume: Optional[str] = None,
) -> SweepResult:
    """Sweep one algorithm over block counts for Figs. 13/14.

    Paper sweeps N = 9..30; the default here is the same range with
    ``step=3`` for tractability.
    """
    cfg = config or get_preset("gtx280")
    xs = list(blocks) if blocks is not None else list(range(9, cfg.num_sms + 1, step))
    if not xs:
        raise ExperimentError("empty block sweep")
    spec = _algorithm_spec(algorithm_name)
    device = device_config_to_dict(cfg)
    payloads = [_cell(spec, "null", n, device) for n in xs]
    for strat in strategies:
        payloads.extend(_cell(spec, strat, n, device) for n in xs)
    totals = _totals(executor, payloads, resume)
    sweep = SweepResult(algorithm=algorithm_name, blocks=xs)
    sweep.nulls = totals[: len(xs)]
    for j, strat in enumerate(strategies):
        start = len(xs) * (j + 1)
        sweep.totals[strat] = totals[start : start + len(xs)]
    return _stamp(sweep)


def fig13(
    algorithm_name: str,
    config: Optional[DeviceConfig] = None,
    blocks: Optional[Sequence[int]] = None,
    step: int = 3,
    executor: Optional[Executor] = None,
    resume: Optional[str] = None,
) -> SweepResult:
    """Fig. 13(a/b/c): kernel execution time vs number of blocks."""
    return algorithm_sweep(
        algorithm_name, config, blocks, step, executor=executor, resume=resume
    )


def fig14(
    algorithm_name: str,
    config: Optional[DeviceConfig] = None,
    blocks: Optional[Sequence[int]] = None,
    step: int = 3,
    executor: Optional[Executor] = None,
    resume: Optional[str] = None,
) -> SweepResult:
    """Fig. 14(a/b/c): synchronization time vs number of blocks.

    Same sweep as Fig. 13; read the sync series via
    :meth:`SweepResult.sync_series`.
    """
    return algorithm_sweep(
        algorithm_name, config, blocks, step, executor=executor, resume=resume
    )


# ---------------------------------------------------------------------------
# Fig. 15 — computation/synchronization percentage breakdown
# ---------------------------------------------------------------------------

def fig15(
    config: Optional[DeviceConfig] = None,
    num_blocks: int = 30,
    algorithms: Sequence[str] = ("fft", "swat", "bitonic"),
    strategies: Sequence[str] = ALL_STRATEGIES,
    executor: Optional[Executor] = None,
    resume: Optional[str] = None,
) -> Dict[str, Dict[str, Breakdown]]:
    """Fig. 15: per-algorithm, per-strategy compute/sync percentages at
    each algorithm's best configuration (30 blocks)."""
    cfg = config or get_preset("gtx280")
    device = device_config_to_dict(cfg)
    payloads: List[Dict[str, Any]] = []
    for name in algorithms:
        spec = _algorithm_spec(name)
        payloads.append(_cell(spec, "null", num_blocks, device))
        payloads.extend(
            _cell(spec, strat, num_blocks, device) for strat in strategies
        )
    totals = _totals(executor, payloads, resume)
    stride = 1 + len(strategies)
    out: Dict[str, Dict[str, Breakdown]] = {}
    for i, name in enumerate(algorithms):
        null = totals[i * stride]
        per_strategy: Dict[str, Breakdown] = {}
        for j, strat in enumerate(strategies):
            total = totals[i * stride + 1 + j]
            per_strategy[strat] = Breakdown(
                strategy=strat,
                total_ns=total,
                compute_ns=null,
                sync_ns=total - null,
            )
        out[name] = per_strategy
    return out


# ---------------------------------------------------------------------------
# Headline numbers (abstract / §7.2)
# ---------------------------------------------------------------------------

def headline(
    config: Optional[DeviceConfig] = None,
    num_blocks: int = 30,
    micro_rounds: int = 200,
    executor: Optional[Executor] = None,
    resume: Optional[str] = None,
) -> Dict[str, float]:
    """The abstract's numbers.

    * micro-benchmark: lock-free sync is 7.8× faster than CPU explicit
      and 3.7× faster than CPU implicit (per-round sync time);
    * kernel time improves by 8 % (FFT), 24 % (SWat), 39 % (bitonic)
      with lock-free vs CPU implicit.
    """
    cfg = config or get_preset("gtx280")
    device = device_config_to_dict(cfg)
    micro_spec = {
        "name": "micro",
        "rounds": micro_rounds,
        "num_blocks_hint": num_blocks,
    }
    micro_strats = ("cpu-explicit", "cpu-implicit", "gpu-lockfree")
    kernels = ("fft", "swat", "bitonic")
    payloads = [_cell(micro_spec, "null", num_blocks, device)]
    payloads.extend(
        _cell(micro_spec, strat, num_blocks, device) for strat in micro_strats
    )
    for name in kernels:
        spec = _algorithm_spec(name)
        payloads.append(_cell(spec, "cpu-implicit", num_blocks, device))
        payloads.append(_cell(spec, "gpu-lockfree", num_blocks, device))
    totals = _totals(executor, payloads, resume)
    null = totals[0]
    sync = {
        strat: totals[1 + i] - null for i, strat in enumerate(micro_strats)
    }
    out: Dict[str, float] = {
        "micro_lockfree_vs_explicit": sync["cpu-explicit"] / sync["gpu-lockfree"],
        "micro_lockfree_vs_implicit": sync["cpu-implicit"] / sync["gpu-lockfree"],
    }
    for i, name in enumerate(kernels):
        base = totals[1 + len(micro_strats) + 2 * i]
        fast = totals[1 + len(micro_strats) + 2 * i + 1]
        out[f"{name}_improvement_pct"] = 100.0 * (base - fast) / base
    return out


# ---------------------------------------------------------------------------
# Model validation (§5.4: "matches the time consumption model well")
# ---------------------------------------------------------------------------

def model_validation(
    config: Optional[DeviceConfig] = None,
    blocks: Optional[Sequence[int]] = None,
    rounds: int = 50,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Measured vs predicted per-round barrier cost (Eqs. 6, 7, 9).

    Returns ``{strategy: {N: {"measured": ns, "predicted": ns}}}``.
    Measured cost is ``(total − compute-only) / rounds`` on the
    micro-benchmark; predictions come from
    :mod:`repro.model.barrier_costs`.  The model assumes all blocks hit
    the barrier simultaneously, so measurements may fall slightly below
    predictions for unbalanced trees.
    """
    cfg = config or get_preset("gtx280")
    xs = list(blocks) if blocks is not None else [1, 2, 4, 8, 16, 24, 30]
    timings = cfg.timings
    predictors = {
        "gpu-simple": lambda n: simple_cost(n, timings),
        "gpu-tree-2": lambda n: tree_cost(n, 2, timings),
        "gpu-tree-3": lambda n: tree_cost(n, 3, timings),
        "gpu-lockfree": lambda n: lockfree_cost(n, timings),
    }
    micro = MeanMicrobench(rounds=rounds, num_blocks_hint=max(xs))
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for strat, predict in predictors.items():
        per_n: Dict[int, Dict[str, float]] = {}
        for n in xs:
            null = compute_only(micro, n, config=cfg)
            result = run(micro, strat, n, config=cfg)
            measured = sync_time_ns(result, null) / rounds
            per_n[n] = {"measured": measured, "predicted": float(predict(n))}
        out[strat] = per_n
    return out
