"""Empirical strategy auto-tuning.

:mod:`repro.model.advisor` predicts the best barrier from the analytic
models alone.  This module *measures* instead: it probes each candidate
barrier's per-round cost with a tiny zero-compute kernel at the target
block count (seconds of simulated time, microseconds of real time), then
combines the probed costs with the algorithm's own per-round compute
profile to predict the total — the measure-a-little, predict-the-rest
pattern of practical auto-tuners.

Hybrid by design: probing captures effects the closed-form models miss
(unbalanced tree partitions, arrival pipelining) while staying thousands
of times cheaper than running the full workload under every strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RoundAlgorithm
from repro.algorithms.microbench import MeanMicrobench
from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.harness.phases import compute_only, sync_time_ns
from repro.harness.runner import run

__all__ = ["TuneResult", "autotune", "probe_barrier_cost"]

DEFAULT_CANDIDATES = (
    "cpu-implicit",
    "gpu-simple",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
)


def probe_barrier_cost(
    strategy: str,
    num_blocks: int,
    config: Optional[DeviceConfig] = None,
    probe_rounds: int = 8,
) -> float:
    """Measure one strategy's per-round barrier cost at ``num_blocks``.

    Uses the §7.3 methodology on a minimal weak-scaled kernel: probe
    total minus compute-only total, divided by rounds.
    """
    if probe_rounds < 1:
        raise ConfigError(f"probe_rounds must be >= 1, got {probe_rounds}")
    cfg = config or get_preset("gtx280")
    micro = MeanMicrobench(
        rounds=probe_rounds, num_blocks_hint=num_blocks, threads_per_block=64
    )
    null = compute_only(micro, num_blocks, config=cfg)
    result = run(micro, strategy, num_blocks, config=cfg)
    return sync_time_ns(result, null) / probe_rounds


@dataclass(frozen=True)
class TuneResult:
    """Outcome of :func:`autotune`."""

    strategy: str  #: the winning candidate
    predicted_ns: float  #: its predicted total time
    #: candidate → (probed per-round barrier cost, predicted total),
    #: every candidate included.
    candidates: Dict[str, Tuple[float, float]]

    def ranking(self) -> List[Tuple[str, float]]:
        """Candidates by predicted total time, fastest first."""
        return sorted(
            ((name, total) for name, (_cost, total) in self.candidates.items()),
            key=lambda kv: kv[1],
        )


def autotune(
    algorithm: RoundAlgorithm,
    num_blocks: int,
    config: Optional[DeviceConfig] = None,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    probe_rounds: int = 8,
) -> TuneResult:
    """Choose a barrier for ``algorithm`` at ``num_blocks`` empirically.

    Per-round compute is taken as the slowest block's cost (the barrier
    releases only when the last block arrives); the prediction is
    ``Σ_r (compute_r + probed_barrier)`` plus the launch/boundary terms
    each mode pays (Eqs. 4/5).
    """
    if not candidates:
        raise ConfigError("autotune needs at least one candidate")
    cfg = config or get_preset("gtx280")
    rounds = algorithm.num_rounds()
    compute_total = sum(
        max(
            algorithm.round_cost(r, b, num_blocks) for b in range(num_blocks)
        )
        for r in range(rounds)
    )
    t = cfg.timings
    scored: Dict[str, Tuple[float, float]] = {}
    for name in candidates:
        cost = probe_barrier_cost(name, num_blocks, cfg, probe_rounds)
        if name.startswith("cpu"):
            # Per-round kernel boundary is *inside* the probed cost; only
            # the first launch is extra (Eq. 4 / Eq. 3 shape).
            total = t.host_launch_ns + compute_total + rounds * cost
        else:
            total = (
                t.host_launch_ns
                + t.cpu_implicit_barrier_ns  # the single kernel's setup+teardown
                + compute_total
                + rounds * cost
            )
        scored[name] = (cost, total)
    best = min(scored.items(), key=lambda kv: kv[1][1])
    return TuneResult(strategy=best[0], predicted_ns=best[1][1], candidates=scored)
