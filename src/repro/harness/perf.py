"""Engine throughput workloads and the ``BENCH_*.json`` protocol.

The fast-path engine (:mod:`repro.simcore.fastpath`) is sold on one
number: events simulated per second of host wall-clock.  This module
owns everything needed to produce and consume that number honestly:

* canonical engine-level workloads (:data:`ENGINE_WORKLOADS`) that pin
  down the shapes the two engines differ on — pure ``Delay`` chains
  (epoch jumping), per-round barrier storms (calendar-queue bucketing)
  and the paper's spin wall, many parked spinners polled by a trickle of
  stores (flag indexing);
* :func:`measure_workload` / :func:`compare_modes`, which time one
  workload under an engine mode and refuse to report a comparison whose
  observables (event count, final virtual clock) diverge between modes
  — a benchmark of two engines that did different work is meaningless;
* :func:`render_bench` / :func:`load_bench`, the schema-versioned JSON
  envelope (shared with every other batch result — see
  :mod:`repro.serialization`) behind ``benchmarks/out/BENCH_engine.json``
  and ``BENCH_fig11.json``, which CI's ``engine-equiv`` job reads to
  fail the build when the fast engine stops being fast.

Wall-clock numbers vary run to run; the JSON layout does not.  Keys are
sorted, floats are rounded to fixed precision, and everything else
(events, clocks, parameters) is exactly reproducible.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.serialization import dump_result, parse_result, require
from repro.simcore import (
    Delay,
    Fire,
    Signal,
    WaitSpec,
    WaitUntil,
    make_engine,
)

__all__ = [
    "BENCH_KIND",
    "ENGINE_WORKLOADS",
    "compare_micro",
    "compare_modes",
    "load_bench",
    "measure_micro",
    "measure_workload",
    "render_bench",
    "workload_barrier_storm",
    "workload_pingpong",
    "workload_spin_wall",
]

#: ``kind`` tag of the bench envelope (``{"schema": .., "kind": "bench"}``).
BENCH_KIND = "bench"

#: a workload is a builder: given a fresh engine, spawn its processes.
WorkloadBuilder = Callable[[Any], None]


# ---------------------------------------------------------------------------
# Canonical engine workloads
# ---------------------------------------------------------------------------

def workload_pingpong(n_events: int = 100_000) -> WorkloadBuilder:
    """Pure ``Delay`` chain — isolates the epoch-jump/pump fast path."""

    def build(engine: Any) -> None:
        def proc():
            for _ in range(n_events):
                yield Delay(10)

        engine.spawn(proc(), "pingpong")

    return build


def workload_spin_wall(
    spinners: int = 200, stores: int = 2_000
) -> WorkloadBuilder:
    """The paper's shape: ``spinners`` processes parked on one mutex cell
    while ``stores`` increments trickle in.

    The reference engine re-evaluates every parked predicate on every
    store — O(spinners x stores) polls; the flag index answers each
    store with one cell read, so this is the headline fast-path win.
    """

    def build(engine: Any) -> None:
        data = np.zeros(1, dtype=np.int64)
        signal = Signal("mutex", source=data)

        def spinner() -> Any:
            yield WaitUntil(
                signal,
                lambda: bool(data[0] >= stores),
                f"mutex>={stores}",
                spec=WaitSpec(stores, lo=0),
            )
            yield Delay(5)

        def storer() -> Any:
            for _ in range(stores):
                yield Delay(3)
                data[0] += 1
                yield Fire(signal)

        for i in range(spinners):
            engine.spawn(spinner(), f"spin{i}")
        engine.spawn(storer(), "storer")

    return build


def workload_barrier_storm(
    blocks: int = 64, rounds: int = 100
) -> WorkloadBuilder:
    """gpu-simple's accumulating barrier at engine level: every process
    bumps the shared cell, fires, and spins for ``round * blocks`` —
    same-timestamp wake bursts that exercise the calendar-queue buckets.
    """

    def build(engine: Any) -> None:
        data = np.zeros(1, dtype=np.int64)
        signal = Signal("mutex", source=data)

        def block(i: int) -> Any:
            for r in range(1, rounds + 1):
                yield Delay(7 + i % 5)
                data[0] += 1
                yield Fire(signal)
                goal = r * blocks
                yield WaitUntil(
                    signal,
                    lambda g=goal: bool(data[0] >= g),
                    f"mutex>={goal}",
                    spec=WaitSpec(goal, lo=0),
                )

        for i in range(blocks):
            engine.spawn(block(i), f"blk{i}")

    return build


#: name -> (builder factory, kwargs) for the standard bench set.
ENGINE_WORKLOADS: Dict[str, WorkloadBuilder] = {
    "pingpong": workload_pingpong(),
    "barrier_storm": workload_barrier_storm(),
    "spin_wall": workload_spin_wall(),
}


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def measure_workload(
    build: WorkloadBuilder, mode: str, repeats: int = 3
) -> Dict[str, Any]:
    """Best-of-``repeats`` wall-clock for one workload under one engine.

    Returns ``events`` (dispatched), ``now_ns`` (final virtual clock),
    ``seconds`` and ``events_per_sec``.  Best-of — not mean — because
    the quantity of interest is the engine's cost, and every source of
    host noise (GC, scheduling) only ever adds time.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    best: Optional[float] = None
    events = now_ns = 0
    for _ in range(repeats):
        engine = make_engine(mode)
        build(engine)
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        events, now_ns = engine.events_dispatched, engine.now
        if events == 0:
            # The workload factories (workload_pingpong(...)) return the
            # builder; passing the factory itself spawns nothing and
            # would "measure" an empty engine.
            raise ExperimentError(
                "workload spawned no events - pass the builder "
                "(e.g. workload_pingpong()), not the factory"
            )
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return {
        "engine_mode": mode,
        "events": events,
        "now_ns": now_ns,
        "seconds": round(best, 6),
        "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
    }


def compare_modes(
    build: WorkloadBuilder,
    modes: Sequence[str] = ("reference", "fast"),
    repeats: int = 3,
) -> Dict[str, Any]:
    """Measure one workload under every mode and the fast/ref speedup.

    Refuses (typed :class:`~repro.errors.ExperimentError`) when the
    modes disagree on event count or final clock — a throughput
    comparison is only meaningful between engines that provably did the
    same work.
    """
    results = {mode: measure_workload(build, mode, repeats) for mode in modes}
    baseline = results[modes[0]]
    for mode in modes[1:]:
        other = results[mode]
        if (other["events"], other["now_ns"]) != (
            baseline["events"],
            baseline["now_ns"],
        ):
            raise ExperimentError(
                f"engine modes diverged on the bench workload: "
                f"{modes[0]} dispatched {baseline['events']} events to "
                f"t={baseline['now_ns']}, {mode} dispatched "
                f"{other['events']} to t={other['now_ns']}"
            )
    out: Dict[str, Any] = dict(results)
    if "reference" in results and "fast" in results:
        ref_s = results["reference"]["seconds"]
        fast_s = results["fast"]["seconds"]
        out["speedup"] = round(ref_s / fast_s, 2) if fast_s > 0 else 0.0
    return out


def measure_micro(
    strategy: str,
    num_blocks: int,
    rounds: int,
    mode: str,
    repeats: int = 2,
) -> Dict[str, Any]:
    """Best-of-``repeats`` wall-clock for one Fig. 11 cell (the
    micro-benchmark under ``strategy``) through the full device stack.

    Same fields as :func:`measure_workload` plus the cell coordinates;
    ``events``/``now_ns`` come from the run's own device engine.
    """
    # Late imports: repro.harness re-exports this module, so importing
    # the runner at module load would cycle.
    from repro.algorithms import MeanMicrobench
    from repro.harness.runner import run as run_config

    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    best: Optional[float] = None
    events = now_ns = 0
    for _ in range(repeats):
        algorithm = MeanMicrobench(rounds=rounds)
        start = time.perf_counter()
        result = run_config(
            algorithm,
            strategy,
            num_blocks,
            keep_device=True,
            engine_mode=mode,
        )
        elapsed = time.perf_counter() - start
        assert result.device is not None
        events = result.device.engine.events_dispatched
        now_ns = result.device.engine.now
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return {
        "engine_mode": mode,
        "strategy": strategy,
        "num_blocks": num_blocks,
        "rounds": rounds,
        "events": events,
        "now_ns": now_ns,
        "seconds": round(best, 6),
        "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
    }


def compare_micro(
    strategy: str,
    num_blocks: int,
    rounds: int,
    modes: Sequence[str] = ("reference", "fast"),
    repeats: int = 2,
) -> Dict[str, Any]:
    """Per-mode :func:`measure_micro` plus the fast/ref speedup, with
    the same did-the-same-work refusal as :func:`compare_modes`."""
    results = {
        mode: measure_micro(strategy, num_blocks, rounds, mode, repeats)
        for mode in modes
    }
    baseline = results[modes[0]]
    for mode in modes[1:]:
        other = results[mode]
        if (other["events"], other["now_ns"]) != (
            baseline["events"],
            baseline["now_ns"],
        ):
            raise ExperimentError(
                f"engine modes diverged on {strategy}@{num_blocks}: "
                f"{modes[0]} dispatched {baseline['events']} events to "
                f"t={baseline['now_ns']}, {mode} dispatched "
                f"{other['events']} to t={other['now_ns']}"
            )
    out: Dict[str, Any] = dict(results)
    if "reference" in results and "fast" in results:
        ref_s = results["reference"]["seconds"]
        fast_s = results["fast"]["seconds"]
        out["speedup"] = round(ref_s / fast_s, 2) if fast_s > 0 else 0.0
    return out


# ---------------------------------------------------------------------------
# The BENCH_*.json envelope
# ---------------------------------------------------------------------------

def render_bench(name: str, workloads: Dict[str, Dict[str, Any]]) -> str:
    """Render a bench report as versioned, deterministic JSON.

    ``workloads`` maps workload name to a :func:`compare_modes` result
    (or any dict of per-mode measurements).
    """
    return dump_result(BENCH_KIND, {"bench": name, "workloads": workloads})


def load_bench(text: str, *, source: str = "<string>") -> Dict[str, Any]:
    """Parse :func:`render_bench` output; typed errors name ``source``."""
    payload = parse_result(text, kind=BENCH_KIND, source=source)
    require(payload, "bench", source)
    require(payload, "workloads", source)
    return payload
