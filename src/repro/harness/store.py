"""Persist experiment results as versioned JSON.

Sweeps take minutes at full fidelity; storing them lets reports, plots
and regression comparisons rerun instantly::

    sweep = experiments.fig11(rounds=200)
    save_sweep(sweep, "out/fig11.json")
    ...
    sweep = load_sweep("out/fig11.json")

The schema is versioned so stored files fail loudly instead of silently
misparsing after a format change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ExperimentError
from repro.harness.experiments import SweepResult

__all__ = ["SCHEMA_VERSION", "load_sweep", "save_sweep"]

SCHEMA_VERSION = 1


def save_sweep(sweep: SweepResult, path: Union[str, Path]) -> Path:
    """Serialize a sweep (totals + compute-only baselines) to JSON."""
    path = Path(path)
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "sweep",
        "algorithm": sweep.algorithm,
        "blocks": list(sweep.blocks),
        "totals": {k: list(v) for k, v in sweep.totals.items()},
        "nulls": list(sweep.nulls),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_sweep(path: Union[str, Path]) -> SweepResult:
    """Load a sweep previously written by :func:`save_sweep`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot read sweep from {path}: {exc}") from exc
    if payload.get("kind") != "sweep":
        raise ExperimentError(f"{path} does not contain a sweep")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ExperimentError(
            f"{path} has schema {payload.get('schema')!r}; this build reads "
            f"{SCHEMA_VERSION}"
        )
    blocks = list(payload["blocks"])
    nulls = list(payload["nulls"])
    totals = {k: list(v) for k, v in payload["totals"].items()}
    for name, series in totals.items():
        if len(series) != len(blocks):
            raise ExperimentError(
                f"{path}: series {name!r} length {len(series)} != "
                f"{len(blocks)} block counts"
            )
    if len(nulls) != len(blocks):
        raise ExperimentError(f"{path}: nulls length mismatch")
    return SweepResult(
        algorithm=payload["algorithm"],
        blocks=blocks,
        totals=totals,
        nulls=nulls,
    )
