"""Persist experiment results as versioned JSON.

Sweeps take minutes at full fidelity; storing them lets reports, plots
and regression comparisons rerun instantly::

    sweep = experiments.fig11(rounds=200)
    save_sweep(sweep, "out/fig11.json")
    ...
    sweep = load_sweep("out/fig11.json")

Every stored result uses the shared versioned envelope
(:mod:`repro.serialization`): ``{"schema": V, "kind": K, ...}``.  Files
fail loudly — a typed :class:`~repro.errors.ExperimentError` naming the
file and the found/expected versions — instead of silently misparsing
after a format change.  :func:`load_result` dispatches on ``kind`` for
any stored result (sweeps, chaos reports, sanitize reports).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ExperimentError
from repro.harness.experiments import SweepResult
from repro.serialization import RESULT_SCHEMA_VERSION

__all__ = ["SCHEMA_VERSION", "load_result", "load_sweep", "save_sweep"]

#: the envelope version this build writes (see repro.serialization).
SCHEMA_VERSION = RESULT_SCHEMA_VERSION


def _read(path: Path, what: str) -> str:
    try:
        return path.read_text()
    except OSError as exc:
        raise ExperimentError(f"cannot read {what} from {path}: {exc}") from exc


def save_sweep(sweep: SweepResult, path: Union[str, Path]) -> Path:
    """Serialize a sweep (totals + compute-only baselines) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(sweep.to_json())
    return path


def load_sweep(path: Union[str, Path]) -> SweepResult:
    """Load a sweep previously written by :func:`save_sweep`.

    Accepts both the current envelope and the legacy schema-1 store
    format (same body, earlier version stamp).
    """
    path = Path(path)
    return SweepResult.from_json(_read(path, "sweep"), source=str(path))


def load_result(path: Union[str, Path]):
    """Load any stored result, dispatching on the envelope's ``kind``.

    Returns a :class:`~repro.harness.experiments.SweepResult`,
    :class:`~repro.faults.chaos.ChaosReport`,
    :class:`~repro.sanitize.report.SanitizeReport` or
    :class:`~repro.staticcheck.report.LintReport` according to what the
    file says it holds.
    """
    path = Path(path)
    text = _read(path, "result")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"cannot read result from {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ExperimentError(f"{path} does not contain a result envelope")
    kind = payload.get("kind")
    if kind == "sweep":
        return SweepResult.from_json(text, source=str(path))
    if kind == "chaos-report":
        from repro.faults.chaos import ChaosReport

        return ChaosReport.from_json(text, source=str(path))
    if kind == "sanitize-report":
        from repro.sanitize.report import SanitizeReport

        return SanitizeReport.from_json(text, source=str(path))
    if kind == "lint-report":
        from repro.staticcheck.report import LintReport

        return LintReport.from_json(text, source=str(path))
    raise ExperimentError(
        f"{path} holds unknown result kind {kind!r}; expected one of: "
        "sweep, chaos-report, sanitize-report, lint-report"
    )
