"""Command-line entry point: ``python -m repro.harness <experiment>``.

Experiments (DESIGN.md §4):

* ``table1``   — % of time on inter-block communication (Table 1)
* ``fig11``    — micro-benchmark time vs blocks, all strategies (Fig. 11)
* ``fig13``    — kernel time vs blocks for fft/swat/bitonic (Fig. 13a–c)
* ``fig14``    — synchronization time vs blocks (Fig. 14a–c)
* ``fig15``    — compute/sync percentage breakdown (Fig. 15)
* ``headline`` — the abstract's speedup numbers
* ``models``   — barrier cost: measured vs Eqs. 6/7/9
* ``all``      — everything above (slow)

Extras beyond the paper:

* ``extensions`` — sense-reversal & dissemination barriers vs the
  paper's three, plus the prefix-scan workload
* ``trace``      — run one configuration and write a Chrome-tracing
  JSON of every block's compute/sync spans (``--out``)
* ``sanitize``   — replay a strategy (or ``--strategy all``) under
  fuzzed schedules and report barrier/race findings (docs/sanitizer.md);
  exits 1 when any finding survives
* ``chaos``      — run ``--plans`` seeded fault plans against a strategy
  (or ``--strategy all``) under the resilient runtime (docs/faults.md);
  exits 1 when any run's fate is not explained by its fault plan
* ``cache``      — inspect (``cache stats``, the default) or empty
  (``cache clear``) the content-addressed result cache
* ``lint``       — static barrier-protocol analysis over Python source
  (``lint [paths...]``, default ``src/repro examples``); supports
  ``--format text|json`` and ``--strict`` (docs/staticcheck.md); exits
  1 on error-severity findings (any finding under ``--strict``), 2 on
  unreadable/unparsable input.  ``--fix`` applies every
  machine-applicable repair in place (docs/staticcheck.md's repair
  catalog), re-linting after each patch to prove the findings are
  gone; ``--fix --diff`` prints the pending repairs as a unified diff
  without writing, and ``--fix --check`` writes nothing and exits 1
  when any repair is pending (the CI "fix-clean" gate)
* ``tune``       — cost-model-backed strategy advice (docs/tuning.md):
  predict every strategy's total time for a workload (``--rounds``,
  ``--compute-ns``, ``--blocks``) under ``--preset``'s calibrated,
  topology-resolved timings and emit an ``SC100 suboptimal-strategy``
  advisory when ``--strategy`` diverges from the recommendation;
  ``--measure`` validates the model against a measured sweep through
  the (cacheable) executor; exits 0 unless ``--strict`` and suboptimal
* ``serve``      — run the crash-safe sweep service: an HTTP job queue
  backed by a SQLite job table in WAL mode, with content-addressed
  dedup, lease-based worker recovery, and graceful SIGTERM drain
  (docs/service.md); ``--port``, ``--workers``, ``--lease-s``,
  ``--retry-budget``, ``--max-queued``, ``--service-dir``
* ``crashtest``  — run the crash matrix against the sweep service: fire
  every registered crash point (or ``--crash-points``/
  ``--crash-actions`` subsets) in a live victim worker on one simulated
  host while a second host stands by, then prove recovery — no job
  lost, none double-completed, lease takeover by the survivor, final
  envelope byte-identical to an undisturbed run (docs/crashtest.md);
  ``--budget-s`` bounds the wall clock, ``--skew-s`` sets the injected
  clock skew for the skewed-host configs; exits 1 unless every
  scenario passed

Device flag (docs/topology.md): ``--preset NAME`` runs the whole
battery against a registered device preset (default ``gtx280``, the
paper's card; see ``repro.gpu.presets``).  Block counts the paper pins
at 30 clamp to the preset's co-residency limit, and ``lint`` resolves
its SC002 occupancy limit through the preset's topology.

Execution flags (docs/parallel.md): ``--jobs N`` shards sweeps and
campaigns across N worker processes; ``--cache`` memoizes every run
keyed on its full configuration (``--cache-dir`` relocates the store).
Both are bit-identical to the serial, uncached run.

Resilience flags (docs/resilience.md): ``--journal`` write-ahead-journals
every completed cell under ``benchmarks/out/journal/<run-id>/``
(``--journal-dir`` relocates it); a journaled run interrupted by
Ctrl-C/SIGTERM exits 130 with a resume hint, and ``--resume [RUN_ID]``
replays the journal and executes only the remainder — bit-identical to
an uninterrupted run.  ``--resume`` with no run-id resumes whatever
journal matches each batch.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import InterruptedSweepError
from repro.faults.crashpoints import CRASH_ACTIONS
from repro.gpu.presets import get_preset, preset_names
from repro.harness import experiments, report

__all__ = ["main"]


def _persist_sweep(args: argparse.Namespace, sweep, stem: str) -> None:
    if args.save_sweeps is None:
        return
    from pathlib import Path

    from repro.harness.store import save_sweep

    out = Path(args.save_sweeps)
    out.mkdir(parents=True, exist_ok=True)
    save_sweep(sweep, out / f"{stem}.json")
    (out / f"{stem}.csv").write_text(sweep.to_csv())
    (out / f"{stem}_sync.csv").write_text(sweep.to_csv(sync=True))


def _per_batch_resume(resume: Optional[str], batches: int) -> Optional[str]:
    """An explicit run-id can only match one batch; multi-batch
    experiments resume each batch from its own journal (``"auto"``)."""
    if resume is None or batches == 1:
        return resume
    return "auto"


def _fig13_14(args: argparse.Namespace, sync: bool, executor=None, cfg=None) -> str:
    chunks: List[str] = []
    resume = _per_batch_resume(args.resume, len(args.algorithms))
    for algo in args.algorithms:
        sweep = experiments.algorithm_sweep(
            algo, config=cfg, step=args.step, executor=executor, resume=resume
        )
        fig = "Fig. 14" if sync else "Fig. 13"
        title = f"{fig} ({algo})"
        if sync:
            chunks.append(report.render_sweep_sync(sweep, title))
        else:
            chunks.append(report.render_sweep_totals(sweep, title))
        if args.plot:
            from repro.harness.plot import plot_sweep

            chunks.append(plot_sweep(sweep, sync=sync, title=title))
        _persist_sweep(args, sweep, f"{'fig14' if sync else 'fig13'}_{algo}")
    return "\n\n".join(chunks)


def _extensions_study(args: argparse.Namespace, cfg=None) -> str:
    """Compare all six device barriers on the micro-benchmark."""
    from repro.algorithms import MeanMicrobench
    from repro.harness.phases import compute_only, sync_time_ns
    from repro.harness.runner import run

    cfg = cfg or get_preset("gtx280")
    limit = cfg.topology.max_co_resident_blocks(cfg)
    rounds, blocks = min(args.rounds, 200), min(30, limit)
    micro = MeanMicrobench(rounds=rounds, num_blocks_hint=blocks)
    null = compute_only(micro, blocks, config=cfg)
    rows = []
    for strat in (
        "gpu-simple",
        "gpu-sense-reversal",
        "gpu-tree-2",
        "gpu-tree-3",
        "gpu-dissemination",
        "gpu-lockfree",
    ):
        result = run(micro, strat, blocks, config=cfg)
        rows.append(
            (strat, sync_time_ns(result, null) / rounds)
        )
    rows.sort(key=lambda r: r[1])
    return report.format_table(
        ["barrier", "per-round cost (µs)"],
        [[name, f"{cost/1e3:.2f}"] for name, cost in rows],
        title=f"Extension barriers — micro, {blocks} blocks",
    )


def _trace_one(args: argparse.Namespace, cfg=None) -> str:
    """Run one configuration and dump a Chrome-tracing JSON."""
    from repro.algorithms import FFT
    from repro.harness.runner import run
    from repro.harness.traceview import write_chrome_trace

    result = run(
        FFT(n=2**10), args.strategy, args.blocks, config=cfg, keep_device=True
    )
    path = write_chrome_trace(result.device.trace, args.out)
    return (
        f"ran fft (n=1024) under {args.strategy} on {args.blocks} blocks: "
        f"{result.total_ms:.3f} ms, verified={result.verified}\n"
        f"wrote {len(result.device.trace)} spans to {path} "
        "(open in chrome://tracing or ui.perfetto.dev)"
    )


#: strategies ``sanitize --strategy all`` sweeps (the paper's device
#: barriers plus the extension barriers).
SANITIZE_ALL = (
    "gpu-simple",
    "gpu-sense-reversal",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-dissemination",
    "gpu-lockfree",
)


def _sanitize(args: argparse.Namespace, executor=None, cfg=None) -> "tuple[str, bool]":
    """Run the sanitizer; returns (rendered report, any findings)."""
    from repro.errors import ConfigError
    from repro.sanitize import DEFAULT_SEED, sanitize_run

    strategies = SANITIZE_ALL if args.strategy == "all" else [args.strategy]
    seed = DEFAULT_SEED if args.seed is None else args.seed
    resume = _per_batch_resume(args.resume, len(strategies))
    chunks: List[str] = []
    dirty = False
    for strat in strategies:
        try:
            rep = sanitize_run(
                strategy=strat,
                num_blocks=args.blocks,
                config=cfg,
                seed=seed,
                schedules=args.schedules,
                executor=executor,
                resume=resume,
            )
        except (ConfigError, ValueError) as exc:
            raise SystemExit(f"sanitize: {exc}")
        chunks.append(rep.render())
        dirty = dirty or not rep.clean
    return "\n\n".join(chunks), dirty


#: strategies ``chaos --strategy all`` sweeps: every device barrier that
#: can degrade to the host-side fallback, plus the fallback itself so
#: the host path's fault handling is exercised directly.
CHAOS_ALL = (
    "gpu-simple",
    "gpu-tree-2",
    "gpu-lockfree",
    "cpu-implicit",
)


def _chaos(args: argparse.Namespace, executor=None, cfg=None) -> "tuple[str, bool]":
    """Run chaos campaigns; returns (rendered reports, any unexplained)."""
    from repro.errors import ConfigError
    from repro.faults import chaos_campaign
    from repro.sanitize import DEFAULT_SEED

    strategies = CHAOS_ALL if args.strategy == "all" else [args.strategy]
    seed = DEFAULT_SEED if args.seed is None else args.seed
    resume = _per_batch_resume(args.resume, len(strategies))
    chunks: List[str] = []
    dirty = False
    for strat in strategies:
        try:
            rep = chaos_campaign(
                strat,
                plans=args.plans,
                seed=seed,
                num_blocks=args.blocks,
                config=cfg,
                executor=executor,
                resume=resume,
            )
        except (ConfigError, ValueError) as exc:
            raise SystemExit(f"chaos: {exc}")
        chunks.append(rep.render())
        dirty = dirty or not rep.clean
    return "\n\n".join(chunks), dirty


def _lint(args: argparse.Namespace) -> "tuple[str, int]":
    """Run the static linter; returns (rendered output, exit code)."""
    from repro.staticcheck import LintError, lint_paths, sm_limit_for_preset

    if args.fix:
        return _lint_fix(args)
    paths = args.action or ["src/repro", "examples"]
    try:
        rep = lint_paths(paths, sm_limit=sm_limit_for_preset(args.preset))
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return "", 2
    text = rep.to_json() if args.format == "json" else rep.render()
    return text, rep.exit_code(strict=args.strict)


def _lint_fix(args: argparse.Namespace) -> "tuple[str, int]":
    """Run the auto-repair engine; returns (rendered output, exit code).

    ``--fix`` rewrites files in place; ``--diff`` and ``--check`` are
    dry runs (print the unified diff / gate on pending repairs).
    """
    from repro.staticcheck import LintError, sm_limit_for_preset
    from repro.staticcheck.repair import fix_paths

    paths = args.action or ["src/repro", "examples"]
    write = not (args.diff or args.check)
    try:
        results = fix_paths(
            paths, sm_limit=sm_limit_for_preset(args.preset), write=write
        )
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return "", 2
    changed = [r for r in results if r.changed]
    applied = sum(len(r.applied) for r in results)
    remaining = sum(len(r.remaining) for r in results)
    if args.format == "json":
        from repro.serialization import dump_result

        text = dump_result(
            "fix-report",
            {
                "files_checked": len(results),
                "files_changed": len(changed),
                "fixes_applied": applied,
                "findings_remaining": remaining,
                "written": write,
                "results": [
                    r.to_dict()
                    for r in results
                    if r.changed or r.remaining
                ],
            },
        )
    elif args.diff:
        text = "".join(r.diff() for r in changed) or (
            "lint --fix: nothing to repair"
        )
    else:
        verb = "fixed" if write else "would fix"
        lines = [
            f"lint --fix: {len(results)} file(s) checked, "
            f"{verb} {applied} finding(s) in {len(changed)} file(s), "
            f"{remaining} finding(s) not auto-fixable"
        ]
        for r in changed:
            lines.append(f"  {r.path}:")
            lines.extend(f"    {a.render()}" for a in r.applied)
        text = "\n".join(lines)
    if args.check and changed:
        return text, 1
    return text, 0


def _epilogue(want: str, started: float, cache=None) -> None:
    """Timing (and, when caching, hit-rate) summary on stderr."""
    if cache is not None:
        looked = cache.hits + cache.misses
        rate = 100.0 * cache.hits / looked if looked else 0.0
        print(
            f"\n[cache: {cache.hits} hit(s), {cache.misses} miss(es), "
            f"hit-rate {rate:.1f}%]",
            file=sys.stderr,
        )
    print(
        f"\n[{want} completed in {time.time() - started:.1f}s]",
        file=sys.stderr,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and run; exits 130 on a resumable interrupt."""
    try:
        return _main(argv)
    except InterruptedSweepError as exc:
        print(f"\ninterrupted: {exc}", file=sys.stderr)
        print(f"resume with: --resume {exc.run_id}", file=sys.stderr)
        return 130


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Reproduce the tables and figures of 'Inter-Block GPU "
            "Communication via Fast Barrier Synchronization' (IPDPS 2010) "
            "on the simulated GTX 280."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "fig11",
            "fig13",
            "fig14",
            "fig15",
            "headline",
            "models",
            "extensions",
            "composition",
            "trace",
            "report",
            "diff",
            "sanitize",
            "chaos",
            "cache",
            "lint",
            "tune",
            "serve",
            "crashtest",
            "all",
        ],
    )
    parser.add_argument(
        "action",
        nargs="*",
        default=None,
        help="cache: 'stats' (default) or 'clear'; "
        "lint: files/directories to analyze (default: src/repro examples)",
    )
    parser.add_argument(
        "--preset",
        default="gtx280",
        choices=preset_names(),
        help="device preset to run against (default gtx280, the paper's "
        "card); see repro.gpu.presets",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=200,
        help="micro-benchmark rounds (paper: 10000; default 200)",
    )
    parser.add_argument(
        "--step",
        type=int,
        default=3,
        help="block-count step for algorithm sweeps (paper: 1; default 3)",
    )
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["fft", "swat", "bitonic"],
        choices=["fft", "swat", "bitonic"],
        help="workloads for fig13/fig14",
    )
    parser.add_argument(
        "--strategy",
        default="gpu-lockfree",
        help="strategy for the trace/sanitize/chaos experiments "
        "(sanitize and chaos also accept 'all')",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=8,
        help="grid size for the trace/sanitize/chaos experiments",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="sanitize/chaos: base seed (default: the sanitizer's); "
        "failure reports print the derived seed to replay",
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=25,
        help="sanitize: fuzzed schedules per strategy (default 25)",
    )
    parser.add_argument(
        "--plans",
        type=int,
        default=50,
        help="chaos: seeded fault plans per strategy (default 50)",
    )
    parser.add_argument(
        "--out",
        default="trace.json",
        help="output path for the trace experiment",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render fig11/fig13/fig14 as ASCII charts as well as tables",
    )
    parser.add_argument(
        "--report-out",
        default="report.md",
        help="output path for the report experiment",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="diff: path to the blessed sweep JSON",
    )
    parser.add_argument(
        "--current",
        default=None,
        help="diff: path to the sweep JSON to compare against the baseline",
    )
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        help="diff: relative tolerance before a point counts as drift",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweeps and campaigns (default 1: "
        "serial, in-process); results are identical at any job count",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="memoize runs in the content-addressed result cache "
        "(--no-cache disables; see 'cache stats' / 'cache clear')",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default benchmarks/out/cache)",
    )
    parser.add_argument(
        "--journal",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="write-ahead journal every completed sweep cell so an "
        "interrupted run can be resumed (docs/resilience.md)",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="journal location (default benchmarks/out/journal)",
    )
    parser.add_argument(
        "--resume",
        nargs="?",
        const="auto",
        default=None,
        metavar="RUN_ID",
        help="replay a journaled run and execute only the remainder; "
        "pass the run-id an interrupted run printed, or no value to "
        "resume whatever journal matches each batch (implies --journal)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="lint: output format (json uses the shared schema-2 "
        "envelope, kind 'lint-report')",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="lint: exit 1 on any finding, not just error severity; "
        "tune: exit 1 when the configured strategy is suboptimal",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="lint: apply every machine-applicable repair in place, "
        "re-linting after each patch to prove the findings are gone "
        "(docs/staticcheck.md)",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="lint --fix: print pending repairs as a unified diff "
        "instead of writing files",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="lint --fix: write nothing and exit 1 when any repair is "
        "pending (the CI fix-clean gate)",
    )
    parser.add_argument(
        "--compute-ns",
        type=float,
        default=5_000.0,
        help="tune: per-round computation time of the workload in ns "
        "(default 5000)",
    )
    parser.add_argument(
        "--measure",
        action="store_true",
        help="tune: validate the model with a measured sweep — run the "
        "workload's microbenchmark under every modeled strategy plus a "
        "compute-only baseline through the executor",
    )
    service = parser.add_argument_group(
        "serve", "the crash-safe sweep service (docs/service.md)"
    )
    service.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: bind address (default 127.0.0.1)",
    )
    service.add_argument(
        "--port",
        type=int,
        default=8642,
        help="serve: bind port (default 8642; 0 picks a free port)",
    )
    service.add_argument(
        "--service-dir",
        default=None,
        help="serve: job table + journals + results root "
        "(default benchmarks/out/service)",
    )
    service.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serve: worker processes pulling jobs (default 1; 0 = "
        "workers run elsewhere against the same --service-dir)",
    )
    service.add_argument(
        "--lease-s",
        type=float,
        default=30.0,
        help="serve: worker lease duration in seconds (default 30); a "
        "lease that expires is requeued by the reaper",
    )
    service.add_argument(
        "--retry-budget",
        type=int,
        default=2,
        help="serve: lease-expiry re-executions before a job is marked "
        "failed (default 2)",
    )
    service.add_argument(
        "--max-queued",
        type=int,
        default=256,
        help="serve: bounded-queue capacity; a full queue answers 429 "
        "(default 256)",
    )
    chaos_grp = parser.add_argument_group(
        "crashtest", "the service crash matrix (docs/crashtest.md)"
    )
    chaos_grp.add_argument(
        "--budget-s",
        type=float,
        default=900.0,
        help="crashtest: wall-clock budget in seconds; scenarios past "
        "it are reported as skipped and fail the matrix (default 900)",
    )
    chaos_grp.add_argument(
        "--crash-lease-s",
        type=float,
        default=1.0,
        help="crashtest: worker lease duration (default 1.0 — short, "
        "so lease-expiry recovery is exercised quickly)",
    )
    chaos_grp.add_argument(
        "--skew-s",
        type=float,
        default=0.6,
        help="crashtest: injected clock skew for the skewed-host "
        "configs (default 0.6 — more than a third of the lease)",
    )
    chaos_grp.add_argument(
        "--crash-points",
        nargs="+",
        default=None,
        metavar="POINT",
        help="crashtest: restrict the matrix to these registered crash "
        "points (default: all of them)",
    )
    chaos_grp.add_argument(
        "--crash-actions",
        nargs="+",
        default=None,
        choices=sorted(CRASH_ACTIONS),
        metavar="ACTION",
        help="crashtest: restrict the matrix to these actions "
        f"({', '.join(sorted(CRASH_ACTIONS))})",
    )
    parser.add_argument(
        "--save-sweeps",
        metavar="DIR",
        default=None,
        help=(
            "persist fig11/fig13/fig14 sweeps as JSON + CSV under DIR "
            "(reload with repro.harness.store.load_sweep; diff with "
            "repro.harness.regression.compare_sweeps)"
        ),
    )
    args = parser.parse_args(argv)
    if (args.diff or args.check) and not args.fix:
        parser.error("--diff and --check require --fix")
    if args.diff and args.check:
        parser.error("--diff and --check are mutually exclusive")
    if args.fix and args.experiment != "lint":
        parser.error("--fix only applies to the lint experiment")
    if args.action and args.experiment == "cache":
        if len(args.action) > 1 or args.action[0] not in ("stats", "clear"):
            parser.error(
                "cache takes at most one action: 'stats' or 'clear'"
            )
    elif args.action and args.experiment != "lint":
        parser.error(
            f"positional arguments {args.action!r} only apply to the "
            "cache and lint experiments"
        )

    started = time.time()
    sections: List[str] = []
    want = args.experiment

    # One config object per invocation; every experiment below sees the
    # same preset.  Block counts that the paper pins at 30 (its GTX 280's
    # SM count) are clamped to the preset's co-residency limit so smaller
    # devices stay runnable — for gtx280 the clamp is the identity, which
    # keeps output and cache keys byte-identical to the pre-preset CLI.
    preset_cfg = get_preset(args.preset)
    limit = preset_cfg.topology.max_co_resident_blocks(preset_cfg)
    pinned_blocks = min(30, limit)

    if want == "serve":
        from pathlib import Path

        from repro.service.app import serve

        service_dir = Path(args.service_dir or "benchmarks/out/service")
        return serve(
            service_dir,
            host=args.host,
            port=args.port,
            workers=args.workers,
            lease_s=args.lease_s,
            retry_budget=args.retry_budget,
            max_queued=args.max_queued,
            worker_jobs=args.jobs,
            use_cache=args.cache,
        )

    if want == "crashtest":
        from repro.faults.crashtest import crash_campaign

        crash_report = crash_campaign(
            points=args.crash_points,
            actions=args.crash_actions,
            budget_s=args.budget_s,
            lease_s=args.crash_lease_s,
            skew_s=args.skew_s,
            log=lambda msg: print(msg, file=sys.stderr),
        )
        print(crash_report.render())
        return 0 if crash_report.ok else 1

    if want == "all" and args.resume is not None:
        # 'all' runs many batches; each resumes from its own journal.
        args.resume = "auto"

    from repro.parallel import (
        DEFAULT_CACHE_DIR,
        DEFAULT_JOURNAL_DIR,
        Executor,
        ResultCache,
    )

    cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    cache = ResultCache(cache_dir) if args.cache else None
    journaling = args.journal or args.resume is not None
    journal_dir = (args.journal_dir or DEFAULT_JOURNAL_DIR) if journaling else None
    executor: Optional[Executor] = None
    if args.jobs > 1 or cache is not None or journaling:
        executor = Executor(
            jobs=args.jobs, cache=cache, journal_dir=journal_dir
        )

    if want == "cache":
        store = ResultCache(cache_dir)
        if args.action and args.action[0] == "clear":
            removed = store.clear()
            sections.append(
                f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
                f"from {store.root}"
            )
        else:
            sections.append(store.stats().render())

    if want in ("table1", "all"):
        sections.append(
            report.render_table1(
                experiments.table1(
                    config=preset_cfg,
                    num_blocks=pinned_blocks,
                    executor=executor,
                    resume=args.resume,
                )
            )
        )
    if want in ("fig11", "all"):
        sweep = experiments.fig11(
            config=preset_cfg,
            rounds=args.rounds,
            executor=executor,
            resume=args.resume,
        )
        sections.append(
            report.render_sweep_totals(
                sweep, f"Fig. 11 (micro-benchmark, {args.rounds} rounds)"
            )
        )
        _persist_sweep(args, sweep, "fig11")
        if args.plot:
            from repro.harness.plot import plot_sweep

            sections.append(
                plot_sweep(sweep, sync=True, title="Fig. 11 sync time")
            )
    if want in ("fig13", "all"):
        sections.append(
            _fig13_14(args, sync=False, executor=executor, cfg=preset_cfg)
        )
    if want in ("fig14", "all"):
        sections.append(
            _fig13_14(args, sync=True, executor=executor, cfg=preset_cfg)
        )
    if want in ("fig15", "all"):
        sections.append(
            report.render_fig15(
                experiments.fig15(
                    config=preset_cfg,
                    num_blocks=pinned_blocks,
                    executor=executor,
                    resume=args.resume,
                )
            )
        )
    if want in ("headline", "all"):
        sections.append(
            report.render_headline(
                experiments.headline(
                    config=preset_cfg,
                    num_blocks=pinned_blocks,
                    executor=executor,
                    resume=args.resume,
                )
            )
        )
    if want in ("models", "all"):
        model_xs = [n for n in (1, 2, 4, 8, 16, 24, 30) if n <= limit]
        sections.append(
            report.render_model_validation(
                experiments.model_validation(
                    config=preset_cfg, blocks=model_xs
                )
            )
        )
    if want in ("extensions", "all"):
        sections.append(_extensions_study(args, cfg=preset_cfg))
    if want in ("composition", "all"):
        from repro.harness.tracestats import composition_study, render_composition

        sections.append(
            render_composition(
                composition_study(
                    num_blocks=pinned_blocks, config=preset_cfg
                )
            )
        )
    if want == "trace":
        sections.append(_trace_one(args, cfg=preset_cfg))
    if want == "report":
        from repro.harness.paperreport import generate_report

        path = generate_report(
            args.report_out, config=preset_cfg, micro_rounds=args.rounds
        )
        sections.append(f"wrote reproduction report to {path}")
    if want == "diff":
        if not args.baseline or not args.current:
            parser.error("diff requires --baseline and --current")
        from repro.harness.regression import compare_sweeps
        from repro.harness.store import load_sweep

        drifts = compare_sweeps(
            load_sweep(args.baseline), load_sweep(args.current), args.rel_tol
        )
        if drifts:
            sections.append(
                f"{len(drifts)} drifted point(s):\n"
                + "\n".join(f"  {d}" for d in drifts)
            )
            print("\n\n".join(sections))
            _epilogue(want, started, cache)
            return 1
        sections.append("no drift: sweeps are identical within tolerance")
    if want == "sanitize":
        text, dirty = _sanitize(args, executor=executor, cfg=preset_cfg)
        sections.append(text)
        if dirty:
            print("\n\n".join(sections))
            _epilogue(want, started, cache)
            return 1
    if want == "chaos":
        text, dirty = _chaos(args, executor=executor, cfg=preset_cfg)
        sections.append(text)
        if dirty:
            print("\n\n".join(sections))
            _epilogue(want, started, cache)
            return 1
    if want == "lint":
        text, code = _lint(args)
        if text:
            sections.append(text)
        if code:
            if sections:
                print("\n\n".join(sections))
            _epilogue(want, started, cache)
            return code
    if want == "tune":
        from repro.errors import ConfigError
        from repro.model.tune import tune_workload

        try:
            tune_rep = tune_workload(
                args.rounds,
                args.compute_ns,
                args.blocks,
                args.strategy,
                args.preset,
                measure=args.measure,
                executor=executor,
            )
        except ConfigError as exc:
            raise SystemExit(f"tune: {exc}")
        sections.append(
            tune_rep.to_json() if args.format == "json" else tune_rep.render()
        )
        code = tune_rep.exit_code(strict=args.strict)
        if code:
            print("\n\n".join(sections))
            _epilogue(want, started, cache)
            return code

    print("\n\n".join(sections))
    _epilogue(want, started, cache)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
