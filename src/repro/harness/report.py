"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.harness.experiments import SweepResult
from repro.harness.phases import Breakdown

__all__ = [
    "format_table",
    "render_table1",
    "render_sweep_totals",
    "render_sweep_sync",
    "render_fig15",
    "render_headline",
    "render_model_validation",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with right-aligned numeric-looking columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def _ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}"


def _us(ns: float) -> str:
    return f"{ns / 1e3:.2f}"


def render_table1(results: Mapping[str, Breakdown]) -> str:
    """Table 1: % of time spent on inter-block communication."""
    rows = [
        [
            name,
            _ms(b.total_ns),
            _ms(b.compute_ns),
            _ms(b.sync_ns),
            f"{b.sync_pct:.1f}%",
        ]
        for name, b in results.items()
    ]
    return format_table(
        ["algorithm", "total (ms)", "compute (ms)", "sync (ms)", "sync share"],
        rows,
        title="Table 1 — time spent on inter-block communication (CPU implicit)",
    )


def render_sweep_totals(sweep: SweepResult, title: str) -> str:
    """Fig. 11 / Fig. 13 style: total time per strategy per block count."""
    strategies = list(sweep.totals)
    headers = ["blocks"] + strategies
    rows = []
    for i, n in enumerate(sweep.blocks):
        rows.append([str(n)] + [_ms(sweep.totals[s][i]) for s in strategies])
    return format_table(headers, rows, title=f"{title} — total kernel time (ms)")


def render_sweep_sync(sweep: SweepResult, title: str) -> str:
    """Fig. 14 style: synchronization time per strategy per block count."""
    strategies = list(sweep.totals)
    headers = ["blocks"] + strategies
    rows = []
    for i, n in enumerate(sweep.blocks):
        rows.append(
            [str(n)] + [_ms(sweep.sync_series(s)[i]) for s in strategies]
        )
    return format_table(headers, rows, title=f"{title} — synchronization time (ms)")


def render_fig15(results: Mapping[str, Mapping[str, Breakdown]]) -> str:
    """Fig. 15: computation vs synchronization percentage stacks."""
    rows = []
    for algo, per_strategy in results.items():
        for strat, b in per_strategy.items():
            rows.append(
                [algo, strat, f"{b.compute_pct:.1f}%", f"{b.sync_pct:.1f}%"]
            )
    return format_table(
        ["algorithm", "strategy", "compute", "sync"],
        rows,
        title="Fig. 15 — computation vs synchronization share",
    )


def render_headline(numbers: Mapping[str, float]) -> str:
    """The abstract's headline comparisons."""
    rows = [
        [
            "micro: lock-free vs CPU explicit",
            f"{numbers['micro_lockfree_vs_explicit']:.2f}x",
            "7.8x",
        ],
        [
            "micro: lock-free vs CPU implicit",
            f"{numbers['micro_lockfree_vs_implicit']:.2f}x",
            "3.7x",
        ],
        ["FFT kernel-time improvement", f"{numbers['fft_improvement_pct']:.1f}%", "8%"],
        [
            "SWat kernel-time improvement",
            f"{numbers['swat_improvement_pct']:.1f}%",
            "24%",
        ],
        [
            "Bitonic kernel-time improvement",
            f"{numbers['bitonic_improvement_pct']:.1f}%",
            "39%",
        ],
    ]
    return format_table(
        ["quantity", "measured", "paper"], rows, title="Headline numbers"
    )


def render_model_validation(
    results: Mapping[str, Mapping[int, Mapping[str, float]]],
) -> str:
    """Eqs. 6/7/9: measured vs predicted per-round barrier cost (µs)."""
    rows = []
    for strat, per_n in results.items():
        for n, pair in per_n.items():
            measured, predicted = pair["measured"], pair["predicted"]
            err = (
                100.0 * (measured - predicted) / predicted if predicted else 0.0
            )
            rows.append(
                [strat, str(n), _us(measured), _us(predicted), f"{err:+.1f}%"]
            )
    return format_table(
        ["strategy", "blocks", "measured (µs)", "model (µs)", "deviation"],
        rows,
        title="Barrier cost: measurement vs Eqs. 6/7/9",
    )
