"""The unified run facade: one keyword-only entry point for every mode.

Historically the repo had two front doors — ``repro.harness.runner.run``
for plain single-attempt simulation and ``run_resilient`` for the
retry/degrade runtime — with positional grids that read ambiguously at
call sites (``run(algo, "gpu-lockfree", 30)``: blocks? threads?).
:func:`run` collapses them:

* ``num_blocks`` is keyword-only, so every call site names its grid;
* ``retry=`` / ``degrade=`` switch to the resilient runtime
  (:mod:`repro.harness.resilient`) — passing either one opts in;
* ``watchdog=`` arms the barrier watchdog: ``True`` uses the default
  deadline, an ``int`` is a custom deadline in virtual ns;
* ``trace=True`` keeps the simulated device (and its event trace) on
  the result for post-mortem inspection;
* every other keyword of :func:`repro.harness.runner.run`
  (``threads_per_block``, ``config``, ``jitter_pct``, ``faults``, …)
  passes straight through.

``run_resilient`` remains as a thin :class:`DeprecationWarning` shim.
"""

from __future__ import annotations

from typing import Union

from repro.algorithms.base import RoundAlgorithm
from repro.errors import ConfigError
from repro.harness.runner import RunResult
from repro.sync.base import SyncStrategy

__all__ = ["run"]


def run(
    algorithm: RoundAlgorithm,
    strategy: Union[str, SyncStrategy],
    *,
    num_blocks: int,
    retry=None,
    degrade=None,
    watchdog: Union[bool, int, None] = None,
    trace: bool = False,
    **kwargs,
) -> RunResult:
    """Simulate ``algorithm`` under ``strategy`` on ``num_blocks`` blocks.

    The single entry point for plain, watchdog-guarded and resilient
    runs.  ``retry`` (:class:`~repro.harness.resilient.RetryPolicy`) and
    ``degrade`` (:class:`~repro.harness.resilient.DegradePolicy`) enable
    the resilient runtime; ``watchdog`` arms the barrier-liveness
    watchdog (``True`` → default deadline, ``int`` → that deadline in
    ns); ``trace`` keeps the device and its trace on the result.
    Remaining keywords forward to :func:`repro.harness.runner.run`.
    """
    if watchdog is not None and watchdog is not False:
        if kwargs.get("barrier_deadline_ns") is not None:
            raise ConfigError(
                "pass watchdog= or barrier_deadline_ns=, not both"
            )
        if watchdog is True:
            from repro.faults.watchdog import DEFAULT_BARRIER_DEADLINE_NS

            kwargs["barrier_deadline_ns"] = DEFAULT_BARRIER_DEADLINE_NS
        else:
            kwargs["barrier_deadline_ns"] = int(watchdog)
    if trace:
        kwargs["keep_device"] = True

    if retry is not None or degrade is not None:
        from repro.harness.resilient import _run_resilient

        return _run_resilient(
            algorithm,
            strategy,
            num_blocks,
            retry=retry,
            degrade=degrade,
            **kwargs,
        )

    from repro.harness.runner import run as _run

    return _run(algorithm, strategy, num_blocks, **kwargs)
