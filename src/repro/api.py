"""The unified run facade: one keyword-only entry point for every mode.

Historically the repo had two front doors — ``repro.harness.runner.run``
for plain single-attempt simulation and a separate resilient entry point
for the retry/degrade runtime — with positional grids that read
ambiguously at call sites (``run(algo, "gpu-lockfree", 30)``: blocks?
threads?).  :func:`run` collapses them:

* ``num_blocks`` is keyword-only, so every call site names its grid;
* ``retry=`` / ``degrade=`` switch to the resilient runtime
  (:mod:`repro.harness.resilient`) — passing either one opts in;
* ``watchdog=`` arms the barrier watchdog: ``True`` uses the default
  deadline, an ``int`` is a custom deadline in virtual ns;
* ``trace=True`` keeps the simulated device (and its event trace) on
  the result for post-mortem inspection;
* ``resume=`` journals the run under a caller-chosen run-id label and,
  when a journal for that label already holds a result, replays it
  instead of simulating (``journal_dir=`` relocates the journal) —
  the single-run face of the sweep resume machinery
  (docs/resilience.md);
* every other keyword of :func:`repro.harness.runner.run`
  (``threads_per_block``, ``config``, ``jitter_pct``, ``faults``, …)
  passes straight through.

The old ``run_resilient`` spelling is gone (its shim was retired two
PR cycles after deprecation); this facade is the only resilient entry.
"""

from __future__ import annotations

from typing import Union

from repro.algorithms.base import RoundAlgorithm
from repro.errors import ConfigError
from repro.harness.runner import RunResult
from repro.sync.base import SyncStrategy

__all__ = ["run"]


def run(
    algorithm: RoundAlgorithm,
    strategy: Union[str, SyncStrategy],
    *,
    num_blocks: int,
    retry=None,
    degrade=None,
    watchdog: Union[bool, int, None] = None,
    trace: bool = False,
    resume: Union[str, None] = None,
    journal_dir=None,
    **kwargs,
) -> RunResult:
    """Simulate ``algorithm`` under ``strategy`` on ``num_blocks`` blocks.

    The single entry point for plain, watchdog-guarded and resilient
    runs.  ``retry`` (:class:`~repro.harness.resilient.RetryPolicy`) and
    ``degrade`` (:class:`~repro.harness.resilient.DegradePolicy`) enable
    the resilient runtime; ``watchdog`` arms the barrier-liveness
    watchdog (``True`` → default deadline, ``int`` → that deadline in
    ns); ``trace`` keeps the device and its trace on the result.
    Remaining keywords forward to :func:`repro.harness.runner.run`.

    ``resume`` journals the finished :class:`RunResult` under the given
    run-id label (algorithm instances are not content-hashable the way
    sweep payloads are, so the caller names the run) and replays it on
    the next same-label call instead of re-simulating.  Incompatible
    with ``trace=True``: a replayed result has no device to keep.
    """
    if resume is not None:
        if trace:
            raise ConfigError(
                "resume= cannot replay a kept device; drop trace=True"
            )
        return _run_journaled(
            algorithm,
            strategy,
            num_blocks=num_blocks,
            retry=retry,
            degrade=degrade,
            watchdog=watchdog,
            resume=resume,
            journal_dir=journal_dir,
            **kwargs,
        )
    if watchdog is not None and watchdog is not False:
        if kwargs.get("barrier_deadline_ns") is not None:
            raise ConfigError(
                "pass watchdog= or barrier_deadline_ns=, not both"
            )
        if watchdog is True:
            from repro.faults.watchdog import DEFAULT_BARRIER_DEADLINE_NS

            kwargs["barrier_deadline_ns"] = DEFAULT_BARRIER_DEADLINE_NS
        else:
            kwargs["barrier_deadline_ns"] = int(watchdog)
    if trace:
        kwargs["keep_device"] = True

    if retry is not None or degrade is not None:
        from repro.harness.resilient import _run_resilient

        return _run_resilient(
            algorithm,
            strategy,
            num_blocks,
            retry=retry,
            degrade=degrade,
            **kwargs,
        )

    from repro.harness.runner import run as _run

    return _run(algorithm, strategy, num_blocks, **kwargs)


def _run_journaled(
    algorithm,
    strategy,
    *,
    num_blocks,
    retry,
    degrade,
    watchdog,
    resume,
    journal_dir,
    **kwargs,
) -> RunResult:
    """The ``resume=`` path: replay a journaled run or execute + record.

    The journal holds one entry — the serialized
    :class:`~repro.harness.runner.RunResult` — under the caller's
    run-id label, with the same torn-tail-tolerant write-ahead format
    sweeps use.
    """
    from repro.parallel.journal import DEFAULT_JOURNAL_DIR, JournalEntry, RunJournal
    from repro.serialization import run_result_from_dict, run_result_to_dict

    journal = RunJournal(journal_dir or DEFAULT_JOURNAL_DIR, resume)
    if journal.exists():
        _, entries = journal.load(worker="run-facade", total=1)
        if 0 in entries and entries[0].status == "ok":
            result = run_result_from_dict(entries[0].value)
            result.resumed_from = resume
            return result
    result = run(
        algorithm,
        strategy,
        num_blocks=num_blocks,
        retry=retry,
        degrade=degrade,
        watchdog=watchdog,
        **kwargs,
    )
    journal.start(worker="run-facade", total=1, fresh=True)
    try:
        journal.record(JournalEntry(0, "ok", run_result_to_dict(result)))
    finally:
        journal.close()
    return result
