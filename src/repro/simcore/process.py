"""Process handles wrapping effect-yielding generators."""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional

from repro.simcore.effects import Effect

__all__ = ["Process", "ProcessState"]


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    CREATED = "created"
    RUNNING = "running"  # scheduled or executing
    BLOCKED = "blocked"  # parked on a signal / resource / join
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"  # killed via Engine.cancel()


class Cancelled:
    """Sentinel result delivered to joiners of a cancelled process."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:
        return f"Cancelled({self.reason!r})"


class Process:
    """Handle for one simulated activity.

    Created by :meth:`repro.simcore.engine.Engine.spawn` or the
    :class:`~repro.simcore.effects.Spawn` effect; not instantiated
    directly by user code.
    """

    __slots__ = (
        "name",
        "pid",
        "generator",
        "state",
        "result",
        "exception",
        "waiting_on",
        "joiners",
        "started_at",
        "finished_at",
        "blocked_on",
        "holding",
        "_entry",
    )

    def __init__(self, pid: int, name: str, generator: Generator[Effect, Any, Any]) -> None:
        self.pid = pid
        self.name = name
        self.generator = generator
        self.state = ProcessState.CREATED
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        #: human-readable description of what the process is blocked on.
        self.waiting_on: Optional[str] = None
        #: processes blocked in a Join on this one.
        self.joiners: List["Process"] = []
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        #: the Signal / Resource / Process this process is parked on
        #: (engine bookkeeping for cancellation).
        self.blocked_on: Any = None
        #: resources currently held (units acquired and not yet released),
        #: in acquisition order — released on cancellation.
        self.holding: List[Any] = []
        #: the process's single pending event-queue entry, if any (engine
        #: bookkeeping: lets Engine.cancel tombstone the wakeup in O(1)).
        self._entry: Optional[List[Any]] = None

    @property
    def alive(self) -> bool:
        """True while the process has not finished, failed or been killed."""
        return self.state not in (
            ProcessState.DONE,
            ProcessState.FAILED,
            ProcessState.CANCELLED,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process(#{self.pid} {self.name!r} {self.state.value})"
