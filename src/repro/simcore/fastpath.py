"""The fast-path simulation core: calendar queue + epoch-jumping engine.

The reference :class:`~repro.simcore.engine.Engine` replays every event
through one global ``heapq`` and re-evaluates every parked spin predicate
on every store.  Both costs are avoidable in the common case this
repository simulates — thousands of same-priority events and thousands of
spin polls whose outcome is analytically known:

* :class:`CalendarQueue` buckets pending wakeups by timestamp.  Within a
  bucket the common same-priority case is a plain FIFO append (scheduling
  order *is* dispatch order), so push/pop skip the global heap entirely;
  only distinct timestamps pay a (much smaller) heap.
* :class:`FastEngine` adds an **epoch jump**: when a resumed process only
  yields ``Delay`` effects and its next wakeup still precedes every other
  pending event, the engine advances the clock and resumes it in place —
  no queue round-trip at all.  When a process blocks, the queue head is
  by construction the wake horizon, and the engine hops there in one
  step.
* :class:`FlagIndex` indexes spin waiters that declare their wait
  predicate (:class:`~repro.simcore.effects.WaitSpec`) by cell and
  threshold.  A store then wakes exactly the satisfied waiters via heap
  peeks instead of evaluating every parked lambda — the quiescence rule:
  a spinner whose threshold is unmet cannot run before the next store,
  so it is never polled.

Every observable of the reference engine is reproduced bit-for-bit:
virtual timestamps, dispatch order (``(when, priority, seq)``), poll
counts, trace spans, tiebreak PRNG draws, and error/deadlock behaviour.
The reference engine stays available as the oracle
(``engine_mode="reference"``); ``tests/simcore/test_fastpath_equiv.py``
holds the two to byte-identical results.  See ``docs/engine.md``.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.simcore.effects import Delay, Effect, Fire, WaitSpec, WaitUntil
from repro.simcore.engine import Engine
from repro.simcore.process import Process, ProcessState
from repro.simcore.signal import Signal

__all__ = [
    "ENGINE_MODES",
    "ENGINE_MODE_ENV",
    "CalendarQueue",
    "FastEngine",
    "FlagIndex",
    "make_engine",
    "resolve_engine_mode",
    "use_engine_mode",
]

#: the two interchangeable event cores; "reference" is the oracle.
ENGINE_MODES = ("reference", "fast")

#: environment variable consulted by :func:`resolve_engine_mode` — the
#: way to flip mode across process boundaries (parallel sweep workers,
#: CI jobs).
ENGINE_MODE_ENV = "REPRO_ENGINE_MODE"

_mode_override: Optional[str] = None


def resolve_engine_mode(mode: Optional[str] = None) -> str:
    """Resolve an engine mode: explicit arg > context override > env > default.

    ``mode=None`` consults the :func:`use_engine_mode` override, then the
    ``REPRO_ENGINE_MODE`` environment variable, then defaults to
    ``"reference"``.  Raises :class:`repro.errors.ConfigError` on an
    unknown mode name.
    """
    if mode is None:
        mode = _mode_override
    if mode is None:
        mode = os.environ.get(ENGINE_MODE_ENV) or "reference"
    if mode not in ENGINE_MODES:
        raise ConfigError(
            f"unknown engine_mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    return mode


@contextmanager
def use_engine_mode(mode: str) -> Iterator[str]:
    """Context manager forcing the default engine mode within its scope.

    Affects engines created in *this* process with ``engine_mode=None``
    (parallel sweep workers run in subprocesses — set
    ``REPRO_ENGINE_MODE`` for those).  The differential test suite uses
    this to run the same driver under both cores.
    """
    global _mode_override
    resolved = resolve_engine_mode(mode)
    previous = _mode_override
    _mode_override = resolved
    try:
        yield resolved
    finally:
        _mode_override = previous


def make_engine(
    mode: Optional[str] = None,
    *,
    max_events: int = 200_000_000,
    tiebreak: Optional[Callable[[], float]] = None,
) -> Engine:
    """Build an engine for ``mode`` (see :func:`resolve_engine_mode`)."""
    if resolve_engine_mode(mode) == "fast":
        return FastEngine(max_events=max_events, tiebreak=tiebreak)
    return Engine(max_events=max_events, tiebreak=tiebreak)


class CalendarQueue:
    """Timestamp-bucketed event queue, bit-compatible with the global heap.

    Entries are the engine's mutable ``[when, priority, seq, process,
    value]`` lists.  Buckets are keyed by ``when``; a small heap of the
    distinct timestamps yields the next bucket.  With ``ordered=False``
    (no tiebreak installed) every entry in a bucket shares priority 0.0
    and arrives in ascending ``seq``, so a deque append/popleft *is*
    ``(when, priority, seq)`` order.  With a tiebreak active
    (``ordered=True``) each bucket is its own priority heap.

    Cancellation tombstones the entry in place (``process`` slot set to
    ``None``); dead entries are skipped lazily at the bucket head.
    """

    __slots__ = ("_buckets", "_times", "_size", "_ordered")

    def __init__(self, ordered: bool = False) -> None:
        self._buckets: Dict[int, Any] = {}
        self._times: List[int] = []
        self._size = 0
        self._ordered = ordered

    def __len__(self) -> int:
        return self._size

    def push(self, entry: List[Any]) -> None:
        """Insert an entry (appended FIFO, or heap-ranked under tiebreak)."""
        when = entry[0]
        bucket = self._buckets.get(when)
        if bucket is None:
            heapq.heappush(self._times, when)
            if self._ordered:
                self._buckets[when] = [entry]
            else:
                fifo: deque[List[Any]] = deque()
                fifo.append(entry)
                self._buckets[when] = fifo
        elif self._ordered:
            # Same-when entries compare on (priority, seq); seq is unique
            # so the process slot is never reached.
            heapq.heappush(bucket, entry)
        else:
            bucket.append(entry)
        self._size += 1

    def pushback(self, entry: List[Any]) -> None:
        """Re-insert an entry just popped (horizon push-back).

        The entry was the queue head, so in FIFO mode it must return to
        the *front* of its bucket (a plain append would put the oldest
        seq behind newer ones).
        """
        when = entry[0]
        bucket = self._buckets.get(when)
        if bucket is None or self._ordered:
            self.push(entry)
            return
        bucket.appendleft(entry)
        self._size += 1

    def peek(self) -> Optional[List[Any]]:
        """The next live entry in ``(when, priority, seq)`` order, or None.

        Prunes tombstones and exhausted buckets from the head as a side
        effect (amortized O(1) per cancelled entry).
        """
        buckets = self._buckets
        times = self._times
        ordered = self._ordered
        while times:
            when = times[0]
            bucket = buckets[when]
            if ordered:
                while bucket and bucket[0][3] is None:
                    heapq.heappop(bucket)
            else:
                while bucket and bucket[0][3] is None:
                    bucket.popleft()
            if bucket:
                head: List[Any] = bucket[0]
                return head
            del buckets[when]
            heapq.heappop(times)
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live entry, or None when drained."""
        head = self.peek()
        return None if head is None else head[0]

    def pop(self) -> Optional[List[Any]]:
        """Remove and return the next live entry, or None when drained."""
        head = self.peek()
        if head is None:
            return None
        when = head[0]
        bucket = self._buckets[when]
        if self._ordered:
            heapq.heappop(bucket)
        else:
            bucket.popleft()
        if not bucket:
            del self._buckets[when]
            heapq.heappop(self._times)
        self._size -= 1
        return head

    def cancel(self, entry: List[Any]) -> None:
        """Tombstone an entry in O(1); it is pruned when it reaches a head."""
        entry[3] = None
        entry[4] = None
        self._size -= 1


class FlagIndex:
    """Threshold index over a signal's declared (:class:`WaitSpec`) waiters.

    Single-cell waits are grouped per cell in a min-heap keyed by
    ``(threshold, park_seq)``; on each fire one value read per
    cell-with-waiters pops exactly the satisfied waiters.  Whole-array
    and slice waits sit in a side list and are evaluated per fire (their
    predicates read many cells anyway).  Cancelled waiters are
    tombstoned in place, mirroring the event queue.
    """

    __slots__ = ("count", "_cells", "_ranges", "_by_proc")

    def __init__(self) -> None:
        #: number of live declared waiters.
        self.count = 0
        # cell -> heap of (threshold, park_seq, entry); entry is the
        # mutable [process, spec, reason, park_seq, fire_count_at_park].
        self._cells: Dict[int, List[Tuple[float, int, List[Any]]]] = {}
        self._ranges: List[List[Any]] = []
        self._by_proc: Dict[int, List[Any]] = {}

    def add(
        self,
        process: Process,
        spec: WaitSpec,
        reason: str,
        park_seq: int,
        fire_count: int,
    ) -> None:
        """Park a declared waiter (predicate already evaluated false)."""
        entry: List[Any] = [process, spec, reason, park_seq, fire_count]
        self._by_proc[id(process)] = entry
        self.count += 1
        if spec.lo is not None and spec.hi is None:
            cell = self._cells.setdefault(spec.lo, [])
            heapq.heappush(cell, (float(spec.threshold), park_seq, entry))
        else:
            self._ranges.append(entry)

    def discard(self, process: Process) -> bool:
        """Detach a waiter in O(1) (cancellation); True if it was parked."""
        entry = self._by_proc.pop(id(process), None)
        if entry is None:
            return False
        entry[0] = None
        self.count -= 1
        return True

    def collect(
        self,
        source: Any,
        fire_count: int,
        out: List[Tuple[int, Process, int]],
    ) -> None:
        """Pop every satisfied waiter into ``out`` as (park_seq, process, polls).

        Checks each cell *with waiters* against the current value — not
        just a stored index — because host code may mutate the backing
        array directly between fires; the reference engine re-evaluates
        every predicate per fire and sees such writes, so the index must
        too.  ``polls`` is ``fire_count - fire_count_at_park``, exactly
        the per-fire increments the reference would have counted.
        """
        cells = self._cells
        for cell in list(cells):
            heap = cells[cell]
            # float() once: comparing Python floats against a NumPy
            # scalar would route every probe through ufunc dispatch.
            value = float(source[cell])
            while heap and heap[0][0] <= value:
                _thr, park_seq, entry = heapq.heappop(heap)
                process = entry[0]
                if process is None:
                    continue
                del self._by_proc[id(process)]
                self.count -= 1
                out.append((park_seq, process, fire_count - entry[4]))
            if not heap:
                del cells[cell]
        if self._ranges:
            still: List[List[Any]] = []
            for entry in self._ranges:
                process = entry[0]
                if process is None:
                    continue
                if entry[1].holds(source):
                    del self._by_proc[id(process)]
                    self.count -= 1
                    out.append((entry[3], process, fire_count - entry[4]))
                else:
                    still.append(entry)
            self._ranges = still

    def waiting(self) -> List[Tuple[str, str]]:
        """``(process_name, reason)`` pairs in park order (diagnostics)."""
        live = sorted(self._by_proc.values(), key=lambda e: e[3])
        return [(entry[0].name, entry[2]) for entry in live]


class FastEngine(Engine):
    """Drop-in engine with the calendar queue, epoch jump and flag index.

    Dispatch order, virtual timestamps, poll counts and tiebreak PRNG
    draws are bit-identical to :class:`~repro.simcore.engine.Engine`;
    only wall-clock cost differs.  Select it with
    ``engine_mode="fast"`` (see :func:`make_engine`).
    """

    def __init__(
        self,
        max_events: int = 200_000_000,
        tiebreak: Optional[Callable[[], float]] = None,
    ):
        super().__init__(max_events=max_events, tiebreak=tiebreak)
        self._queue = CalendarQueue(ordered=tiebreak is not None)
        # Global park order: lets fire() merge declared and generic
        # waiters back into the reference engine's wake order.
        self._park_seq = 0

    # -- event queue plumbing ----------------------------------------------

    def _schedule_entry(
        self, process: Process, when: int, priority: float, value: Any
    ) -> None:
        self._seq += 1
        entry: List[Any] = [when, priority, self._seq, process, value]
        process._entry = entry
        self._live += 1
        self._queue.push(entry)

    def _tombstone(self, entry: List[Any]) -> None:
        self._queue.cancel(entry)

    def next_event_time(self) -> Optional[int]:
        """See :meth:`Engine.next_event_time` (calendar-queue head here)."""
        return self._queue.peek_time()

    # -- main loop ----------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Run to quiescence (see :meth:`Engine.run` for the contract)."""
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        queue = self._queue
        try:
            while True:
                entry = queue.pop()
                if entry is None:
                    break
                when = entry[0]
                if until is not None and when > until:
                    # Push back and stop at the horizon.
                    queue.pushback(entry)
                    self.now = until
                    return self.now
                process = entry[3]
                process._entry = None
                self._live -= 1
                if when < self.now:
                    raise SimulationError("time went backwards (engine bug)")
                # Epoch jump: the queue head is by construction the wake
                # horizon — everything runnable before `when` has already
                # run, so hop the clock there in one step.
                self.now = when
                self._pump(process, entry[4], until)
        finally:
            self._running = False

        blocked = [
            (p.name, p.waiting_on or "unknown") for p in self._processes if p.alive
        ]
        if blocked:
            raise DeadlockError(blocked)
        return self.now

    def _pump(self, process: Process, value: Any, until: Optional[int]) -> None:
        """Resume ``process`` and keep resuming it while it only sleeps.

        A ``Delay`` whose wakeup precedes every other pending event (and
        the horizon) would be the very next dispatch anyway — so skip
        the queue round-trip and resume in place.  A timestamp tie goes
        to the queue head: the pending entry holds an older seq (or a
        smaller tiebreak priority), exactly as the reference heap orders
        it.  One tiebreak draw is burned per pumped event to keep the
        fuzzer's PRNG stream aligned with the reference engine.
        """
        if not process.alive:
            raise SimulationError(f"resumed finished process {process.name!r}")
        if process.started_at is None:
            process.started_at = self.now
        process.state = ProcessState.RUNNING
        process.waiting_on = None
        process.blocked_on = None
        queue = self._queue
        times = queue._times
        tiebreak = self._tiebreak
        max_events = self._max_events
        send = process.generator.send
        while True:
            self._events_dispatched += 1
            if self._events_dispatched > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "likely a runaway simulation"
                )
            try:
                effect = send(value)
            except StopIteration as stop:
                self._finish(process, stop.value)
                return
            except BaseException as exc:
                self._crash(process, exc)
            etype = type(effect)
            if etype is Delay:
                ns = effect.ns
                wake = self.now + (ns if type(ns) is int else int(round(ns)))
            elif etype is Fire:
                # A fire is a zero-delay reschedule: wake waiters first
                # (they draw their tiebreaks and take older seqs, so the
                # head comparison below defers to them on ties), then
                # treat the firing process like Delay(0).
                self.fire(effect.signal)
                wake = self.now
            else:
                self._dispatch(process, effect)
                return
            priority = tiebreak() if tiebreak is not None else 0.0
            if until is not None and wake > until:
                self._schedule_entry(process, wake, priority, None)
                return
            # `times` empty means no pending entry at all — pump freely.
            if times:
                head = queue.peek()
                if head is not None:
                    head_when = head[0]
                    if wake > head_when or (
                        wake == head_when and priority >= head[1]
                    ):
                        # The pending entry dispatches first (older seq
                        # wins priority ties) — fall back to the queue.
                        self._schedule_entry(process, wake, priority, None)
                        return
            self.now = wake
            value = None

    # -- effects and wakeups -------------------------------------------------

    def _dispatch(self, process: Process, effect: Effect) -> None:
        if isinstance(effect, WaitUntil):
            signal = effect.signal
            if effect.predicate():
                self._schedule(process, self.now, 0)
                return
            process.state = ProcessState.BLOCKED
            process.waiting_on = f"{effect.reason} (signal {signal.name!r})"
            process.blocked_on = signal
            self._park_seq += 1
            spec = effect.spec
            if spec is not None and signal.source is not None:
                index = signal._fast_index
                if index is None:
                    index = signal._fast_index = FlagIndex()
                index.add(
                    process, spec, effect.reason, self._park_seq, signal.fire_count
                )
            else:
                # Generic waiter; the fifth element is the park sequence
                # used to merge with declared wakeups in fire().
                signal._waiters.append(
                    [process, effect.predicate, effect.reason, 0, self._park_seq]
                )
            return
        super()._dispatch(process, effect)

    def fire(self, signal: Signal) -> int:
        """Fire ``signal``, waking satisfied waiters in reference order."""
        signal.fire_count += 1
        index = signal._fast_index
        waiters = signal._waiters
        if not waiters and (index is None or not index.count):
            return 0
        # (park_seq, process, polls) — park_seq restores the reference
        # engine's wake order across the generic/declared split.
        ready: List[Tuple[int, Process, int]] = []
        if waiters:
            still: List[list] = []
            for entry in waiters:
                entry[3] += 1
                if entry[1]():
                    ready.append((entry[4], entry[0], entry[3]))
                else:
                    still.append(entry)
            signal._waiters = still
        if index is not None and index.count:
            index.collect(signal.source, signal.fire_count, ready)
        if len(ready) > 1:
            ready.sort(key=lambda item: item[0])
        for _park, woken, polls in ready:
            woken.waiting_on = None
            woken.blocked_on = None
            self._schedule(woken, self.now, polls)
        return len(ready)
