"""Effect objects yielded by simulated processes.

A process is a generator.  Each ``yield`` hands the engine one of the
effect objects below; the engine performs the effect and resumes the
generator with the effect's result (via ``generator.send``).

Effects are deliberately plain dataclasses with no behaviour: all
semantics live in :class:`repro.simcore.engine.Engine`, which keeps the
protocol auditable in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.process import Process
    from repro.simcore.resource import Resource
    from repro.simcore.signal import Signal


class Effect:
    """Base class for all effects (used only for isinstance checks)."""

    __slots__ = ()


@dataclass(frozen=True)
class Delay(Effect):
    """Suspend the process for ``ns`` nanoseconds of virtual time.

    ``ns`` must be a non-negative number; fractional nanoseconds are
    rounded to the nearest integer (the engine's clock is integral).
    Resumes with ``None``.
    """

    ns: float

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise ValueError(f"Delay must be non-negative, got {self.ns!r}")


@dataclass(frozen=True)
class WaitSpec:
    """Declarative form of a flag-polling wait predicate.

    The barrier spin loops all reduce to "cell(s) of a counter array have
    reached a goal value".  Declaring that shape — instead of hiding it
    inside an opaque lambda — lets the fast engine index waiters by cell
    and threshold, so a store wakes exactly the satisfied waiters without
    re-evaluating every parked predicate (the quiescence rule in
    ``docs/engine.md``).  The reference engine ignores the spec and
    evaluates the predicate, which is how the differential suite proves
    the two descriptions agree.

    Shapes (``source`` is the waited-on array's backing buffer):

    * ``lo is None`` — every element: ``(source >= threshold).all()``
    * ``hi is None`` — one cell: ``source[lo] >= threshold``
    * otherwise — a slice: ``(source[lo:hi] >= threshold).all()``
    """

    threshold: float
    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is not None:
            raise ValueError("WaitSpec with hi requires lo")

    def holds(self, source: Any) -> bool:
        """Evaluate the declared predicate against ``source``."""
        if self.lo is None:
            return bool((source >= self.threshold).all())
        if self.hi is None:
            return bool(source[self.lo] >= self.threshold)
        return bool((source[self.lo : self.hi] >= self.threshold).all())


@dataclass(frozen=True)
class WaitUntil(Effect):
    """Block until ``predicate()`` is true, re-checking when ``signal`` fires.

    The predicate is evaluated once immediately; if already true the
    process resumes at the current time without blocking.  Otherwise the
    process is parked on the signal and the predicate is re-evaluated on
    every :meth:`~repro.simcore.signal.Signal.fire`.

    Resumes with the number of times the predicate was evaluated while
    blocked (0 if it was true immediately).  Callers that model spin
    loops use this count to charge a per-poll cost.

    ``spec``, when given, is a :class:`WaitSpec` describing the same
    condition declaratively; it MUST be equivalent to ``predicate`` (the
    fast engine trusts it, the reference engine ignores it, and the
    differential suite in ``tests/simcore/test_fastpath_equiv.py`` holds
    the two accountable to each other).
    """

    signal: "Signal"
    predicate: Callable[[], bool]
    reason: str = "wait-until"
    spec: Optional[WaitSpec] = None


@dataclass(frozen=True)
class Acquire(Effect):
    """Acquire one unit of a FIFO :class:`~repro.simcore.resource.Resource`.

    Blocks until granted.  Resumes with the virtual time spent queueing
    (nanoseconds), which callers use to account for serialization (e.g.
    atomic-unit contention).
    """

    resource: "Resource"
    reason: str = "acquire"


@dataclass(frozen=True)
class Release(Effect):
    """Release one unit of a resource previously acquired. Resumes with None."""

    resource: "Resource"


@dataclass(frozen=True)
class Spawn(Effect):
    """Start a child process running ``generator``.

    Resumes with the new :class:`~repro.simcore.process.Process` handle.
    The child is scheduled at the current virtual time.
    """

    generator: Generator[Effect, Any, Any]
    name: str = "proc"


@dataclass(frozen=True)
class Join(Effect):
    """Block until ``process`` finishes. Resumes with its return value."""

    process: "Process"
    reason: str = "join"


@dataclass(frozen=True)
class Fire(Effect):
    """Fire a signal, waking any waiters whose predicates now hold.

    Resumes with ``None``.  Most code fires signals through higher-level
    APIs (e.g. memory stores); this effect exists for direct use in tests
    and custom protocols.
    """

    signal: "Signal"
    payload: Any = None


@dataclass
class _Wakeup:
    """Internal heap entry payload (not an effect)."""

    process: "Process"
    value: Any = None
    exception: Optional[BaseException] = None
    cancelled: bool = field(default=False, compare=False)
