"""Span tracing for phase accounting.

The harness reproduces the paper's §7.3 methodology (synchronization time
= total kernel time − computation-only time), but the device model also
records *spans* — ``(owner, phase, start, end)`` intervals — so breakdowns
(Fig. 15 / Table 1) can be cross-checked structurally and tests can assert
ordering invariants ("no block enters round i+1 before every block left
round i").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Span", "Trace"]


@dataclass(frozen=True)
class Span:
    """One traced interval of virtual time."""

    owner: str  #: e.g. "block3", "host", "sm0"
    phase: str  #: e.g. "compute", "sync", "launch", "atomic"
    start: int  #: ns
    end: int  #: ns
    meta: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> int:
        """Span length in nanoseconds."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")


class Trace:
    """An append-only collection of spans with simple aggregation helpers."""

    def __init__(self) -> None:
        self._spans: List[Span] = []

    def add(
        self,
        owner: str,
        phase: str,
        start: int,
        end: int,
        **meta: Any,
    ) -> Span:
        """Record a span and return it."""
        span = Span(owner, phase, start, end, meta or None)
        self._spans.append(span)
        return span

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(
        self, phase: Optional[str] = None, owner: Optional[str] = None
    ) -> List[Span]:
        """Spans filtered by phase and/or owner."""
        out = self._spans
        if phase is not None:
            out = [s for s in out if s.phase == phase]
        if owner is not None:
            out = [s for s in out if s.owner == owner]
        return list(out)

    def total(self, phase: Optional[str] = None, owner: Optional[str] = None) -> int:
        """Sum of durations over the filtered spans (ns)."""
        return sum(s.duration for s in self.spans(phase, owner))

    def phases(self) -> List[str]:
        """Distinct phase names in first-appearance order."""
        seen: Dict[str, None] = {}
        for s in self._spans:
            seen.setdefault(s.phase, None)
        return list(seen)

    def by_phase(self) -> Dict[str, int]:
        """Total duration per phase (ns)."""
        totals: Dict[str, int] = {}
        for s in self._spans:
            totals[s.phase] = totals.get(s.phase, 0) + s.duration
        return totals

    def merge(self, others: Iterable["Trace"]) -> "Trace":
        """Return a new trace containing this trace's spans plus ``others``'."""
        merged = Trace()
        merged._spans.extend(self._spans)
        for other in others:
            merged._spans.extend(other._spans)
        merged._spans.sort(key=lambda s: (s.start, s.end))
        return merged

    def clear(self) -> None:
        """Drop all recorded spans."""
        self._spans.clear()

    # -- canonical export (differential testing) ---------------------------

    def to_tuples(self) -> List[Tuple[Any, ...]]:
        """Spans as plain tuples in recording order.

        ``(owner, phase, start, end, sorted_meta_items)`` — a canonical,
        order-preserving form two traces can be compared on directly.
        The differential engine suite asserts byte-identical traces
        between engine modes with exactly this.
        """
        return [
            (
                s.owner,
                s.phase,
                s.start,
                s.end,
                tuple(sorted(s.meta.items())) if s.meta else (),
            )
            for s in self._spans
        ]

    def digest(self) -> str:
        """SHA-256 over the canonical span tuples (event-trace fingerprint)."""
        payload = json.dumps(
            self.to_tuples(), separators=(",", ":"), sort_keys=False, default=str
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
