"""Signals: waitable notification points with predicate re-evaluation.

A :class:`Signal` is the engine's only blocking primitive besides
resources.  Simulated memory cells own a signal; a store fires it, and
every parked process whose predicate now holds is woken.  This gives
spin-loop semantics (the paper's ``while (g_mutex != goalVal)``) without
busy-ticking the event loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.process import Process

__all__ = ["Signal"]


class Signal:
    """A named notification point processes can wait on.

    Waiters are ``(process, predicate, polls)`` entries managed by the
    engine; ``polls`` counts predicate evaluations while blocked so
    callers can charge per-poll costs (see :class:`repro.simcore.effects.WaitUntil`).

    ``source``, when given, is the observable state the signal reports on
    (for a memory cell, its backing array).  The fast engine uses it to
    evaluate declared :class:`~repro.simcore.effects.WaitSpec` waits
    against the current values; the reference engine never reads it.
    """

    __slots__ = ("name", "_waiters", "fire_count", "source", "_fast_index")

    def __init__(self, name: str = "signal", source: Any = None) -> None:
        self.name = name
        #: list of [process, predicate, reason, polls] entries (mutable lists
        #: so the engine can bump the poll counter in place).  The fast
        #: engine appends a fifth element, the global park sequence number.
        self._waiters: List[list] = []
        #: total number of times this signal has fired (diagnostics).
        self.fire_count = 0
        #: the state WaitSpec thresholds are checked against (fast engine).
        self.source = source
        #: lazily created repro.simcore.fastpath.FlagIndex of declared
        #: waiters, keyed by cell and threshold (fast engine only).
        self._fast_index: Any = None

    # -- engine-facing API -------------------------------------------------

    def _add_waiter(
        self, process: "Process", predicate: Callable[[], bool], reason: str
    ) -> None:
        self._waiters.append([process, predicate, reason, 0])

    def _remove_waiter(self, process: "Process") -> None:
        self._waiters = [w for w in self._waiters if w[0] is not process]
        if self._fast_index is not None:
            self._fast_index.discard(process)

    def _collect_ready(self) -> List[Tuple["Process", int]]:
        """Evaluate all waiter predicates; detach and return those now true.

        Returns ``(process, polls)`` pairs where ``polls`` includes this
        evaluation.  Predicates that raise propagate to the caller (the
        engine converts that into a process failure).
        """
        self.fire_count += 1
        ready: List[Tuple["Process", int]] = []
        still_waiting: List[list] = []
        for entry in self._waiters:
            process, predicate, _reason, polls = entry
            entry[3] = polls + 1
            if predicate():
                ready.append((process, entry[3]))
            else:
                still_waiting.append(entry)
        self._waiters = still_waiting
        return ready

    # -- introspection -----------------------------------------------------

    @property
    def waiter_count(self) -> int:
        """Number of processes currently parked on this signal."""
        count = len(self._waiters)
        if self._fast_index is not None:
            count += self._fast_index.count
        return count

    def waiting_processes(self) -> List[Tuple[str, str]]:
        """``(process_name, reason)`` pairs for deadlock diagnostics."""
        out = [(w[0].name, w[2]) for w in self._waiters]
        if self._fast_index is not None:
            out.extend(self._fast_index.waiting())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={self.waiter_count})"
