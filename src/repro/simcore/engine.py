"""The discrete-event engine: event heap, effect dispatch, deadlock detection."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, NoReturn, Optional, Tuple

from repro.errors import DeadlockError, ProcessError, SimulationError
from repro.simcore.effects import (
    Acquire,
    Delay,
    Effect,
    Fire,
    Join,
    Release,
    Spawn,
    WaitUntil,
)
from repro.simcore.process import Cancelled, Process, ProcessState
from repro.simcore.resource import Resource
from repro.simcore.signal import Signal

__all__ = ["Engine"]


class Engine:
    """A deterministic process-oriented discrete-event simulator.

    Virtual time is an integer nanosecond counter starting at 0.  Events
    at equal times execute in scheduling order (FIFO), which makes every
    run exactly reproducible.

    Typical use::

        engine = Engine()
        engine.spawn(my_generator(), name="host")
        engine.run()
        print(engine.now)

    ``tiebreak`` perturbs the order of *same-time* events: when given, it
    is called once per scheduled event and its float return value ranks
    the event among events at the same virtual time (FIFO order breaks
    any remaining ties).  A seeded generator here explores adversarial
    interleavings deterministically — see
    :class:`repro.sanitize.ScheduleFuzzer`.  Virtual timestamps are
    unaffected, so a protocol that is only correct under FIFO dispatch
    is exposed without distorting any measurement.
    """

    def __init__(
        self,
        max_events: int = 200_000_000,
        tiebreak: Optional[Callable[[], float]] = None,
    ):
        #: current virtual time in nanoseconds.
        self.now: int = 0
        #: pending wakeups as mutable ``[when, priority, seq, process,
        #: value]`` entries; a cancelled entry is tombstoned in place
        #: (process slot set to None) and dropped lazily when popped.
        self._heap: List[List[Any]] = []
        self._tiebreak = tiebreak
        self._seq = 0
        self._pid = 0
        self._processes: List[Process] = []
        self._max_events = max_events
        self._events_dispatched = 0
        #: count of live (non-tombstoned) pending entries.
        self._live = 0
        self._running = False

    # -- public API ----------------------------------------------------------

    def spawn(
        self, generator: Generator[Effect, Any, Any], name: str = "proc", delay: int = 0
    ) -> Process:
        """Register ``generator`` as a new process starting ``delay`` ns from now."""
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"spawn expects a generator, got {type(generator).__name__}"
            )
        self._pid += 1
        process = Process(self._pid, name, generator)
        self._processes.append(process)
        process.state = ProcessState.RUNNING
        self._schedule(process, self.now + int(delay), None)
        return process

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event heap drains (or virtual time reaches ``until``).

        Returns the final virtual time.  Raises
        :class:`repro.errors.DeadlockError` if processes remain blocked
        when the heap drains, and re-raises any exception raised inside a
        process (annotated with the process name).

        **Horizon semantics.** With ``until`` given, the engine stops as
        soon as the next pending event lies beyond the horizon and
        returns ``until`` — *without* the deadlock check, because the
        future event proves the simulation can still make progress.  A
        deadlock is still raised at the horizon when the heap drains
        before reaching ``until``.  The remaining ambiguity is a heap
        whose only future events belong to processes unrelated to the
        blocked ones (e.g. a timer): after ``run(until=...)`` returns,
        inspect :attr:`blocked_processes` (who is parked, and on what)
        and :meth:`pending_events` to tell "paused, work pending" from
        "everything that matters is stuck".
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                entry = heapq.heappop(self._heap)
                process = entry[3]
                if process is None:
                    # Tombstoned wakeup of a cancelled process: skip it
                    # *before* the horizon check or advancing the clock,
                    # so dead wakeups neither pause the run nor inflate
                    # the final virtual time.
                    continue
                when = entry[0]
                if until is not None and when > until:
                    # Push back and stop at the horizon.
                    heapq.heappush(self._heap, entry)
                    self.now = until
                    return self.now
                process._entry = None
                self._live -= 1
                if when < self.now:
                    raise SimulationError("time went backwards (engine bug)")
                self.now = when
                self._events_dispatched += 1
                if self._events_dispatched > self._max_events:
                    raise SimulationError(
                        f"exceeded max_events={self._max_events}; "
                        "likely a runaway simulation"
                    )
                self._step(process, entry[4])
        finally:
            self._running = False

        blocked = [
            (p.name, p.waiting_on or "unknown") for p in self._processes if p.alive
        ]
        if blocked:
            raise DeadlockError(blocked)
        return self.now

    def cancel(self, process: Process, reason: str = "cancelled") -> bool:
        """Kill a process: detach it, free its resources, wake joiners.

        The simulated analogue of the driver killing a kernel (or an
        operator killing a job): the process never runs again, resources
        it held are granted to the next waiters, and anything joined on
        it resumes with a :class:`~repro.simcore.process.Cancelled`
        sentinel carrying ``reason``.  Returns ``False`` if the process
        had already finished.
        """
        if not process.alive:
            return False
        # Detach from whatever it is parked on.
        blocker = process.blocked_on
        if isinstance(blocker, Signal):
            blocker._remove_waiter(process)
        elif isinstance(blocker, Resource):
            blocker._remove_queued(process)
        elif isinstance(blocker, Process):
            if process in blocker.joiners:
                blocker.joiners.remove(process)
        process.blocked_on = None
        # Hand its held resource units to the next waiters.
        for resource in process.holding:
            granted = resource._release()
            if granted is not None:
                woken, enq_time = granted
                woken.waiting_on = None
                woken.blocked_on = None
                woken.holding.append(resource)
                self._schedule(woken, self.now, self.now - enq_time)
        process.holding.clear()
        # Tombstone its pending wakeup, if any: O(1), no heap scan.  The
        # dead entry is dropped lazily when it reaches the queue head.
        entry = process._entry
        if entry is not None:
            process._entry = None
            self._live -= 1
            self._tombstone(entry)
        process.state = ProcessState.CANCELLED
        process.result = Cancelled(reason)
        process.finished_at = self.now
        process.waiting_on = None
        process.generator.close()
        for joiner in process.joiners:
            joiner.waiting_on = None
            joiner.blocked_on = None
            self._schedule(joiner, self.now, process.result)
        process.joiners.clear()
        return True

    def fire(self, signal: Signal) -> int:
        """Fire ``signal`` now, waking waiters whose predicates hold.

        Returns the number of processes woken.  Safe to call from outside
        process context (e.g. a memory store performed while dispatching
        another process's effect).
        """
        ready = signal._collect_ready()
        for process, polls in ready:
            process.waiting_on = None
            process.blocked_on = None
            self._schedule(process, self.now, polls)
        return len(ready)

    @property
    def live_processes(self) -> List[Process]:
        """Processes that have not yet finished."""
        return [p for p in self._processes if p.alive]

    @property
    def blocked_processes(self) -> List[Tuple[str, str]]:
        """``(name, reason)`` for every live process parked on something.

        The same shape :class:`repro.errors.DeadlockError` reports, but
        available *while* the simulation is paused — use it after
        ``run(until=...)`` returns at the horizon to distinguish "paused
        with work pending" from "deadlocked at the horizon", or from a
        monitoring process (see :class:`repro.faults.BarrierWatchdog`).
        """
        return [
            (p.name, p.waiting_on or "unknown")
            for p in self._processes
            if p.state == ProcessState.BLOCKED
        ]

    def pending_events(self, ignore: Tuple[Process, ...] = ()) -> int:
        """Scheduled wakeups of live processes, excluding ``ignore``.

        A positive count means some process will run again without
        outside help; zero with :attr:`blocked_processes` non-empty is a
        certain deadlock (nothing left to fire the signals they wait
        on).  ``ignore`` lets a watchdog discount its own timer when it
        asks "can anyone *else* still make progress?".
        """
        pending = self._live
        for p in ignore:
            if p._entry is not None:
                pending -= 1
        return pending

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the next live scheduled wakeup, or ``None``.

        The step-driver API (:mod:`repro.cudaapi`) uses this with
        ``run(until=...)`` to advance the clock one event at a time;
        both engine modes implement it.  Tombstoned (cancelled) entries
        at the head are pruned as a side effect.
        """
        heap = self._heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    @property
    def events_dispatched(self) -> int:
        """Total events executed so far (diagnostics)."""
        return self._events_dispatched

    # -- internals -------------------------------------------------------------

    def _schedule(self, process: Process, when: int, value: Any) -> None:
        priority = self._tiebreak() if self._tiebreak is not None else 0.0
        self._schedule_entry(process, when, priority, value)

    def _schedule_entry(
        self, process: Process, when: int, priority: float, value: Any
    ) -> None:
        """Insert a wakeup whose tiebreak priority was already drawn."""
        self._seq += 1
        entry: List[Any] = [when, priority, self._seq, process, value]
        process._entry = entry
        self._live += 1
        heapq.heappush(self._heap, entry)

    def _tombstone(self, entry: List[Any]) -> None:
        """Mark a pending entry dead in place (already uncounted)."""
        entry[3] = None
        entry[4] = None

    def _step(self, process: Process, value: Any) -> None:
        """Resume ``process`` with ``value`` and dispatch its next effect."""
        if not process.alive:
            raise SimulationError(f"resumed finished process {process.name!r}")
        if process.started_at is None:
            process.started_at = self.now
        process.state = ProcessState.RUNNING
        process.waiting_on = None
        process.blocked_on = None
        try:
            effect = process.generator.send(value)
        except StopIteration as stop:
            self._finish(process, stop.value)
            return
        except BaseException as exc:
            self._crash(process, exc)
        self._dispatch(process, effect)

    def _crash(self, process: Process, exc: BaseException) -> NoReturn:
        """Record a process failure and re-raise it annotated."""
        process.state = ProcessState.FAILED
        process.exception = exc
        process.finished_at = self.now
        from repro.errors import ReproError

        if isinstance(exc, ReproError):
            # Library errors keep their type (callers catch on it);
            # the failing process is recorded on the exception object.
            raise exc
        raise ProcessError(
            f"process {process.name!r} raised {type(exc).__name__}: {exc}"
        ) from exc

    def _finish(self, process: Process, result: Any) -> None:
        process.state = ProcessState.DONE
        process.result = result
        process.finished_at = self.now
        for joiner in process.joiners:
            joiner.waiting_on = None
            self._schedule(joiner, self.now, result)
        process.joiners.clear()

    def _dispatch(self, process: Process, effect: Effect) -> None:
        if isinstance(effect, Delay):
            self._schedule(process, self.now + int(round(effect.ns)), None)
        elif isinstance(effect, WaitUntil):
            if effect.predicate():
                self._schedule(process, self.now, 0)
            else:
                process.state = ProcessState.BLOCKED
                process.waiting_on = (
                    f"{effect.reason} (signal {effect.signal.name!r})"
                )
                process.blocked_on = effect.signal
                effect.signal._add_waiter(process, effect.predicate, effect.reason)
        elif isinstance(effect, Acquire):
            resource = effect.resource
            if resource._try_acquire():
                process.holding.append(resource)
                self._schedule(process, self.now, 0)
            else:
                process.state = ProcessState.BLOCKED
                process.waiting_on = (
                    f"{effect.reason} (resource {resource.name!r})"
                )
                process.blocked_on = resource
                resource._enqueue(process, self.now, effect.reason)
        elif isinstance(effect, Release):
            if effect.resource not in process.holding:
                raise ProcessError(
                    f"process {process.name!r} released resource "
                    f"{effect.resource.name!r} it does not hold"
                )
            process.holding.remove(effect.resource)
            granted = effect.resource._release()
            if granted is not None:
                woken, enq_time = granted
                woken.waiting_on = None
                woken.blocked_on = None
                woken.holding.append(effect.resource)
                self._schedule(woken, self.now, self.now - enq_time)
            self._schedule(process, self.now, None)
        elif isinstance(effect, Spawn):
            child = self.spawn(effect.generator, name=effect.name)
            self._schedule(process, self.now, child)
        elif isinstance(effect, Join):
            target = effect.process
            if not target.alive:
                self._schedule(process, self.now, target.result)
            else:
                process.state = ProcessState.BLOCKED
                process.waiting_on = f"{effect.reason} (process {target.name!r})"
                process.blocked_on = target
                target.joiners.append(process)
        elif isinstance(effect, Fire):
            self.fire(effect.signal)
            self._schedule(process, self.now, None)
        else:
            raise ProcessError(
                f"process {process.name!r} yielded non-effect "
                f"{type(effect).__name__}: {effect!r}"
            )
