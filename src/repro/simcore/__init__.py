"""Deterministic discrete-event simulation core.

This subpackage is a small, self-contained process-oriented discrete-event
engine (in the spirit of SimPy, written from scratch for this project).
Simulated activities are Python generators that ``yield`` effect objects
(:mod:`repro.simcore.effects`); the :class:`~repro.simcore.engine.Engine`
interprets the effects, advances virtual time (integer nanoseconds) and
resumes processes.

Design notes (see DESIGN.md §5):

* **Event-driven waits.** A process spinning on a memory cell does not
  busy-tick the event loop; it blocks on a :class:`~repro.simcore.signal.Signal`
  and is re-evaluated when the signal fires.  Cost accounting for spin
  *observations* is done by the caller (the GPU model charges a read cost
  per wake-up), keeping the engine mechanism-only.
* **Determinism.** Ties in virtual time are broken by a monotonically
  increasing sequence number, so runs are exactly reproducible.
* **Deadlock detection.** If the event heap drains while live processes
  remain blocked, the engine raises :class:`repro.errors.DeadlockError`
  naming each blocked process — the simulated analogue of a hung grid.
"""

from repro.simcore.effects import (
    Acquire,
    Delay,
    Effect,
    Fire,
    Join,
    Release,
    Spawn,
    WaitSpec,
    WaitUntil,
)
from repro.simcore.engine import Engine
from repro.simcore.fastpath import (
    ENGINE_MODE_ENV,
    ENGINE_MODES,
    CalendarQueue,
    FastEngine,
    FlagIndex,
    make_engine,
    resolve_engine_mode,
    use_engine_mode,
)
from repro.simcore.process import Cancelled, Process, ProcessState
from repro.simcore.resource import Resource
from repro.simcore.signal import Signal
from repro.simcore.trace import Span, Trace

__all__ = [
    "ENGINE_MODE_ENV",
    "ENGINE_MODES",
    "Acquire",
    "CalendarQueue",
    "Cancelled",
    "Delay",
    "Effect",
    "Engine",
    "FastEngine",
    "Fire",
    "FlagIndex",
    "Join",
    "Process",
    "ProcessState",
    "Release",
    "Resource",
    "Signal",
    "Span",
    "Spawn",
    "Trace",
    "WaitSpec",
    "WaitUntil",
    "make_engine",
    "resolve_engine_mode",
    "use_engine_mode",
]
