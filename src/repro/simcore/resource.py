"""FIFO resources for modelling serialized hardware units.

The GPU model uses one :class:`Resource` with ``capacity=1`` as the
global-memory *atomic unit*: every ``atomicAdd`` must hold it for the
atomic's service time, which is exactly why the paper's GPU simple
synchronization costs ``N * t_a`` for ``N`` contending blocks (Eq. 6).
SM slots use higher capacities.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.process import Process

__all__ = ["Resource"]


class Resource:
    """A counted FIFO resource.

    ``capacity`` units exist; :class:`~repro.simcore.effects.Acquire`
    grants one unit or queues the process in strict FIFO order, and
    :class:`~repro.simcore.effects.Release` returns one unit, granting it
    to the head of the queue if any.
    """

    __slots__ = ("name", "capacity", "in_use", "_queue")

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        #: queued (process, enqueue_time, reason) triples.
        self._queue: Deque[Tuple["Process", int, str]] = deque()

    # -- engine-facing API -------------------------------------------------

    def _try_acquire(self) -> bool:
        """Grant a unit immediately if one is free."""
        if self.in_use < self.capacity:
            self.in_use += 1
            return True
        return False

    def _enqueue(self, process: "Process", now: int, reason: str) -> None:
        self._queue.append((process, now, reason))

    def _remove_queued(self, process: "Process") -> None:
        """Drop a waiter from the queue (cancellation support)."""
        self._queue = deque(
            entry for entry in self._queue if entry[0] is not process
        )

    def _release(self) -> "Tuple[Process, int] | None":
        """Return a unit; if a process is queued, transfer the unit to it.

        Returns ``(process, enqueue_time)`` for the waiter now holding the
        unit, or ``None`` when nobody was waiting.
        """
        if self.in_use <= 0:
            raise SimulationError(
                f"release of resource {self.name!r} that is not held"
            )
        if self._queue:
            # Unit passes directly to the head waiter; in_use is unchanged.
            process, enq_time, _reason = self._queue.popleft()
            return process, enq_time
        self.in_use -= 1
        return None

    # -- introspection -----------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a unit."""
        return len(self._queue)

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self.in_use

    def waiting_processes(self) -> List[Tuple[str, str]]:
        """``(process_name, reason)`` pairs for deadlock diagnostics."""
        return [(p.name, reason) for p, _t, reason in self._queue]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} used, "
            f"{len(self._queue)} queued)"
        )
