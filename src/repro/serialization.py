"""The shared versioned-JSON protocol for batch results.

Every batch result the harness produces — a :class:`SweepResult`, a
:class:`ChaosReport`, a :class:`SanitizeReport` — serializes to the same
envelope::

    {"schema": <int>, "kind": "<result kind>", ...body...}

so the result cache, the persistence layer (:mod:`repro.harness.store`)
and the ``repro`` CLI treat all of them uniformly: one schema version,
one ``kind`` tag to dispatch on, and *typed* load failures
(:class:`~repro.errors.ExperimentError`) that always name the source
and the found/expected versions instead of leaking bare ``KeyError``\\ s.

This module also holds the canonical-form helpers the content-addressed
cache keys on: :func:`canonical_json` (sorted keys, minimal separators,
so semantically equal payloads hash equal) and the
:class:`~repro.gpu.config.DeviceConfig` dict round-trip.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, Iterable, Union

from repro.errors import ExperimentError
from repro.gpu.config import DeviceConfig
from repro.gpu.topology import Topology
from repro.model.calibration import CalibratedTimings

__all__ = [
    "COMPATIBLE_SCHEMA_VERSIONS",
    "JOB_STATES",
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "check_envelope",
    "device_config_from_dict",
    "device_config_to_dict",
    "dump_job_failure",
    "dump_job_status",
    "dump_result",
    "parse_job_failure",
    "parse_job_status",
    "parse_result",
    "plain",
    "require",
    "run_result_from_dict",
    "run_result_to_dict",
]

#: current schema of every serialized batch result.  Version 1 was the
#: pre-protocol sweep-only format of :mod:`repro.harness.store`; version
#: 2 introduced the shared envelope across all result kinds; version 3
#: added partial-failure provenance (``retries``, ``quarantined``) to
#: sweep, chaos and sanitize results.
RESULT_SCHEMA_VERSION = 3

#: envelope versions this build reads by default.  Version 3 is a pure
#: field addition over 2 (readers default the new provenance fields), so
#: both parse.
COMPATIBLE_SCHEMA_VERSIONS = (2, RESULT_SCHEMA_VERSION)


def plain(value: Any) -> Any:
    """Recursively coerce a value into plain JSON-serializable types.

    Numpy scalars become Python ints/floats, tuples become lists, dict
    keys become strings — everything the cache and the envelope dumps
    need to round-trip losslessly through ``json``.
    """
    if isinstance(value, dict):
        return {str(k): plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [plain(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    raise ExperimentError(
        f"cannot serialize value of type {type(value).__name__}: {value!r}"
    )


def canonical_json(payload: Any) -> str:
    """Deterministic minimal JSON: sorted keys, no whitespace.

    Semantically equal payloads produce byte-equal text — the property
    the content-addressed cache key depends on.
    """
    return json.dumps(
        plain(payload), sort_keys=True, separators=(",", ":")
    )


def dump_result(kind: str, body: Dict[str, Any]) -> str:
    """Render a batch result as versioned, deterministic JSON."""
    envelope = {"schema": RESULT_SCHEMA_VERSION, "kind": kind}
    envelope.update(body)
    return json.dumps(plain(envelope), indent=1, sort_keys=True)


def check_envelope(
    payload: Any,
    *,
    kind: Union[str, Iterable[str]],
    source: str = "<string>",
    accept: Iterable[int] = COMPATIBLE_SCHEMA_VERSIONS,
) -> Dict[str, Any]:
    """Validate an envelope's kind and schema; return the payload.

    Every failure is a typed :class:`~repro.errors.ExperimentError`
    naming ``source`` (usually a file path) and, for version mismatches,
    the found and expected schema versions.
    """
    kinds = (kind,) if isinstance(kind, str) else tuple(kind)
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"{source} does not contain a JSON object "
            f"(found {type(payload).__name__})"
        )
    found_kind = payload.get("kind")
    if found_kind not in kinds:
        wanted = " or ".join(kinds)
        raise ExperimentError(
            f"{source} does not contain a {wanted} result "
            f"(found kind {found_kind!r})"
        )
    accepted = tuple(accept)
    found = payload.get("schema")
    if found not in accepted:
        wanted = ", ".join(str(v) for v in accepted)
        raise ExperimentError(
            f"{source} has schema {found!r}; this build reads "
            f"version(s) {wanted}"
        )
    return payload


def parse_result(
    text: str,
    *,
    kind: Union[str, Iterable[str]],
    source: str = "<string>",
    accept: Iterable[int] = COMPATIBLE_SCHEMA_VERSIONS,
) -> Dict[str, Any]:
    """Parse and envelope-check serialized JSON text."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"{source} is not valid JSON: {exc}") from exc
    return check_envelope(payload, kind=kind, source=source, accept=accept)


def require(payload: Dict[str, Any], key: str, source: str = "<string>") -> Any:
    """Fetch a required envelope field, or fail with a typed error."""
    try:
        return payload[key]
    except KeyError:
        raise ExperimentError(
            f"{source}: missing required field {key!r} "
            f"(schema {payload.get('schema')!r}, kind {payload.get('kind')!r})"
        ) from None


# ---------------------------------------------------------------------------
# Job envelopes (the sweep service's wire protocol — docs/service.md)
# ---------------------------------------------------------------------------

#: every state a service job can be in.  ``queued`` jobs wait for a
#: worker (possibly backed off after a lease expiry); ``leased`` jobs
#: are owned by exactly one worker under a time-bounded lease; ``done``
#: and ``failed`` are terminal.
JOB_STATES = ("queued", "leased", "done", "failed")


def dump_job_status(job: Dict[str, Any]) -> str:
    """Render one job row as a ``kind="job-status"`` envelope.

    The body is the job's public face: identity, spec, lifecycle state,
    attempt/lease bookkeeping.  The stored result and failure envelopes
    are *not* inlined (they have their own endpoints and kinds) — only
    flags saying whether they exist.
    """
    state = job.get("state")
    if state not in JOB_STATES:
        raise ExperimentError(
            f"job {job.get('id')!r} has unknown state {state!r}; "
            f"expected one of: {', '.join(JOB_STATES)}"
        )
    return dump_result(
        "job-status",
        {
            "id": job["id"],
            "spec": job["spec"],
            "state": state,
            "attempts": job.get("attempts", 0),
            "submitted_at": job.get("submitted_at"),
            "eligible_at": job.get("eligible_at"),
            "lease_owner": job.get("lease_owner"),
            "lease_expires_at": job.get("lease_expires_at"),
            "updated_at": job.get("updated_at"),
            "has_result": bool(job.get("result")),
            "has_error": bool(job.get("error")),
        },
    )


def parse_job_status(text: str, *, source: str = "<string>") -> Dict[str, Any]:
    """Parse and validate a ``job-status`` envelope."""
    payload = parse_result(text, kind="job-status", source=source)
    state = require(payload, "state", source)
    if state not in JOB_STATES:
        raise ExperimentError(
            f"{source}: unknown job state {state!r}; "
            f"expected one of: {', '.join(JOB_STATES)}"
        )
    require(payload, "id", source)
    require(payload, "spec", source)
    return payload


def dump_job_failure(
    error_type: str,
    message: str,
    *,
    job_id: str,
    attempts: int,
) -> str:
    """Render a terminal job failure as a ``kind="job-failure"`` envelope.

    This is what the job table stores (and the result endpoint serves)
    when a job exhausts its retry budget or its worker raises a typed
    error — the service's analogue of the executor's typed
    :class:`~repro.errors.ExecutorError`, serialized so the failure
    survives service restarts byte-for-byte.
    """
    return dump_result(
        "job-failure",
        {
            "id": job_id,
            "error": {"type": error_type, "message": message},
            "attempts": attempts,
        },
    )


def parse_job_failure(text: str, *, source: str = "<string>") -> Dict[str, Any]:
    """Parse and validate a ``job-failure`` envelope."""
    payload = parse_result(text, kind="job-failure", source=source)
    error = require(payload, "error", source)
    if not isinstance(error, dict) or "type" not in error or "message" not in error:
        raise ExperimentError(
            f"{source}: job-failure 'error' must be a dict with "
            f"'type' and 'message', got {error!r}"
        )
    require(payload, "id", source)
    return payload


def run_result_to_dict(result: Any) -> Dict[str, Any]:
    """A plain-dict form of a :class:`~repro.harness.runner.RunResult`.

    Drops the (unserializable, optional) ``device`` handle and the
    in-memory-only ``resumed_from`` provenance; everything else —
    including recovery events — round-trips losslessly through
    :func:`run_result_from_dict`, which is what the single-run journal
    on the :func:`repro.run` facade replays.
    """
    body = {
        k: v
        for k, v in vars(result).items()
        if k not in ("device", "resumed_from")
    }
    body["recovery"] = [asdict(event) for event in result.recovery]
    return plain(body)


def run_result_from_dict(payload: Dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.harness.runner.RunResult` from
    :func:`run_result_to_dict`."""
    from repro.harness.runner import RecoveryEvent, RunResult

    fields = dict(payload)
    fields["recovery"] = [
        RecoveryEvent(**event) for event in fields.get("recovery", [])
    ]
    return RunResult(**fields)


def device_config_to_dict(config: DeviceConfig) -> Dict[str, Any]:
    """A plain-dict form of a device config (JSON- and pickle-safe)."""
    return plain(asdict(config))


def device_config_from_dict(payload: Dict[str, Any]) -> DeviceConfig:
    """Rebuild a :class:`DeviceConfig` from :func:`device_config_to_dict`.

    Dicts serialized before the topology field existed (no ``topology``
    key) rebuild with the default single-device topology.
    """
    fields = dict(payload)
    timings = fields.pop("timings", None)
    if timings is not None:
        fields["timings"] = CalibratedTimings(**timings)
    topology = fields.pop("topology", None)
    if topology is not None:
        fields["topology"] = Topology(**topology)
    return DeviceConfig(**fields)
