"""repro — Inter-Block GPU Communication via Fast Barrier Synchronization.

A from-scratch reproduction of Xiao & Feng (IPDPS 2010) on a
discrete-event GPU simulator.  See DESIGN.md for the system inventory
and README.md for a quickstart.

Top-level convenience re-exports cover the common workflow::

    from repro import run, FFT, get_strategy

    result = run(FFT(n=2**12), "gpu-lockfree", num_blocks=30)
    print(result.total_ms, result.verified)

Subpackages:

* :mod:`repro.simcore`    — the discrete-event engine
* :mod:`repro.gpu`        — the simulated GTX 280
* :mod:`repro.sync`       — the barrier strategies (the contribution)
* :mod:`repro.model`      — the paper's analytic performance models
* :mod:`repro.algorithms` — FFT, Smith-Waterman, bitonic sort, micro
* :mod:`repro.harness`    — experiment drivers for every table/figure
* :mod:`repro.sanitize`   — barrier sanitizer + schedule fuzzer
* :mod:`repro.faults`     — fault injection + resilient-runtime pieces
* :mod:`repro.parallel`   — fan-out executor + content-addressed cache
"""

from repro.algorithms import (
    BitonicSort,
    FFT,
    JacobiPoisson,
    MeanMicrobench,
    PrefixSum,
    Reduction,
    RoundAlgorithm,
    SmithWaterman,
    VerificationError,
)
from repro.errors import (
    BarrierTimeoutError,
    ConfigError,
    DeadlockError,
    FaultError,
    LaunchError,
    OccupancyError,
    ReproError,
    RetryExhaustedError,
    SimulationError,
    SyncProtocolError,
)
from repro.faults import (
    BarrierWatchdog,
    ChaosReport,
    FaultPlan,
    FaultSpec,
    chaos_campaign,
    fault_plans,
)
from repro.gpu import (
    Device,
    DeviceConfig,
    Event,
    Host,
    KernelSpec,
    StageCostModel,
    Stream,
    Topology,
    get_preset,
    gtx280,
    preset_names,
)
from repro.api import run
from repro.errors import ExecutorError
from repro.harness import (
    DegradePolicy,
    RetryPolicy,
    RunResult,
)
from repro.parallel import Executor, ResultCache
from repro.sanitize import (
    Finding,
    SanitizeReport,
    SanitizerProbe,
    ScheduleFuzzer,
    sanitize_run,
)
from repro.sync import (
    CpuExplicitSync,
    CpuImplicitSync,
    GpuClusterTreeSync,
    GpuDisseminationSync,
    GpuLockFreeSync,
    GpuSenseReversalSync,
    GpuSimpleSync,
    GpuTreeSync,
    NullSync,
    SyncStrategy,
    get_strategy,
    strategy_names,
)

__version__ = "1.0.0"

__all__ = [
    "BarrierTimeoutError",
    "BarrierWatchdog",
    "BitonicSort",
    "ChaosReport",
    "ConfigError",
    "CpuExplicitSync",
    "CpuImplicitSync",
    "DeadlockError",
    "DegradePolicy",
    "Device",
    "DeviceConfig",
    "Event",
    "Executor",
    "ExecutorError",
    "FFT",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "Finding",
    "GpuClusterTreeSync",
    "GpuDisseminationSync",
    "GpuLockFreeSync",
    "GpuSenseReversalSync",
    "GpuSimpleSync",
    "GpuTreeSync",
    "Host",
    "JacobiPoisson",
    "KernelSpec",
    "LaunchError",
    "MeanMicrobench",
    "NullSync",
    "OccupancyError",
    "PrefixSum",
    "Reduction",
    "ReproError",
    "ResultCache",
    "RetryExhaustedError",
    "RetryPolicy",
    "RoundAlgorithm",
    "RunResult",
    "SanitizeReport",
    "SanitizerProbe",
    "ScheduleFuzzer",
    "SimulationError",
    "SmithWaterman",
    "StageCostModel",
    "Stream",
    "SyncProtocolError",
    "SyncStrategy",
    "Topology",
    "VerificationError",
    "__version__",
    "chaos_campaign",
    "fault_plans",
    "get_preset",
    "get_strategy",
    "gtx280",
    "preset_names",
    "run",
    "sanitize_run",
    "strategy_names",
]
