"""Sanitizer detectors: occupancy, barrier-event and happens-before checks.

Three families of checks, mapped to the paper's hazards:

* **static occupancy** (:func:`check_occupancy`) — the §5 co-residency
  rule, checked *before* the engine starves: a device barrier whose grid
  exceeds one block per SM can never complete because blocks are
  non-preemptive;
* **barrier events** (:func:`barrier_findings`) — from the probe's live
  enter/exit stream: divergence (a block skipped a round others entered),
  premature release (an exit before every block entered — the barrier
  guarantee itself), and stuck rounds (entered, never exited);
* **happens-before** (:func:`race_findings`,
  :func:`round_ordering_violations`) — the barrier-round happens-before
  order: accesses by different blocks in the same epoch conflict unless a
  grid barrier separates them.  Derived from the probe's access events
  and corroborated structurally from :class:`repro.simcore.trace.Trace`
  compute spans.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sanitize.probe import SanitizerProbe
from repro.sanitize.report import Finding

__all__ = [
    "barrier_findings",
    "check_occupancy",
    "race_findings",
    "round_ordering_violations",
]


def check_occupancy(
    strategy, config, num_blocks: int, threads_per_block: int = 256
) -> List[Finding]:
    """Flag grids a device-side barrier can never synchronize.

    Mirrors :meth:`repro.sync.base.SyncStrategy.validate_grid` but
    *reports* instead of raising, and cross-checks the strategy's own
    limit against the scheduler's occupancy math for the launch shape
    the strategy would request.
    """
    if strategy.mode != "device" or num_blocks < 1:
        return []
    per_sm = config.blocks_per_sm(
        threads_per_block, strategy.shared_mem_request(config)
    )
    capacity = min(strategy.max_blocks(config), per_sm * config.num_sms)
    if num_blocks <= capacity:
        return []
    return [
        Finding(
            kind="occupancy-deadlock",
            message=(
                f"{num_blocks} blocks exceed the {capacity}-block "
                f"co-resident capacity of {strategy.name} on {config.name}; "
                "resident blocks would spin at the barrier forever while "
                "the rest starve for an SM slot"
            ),
            details={
                "num_blocks": num_blocks,
                "capacity": capacity,
                "num_sms": config.num_sms,
                "blocks_per_sm": per_sm,
            },
        )
    ]


def barrier_findings(
    probe: SanitizerProbe,
    num_blocks: int,
    seed: Optional[int] = None,
    deadlocked: bool = False,
) -> List[Finding]:
    """Divergence, premature-release and stuck-round checks."""
    findings: List[Finding] = []

    # Divergence: a block entered some later round without entering an
    # earlier one that other blocks entered.  (Merely "not yet entered"
    # is not divergence — a deadlock elsewhere can freeze stragglers.)
    entered = probe.entered_rounds()
    all_rounds = probe.rounds_seen()
    for block, rounds in entered.items():
        if not rounds:
            continue
        latest = rounds[-1]
        skipped = [r for r in all_rounds if r < latest and r not in rounds]
        if skipped:
            findings.append(
                Finding(
                    kind="barrier-divergence",
                    message=(
                        f"block {block} entered barrier round {latest} but "
                        f"skipped round(s) {skipped} that other blocks "
                        "synchronized on"
                    ),
                    seed=seed,
                    details={"block": block, "skipped": skipped},
                )
            )

    # Premature release: the barrier guarantee is that no block exits
    # round r before every participating block entered round r.
    for r in all_rounds:
        enters, exits = probe.round_window(r)
        if not exits or not enters:
            # Nobody released (deadlock mid-flight): stuck check below.
            continue
        first_exit_block = min(exits, key=lambda b: (exits[b], b))
        last_enter_block = max(enters, key=lambda b: (enters[b], b))
        if exits[first_exit_block] < enters[last_enter_block]:
            findings.append(
                Finding(
                    kind="premature-release",
                    message=(
                        f"round {r}: block {first_exit_block} exited the "
                        f"barrier before block {last_enter_block} entered it"
                    ),
                    seed=seed,
                    details={
                        "round": r,
                        "exit_block": first_exit_block,
                        "exit_ns": exits[first_exit_block],
                        "enter_block": last_enter_block,
                        "enter_ns": enters[last_enter_block],
                    },
                )
            )

    # Stuck rounds: only meaningful when the run could not finish —
    # during a healthy run the probe is always consistent at the end.
    if deadlocked:
        stuck = probe.stuck_blocks()
        if stuck:
            rounds = sorted({r for _b, r in stuck})
            blocks = [b for b, _r in stuck]
            findings.append(
                Finding(
                    kind="barrier-deadlock",
                    message=(
                        f"{len(blocks)} block(s) entered barrier round(s) "
                        f"{rounds} and never exited before the run "
                        "deadlocked (blocks: "
                        f"{blocks[:8]}{'…' if len(blocks) > 8 else ''})"
                    ),
                    seed=seed,
                    details={"stuck": stuck},
                )
            )
        elif not probe.barrier_events:
            findings.append(
                Finding(
                    kind="barrier-deadlock",
                    message=(
                        "the run deadlocked before any block reached a "
                        "barrier (blocks starved outside the protocol)"
                    ),
                    seed=seed,
                )
            )
    return findings


def race_findings(
    probe: SanitizerProbe, seed: Optional[int] = None
) -> List[Finding]:
    """Conflicting same-epoch accesses with no intervening barrier.

    Happens-before is the barrier-round order: accesses in different
    epochs of one block's timeline are ordered by the grid barrier
    between them; same-epoch accesses by different blocks are unordered.
    Accesses issued *inside* a barrier protocol are the synchronization
    itself and are exempt, as are ``spin_until`` observations (they are
    ordering edges, not data).  Benign combinations: read/read and
    atomic/atomic (the atomic unit serializes).
    """
    findings: List[Finding] = []
    # (kernel, array, epoch, cell) → block → set of kinds.
    by_cell: Dict[Tuple[str, str, int, int], Dict[int, set]] = {}
    for ev in probe.accesses:
        if ev.in_barrier or ev.kind == "spin":
            continue
        for cell in ev.cells:
            key = (ev.kernel, ev.array, ev.epoch, cell)
            by_cell.setdefault(key, {}).setdefault(ev.block, set()).add(ev.kind)

    for (kernel, array, epoch, cell), per_block in sorted(by_cell.items()):
        if len(per_block) < 2:
            continue
        writers = sorted(b for b, kinds in per_block.items() if "write" in kinds)
        atomics = sorted(b for b, kinds in per_block.items() if "atomic" in kinds)
        readers = sorted(b for b, kinds in per_block.items() if "read" in kinds)
        racy = (
            len(writers) >= 2
            or (writers and len(per_block) >= 2)
            or (atomics and (readers or writers))
        )
        # atomic/atomic only, or read/read only: synchronized / harmless.
        if not racy:
            continue
        kinds = "/".join(
            k
            for k, present in (
                ("write", writers),
                ("atomic", atomics),
                ("read", readers),
            )
            if present
        )
        involved = sorted(per_block)
        findings.append(
            Finding(
                kind="data-race",
                message=(
                    f"{array}[{cell}]: {kinds} conflict between blocks "
                    f"{involved} in barrier epoch {epoch} of kernel "
                    f"{kernel!r} with no barrier in between"
                ),
                seed=seed,
                details={
                    "array": array,
                    "cell": cell,
                    "epoch": epoch,
                    "blocks": involved,
                    "writers": writers,
                    "atomics": atomics,
                    "readers": readers,
                },
            )
        )
    return findings


def round_ordering_violations(trace) -> List[Dict[str, Any]]:
    """Span-level check of the fundamental round invariant.

    From the device trace's ``compute`` spans (each tagged with its
    round): *no block enters round i+1 before every block left round i*.
    Returns one record per violated round boundary; empty means the
    invariant held structurally.
    """
    starts: Dict[int, int] = {}
    ends: Dict[int, int] = {}
    for span in trace.spans(phase="compute"):
        meta = span.meta or {}
        if "round" not in meta:
            continue
        r = meta["round"]
        starts[r] = min(starts.get(r, span.start), span.start)
        ends[r] = max(ends.get(r, span.end), span.end)
    violations: List[Dict[str, Any]] = []
    for r in sorted(starts):
        if r + 1 not in starts:
            continue
        if starts[r + 1] < ends[r]:
            violations.append(
                {
                    "round": r,
                    "latest_end_ns": ends[r],
                    "next_round_start_ns": starts[r + 1],
                }
            )
    return violations
