"""Pytest integration for the sanitizer and schedule fuzzer.

Loaded via ``pytest_plugins = ("repro.sanitize.pytest_plugin",)`` in the
repo-root ``conftest.py``.  Adds:

* ``--sanitize`` — deep-fuzz mode: tests that size their work from the
  ``fuzz_schedule_count`` fixture run many more schedules;
* ``--fuzz-seed N`` — override the base schedule seed (every failure
  report prints the derived seed that exposed it, so pasting that seed
  here replays the exact interleaving);
* ``--fuzz-schedules N`` — override the schedule count directly;
* fixtures ``sanitize_enabled``, ``fuzz_seed``, ``fuzz_schedule_count``,
  ``fuzz_schedules`` (a ``(seed, n)`` factory of seeded
  :class:`~repro.sanitize.fuzzer.ScheduleFuzzer` streams) and
  ``sanitized_run`` (:func:`~repro.sanitize.sanitizer.sanitize_run`
  pre-wired to the session's seed and count);
* a ``sanitize`` marker for selecting the fuzz-heavy tests with
  ``-m sanitize``.
"""

from __future__ import annotations

from typing import Iterator, Optional

import pytest

from repro.sanitize.fuzzer import ScheduleFuzzer
from repro.sanitize.fuzzer import fuzz_schedules as _fuzz_schedules
from repro.sanitize.sanitizer import DEFAULT_SEED, sanitize_run

__all__ = ["pytest_addoption", "pytest_configure", "pytest_report_header"]

#: schedules per fuzz loop in a plain run vs. under ``--sanitize``.
QUICK_SCHEDULES = 10
DEEP_SCHEDULES = 100


def pytest_addoption(parser) -> None:
    group = parser.getgroup("sanitize", "barrier sanitizer / schedule fuzzer")
    group.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="deep-fuzz mode: run the full schedule budget per sanitize test",
    )
    group.addoption(
        "--fuzz-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="base schedule seed (default %d); failure reports print the "
        "derived seed to pass here for an exact replay" % DEFAULT_SEED,
    )
    group.addoption(
        "--fuzz-schedules",
        type=int,
        default=None,
        metavar="N",
        help="fuzzed schedules per sanitize loop (default: %d, or %d "
        "with --sanitize)" % (QUICK_SCHEDULES, DEEP_SCHEDULES),
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "sanitize: fuzz-heavy sanitizer test (scale with --sanitize, "
        "select with -m sanitize)",
    )


def pytest_report_header(config) -> str:
    seed = config.getoption("--fuzz-seed")
    n = config.getoption("--fuzz-schedules")
    deep = config.getoption("--sanitize")
    return "sanitize: %s, fuzz seed %s, %s schedules/loop" % (
        "deep" if deep else "quick",
        DEFAULT_SEED if seed is None else seed,
        (DEEP_SCHEDULES if deep else QUICK_SCHEDULES) if n is None else n,
    )


@pytest.fixture
def sanitize_enabled(request) -> bool:
    """True when the run was started with ``--sanitize``."""
    return bool(request.config.getoption("--sanitize"))


@pytest.fixture
def fuzz_seed(request) -> int:
    """The session's base schedule seed (``--fuzz-seed`` or the default)."""
    seed = request.config.getoption("--fuzz-seed")
    return DEFAULT_SEED if seed is None else int(seed)


@pytest.fixture
def fuzz_schedule_count(request, sanitize_enabled) -> int:
    """Schedules per fuzz loop for this session."""
    n = request.config.getoption("--fuzz-schedules")
    if n is not None:
        return int(n)
    return DEEP_SCHEDULES if sanitize_enabled else QUICK_SCHEDULES


@pytest.fixture
def fuzz_schedules(fuzz_seed, fuzz_schedule_count):
    """Factory of seeded fuzzer streams: ``fuzz_schedules(seed, n)``.

    Both arguments default to the session's options, so a test writes
    ``for fuzzer in fuzz_schedules(): ...`` and scales automatically.
    """

    def make(
        seed: Optional[int] = None, n: Optional[int] = None
    ) -> Iterator[ScheduleFuzzer]:
        return _fuzz_schedules(
            fuzz_seed if seed is None else seed,
            fuzz_schedule_count if n is None else n,
        )

    return make


@pytest.fixture
def sanitized_run(fuzz_seed, fuzz_schedule_count):
    """:func:`sanitize_run` pre-wired to the session's seed and count."""

    def call(algorithm=None, strategy="gpu-lockfree", num_blocks=8, **kwargs):
        kwargs.setdefault("seed", fuzz_seed)
        kwargs.setdefault("schedules", fuzz_schedule_count)
        return sanitize_run(algorithm, strategy, num_blocks, **kwargs)

    return call
