"""Seeded schedule fuzzing: deterministic adversarial interleavings.

The simulator is FIFO-deterministic: events at equal virtual times run
in scheduling order.  Real hardware makes no such promise — warp
schedulers and block dispatchers interleave freely — so a barrier
protocol that only works under FIFO dispatch is broken even though the
plain simulation never shows it.  :class:`ScheduleFuzzer` perturbs
exactly the orderings hardware leaves unspecified:

* **ready-queue order** — same-time events in the engine's heap pop in
  a seeded pseudo-random order (:meth:`queue_priority` feeds
  ``Engine(tiebreak=...)``);
* **block placement** — ties between equally-loaded SMs are broken by
  a seeded choice (:meth:`sm_tiebreak` feeds ``SmPlacement``), which
  also permutes *which* blocks become resident when a grid exceeds
  co-resident capacity.

Virtual timestamps are untouched, so fuzzed runs remain valid
measurements.  Everything is a pure function of the seed: the same seed
replays the same schedule, which is why failure reports always carry it.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List

__all__ = ["ScheduleFuzzer", "derive_seeds", "fuzz_schedules", "seed_payloads"]


def derive_seeds(seed: int, n: int) -> List[int]:
    """``n`` independent schedule seeds derived from one base seed.

    Splitting through a dedicated PRNG keeps the per-schedule seeds
    stable under changes to ``n``: seed ``i`` of 100 equals seed ``i``
    of 10, so a failure found in a long campaign replays in a short one.
    """
    if n < 0:
        raise ValueError(f"need n >= 0 schedules, got {n}")
    rng = random.Random(seed)
    return [rng.getrandbits(63) for _ in range(n)]


def seed_payloads(
    seed: int, n: int, base: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """One executor payload per derived seed: ``{**base, "seed": s}``.

    The bridge between seed derivation and the
    :class:`repro.parallel.Executor`: campaigns (chaos plans, sanitizer
    schedules) fan out one payload per schedule seed, all sharing the
    ``base`` configuration.  Payload ``i`` is stable under changes to
    ``n`` — the same property :func:`derive_seeds` guarantees — so cached
    results survive campaign resizing.
    """
    return [{**base, "seed": derived} for derived in derive_seeds(seed, n)]


class ScheduleFuzzer:
    """One seeded permutation layer over scheduler and engine ordering.

    Use one instance per simulated run — the internal PRNG advances with
    every scheduling decision, so sharing an instance across runs makes
    the second run's schedule depend on the first's length.
    """

    def __init__(self, seed: int):
        #: the seed that reproduces this exact schedule.
        self.seed = seed
        self._rng = random.Random(seed)
        #: scheduling decisions influenced so far (diagnostics).
        self.decisions = 0

    def queue_priority(self) -> float:
        """Priority for the next engine event among same-time peers."""
        self.decisions += 1
        return self._rng.random()

    def sm_tiebreak(self, candidates: List[int]) -> int:
        """Choose among equally-least-loaded SMs."""
        self.decisions += 1
        return self._rng.choice(candidates)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScheduleFuzzer(seed={self.seed})"


def fuzz_schedules(seed: int, n: int) -> Iterator[ScheduleFuzzer]:
    """Yield ``n`` fresh fuzzers with seeds derived from ``seed``.

    The generator form mirrors the pytest fixture of the same name
    (:mod:`repro.sanitize.pytest_plugin`)::

        for fuzzer in fuzz_schedules(seed=2010, n=100):
            run(algo, strategy, blocks, fuzzer=fuzzer)
    """
    for derived in derive_seeds(seed, n):
        yield ScheduleFuzzer(derived)
