"""Seeded-bug barrier variants: the sanitizer's own test fixtures.

Each mutant plants one realistic defect in a shipped strategy — the
kind of bug the paper's protocols are one typo away from — and exists
so the sanitizer can prove it *detects* things, not just that correct
code passes.  They are registered under ``broken-*`` names (never
selected by experiments) and each documents the finding kinds it must
trigger; ``tests/sanitize/test_mutation.py`` holds it to that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.simcore.effects import WaitSpec
from repro.sync.base import register_strategy
from repro.sync.gpu_lockfree import GpuLockFreeSync
from repro.sync.gpu_simple import GpuSimpleSync

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx

__all__ = [
    "BrokenLockFreeNoScatter",
    "BrokenSimpleSkipRound",
    "BrokenSimpleUndercount",
]


class BrokenLockFreeNoScatter(GpuLockFreeSync):
    """Lock-free barrier whose checker never scatters to ``Arrayout``.

    The checking block gathers ``Arrayin`` correctly but the release
    store of Fig. 9 step 2 is dropped, so every block (checker included)
    spins on ``Arrayout`` forever.  Must be flagged as
    ``barrier-deadlock``.
    """

    name = "broken-lockfree-noscatter"

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator:
        arr_in, arr_out = self._array_in, self._array_out
        bid = ctx.block_id
        goal = round_idx + 1
        yield from ctx.compute(
            ctx.timings.lockfree_overhead_ns, phase="sync-overhead"
        )
        yield from ctx.gwrite(arr_in, bid, goal)
        if bid == self.checker_block:
            yield from ctx.spin_until(
                arr_in,
                lambda a=arr_in, g=goal: bool((a.data >= g).all()),
                f"Arrayin all set (round {round_idx})", spec=WaitSpec(goal),
            )
            yield from ctx.syncthreads()
            # BUG: the Arrayout scatter is missing here.
        yield from ctx.spin_until(  # repro: noqa SC008
            arr_out,
            lambda a=arr_out, b=bid, g=goal: a.data[b] >= g,
            f"Arrayout[{bid}] (round {round_idx})", spec=WaitSpec(goal, lo=bid),
        )
        yield from ctx.syncthreads()


class BrokenSimpleUndercount(GpuSimpleSync):
    """Simple barrier whose accumulating ``goalVal`` is under-counted.

    ``goalVal`` is ``round·N + 1`` instead of ``(round+1)·N``: the first
    block to arrive satisfies the goal and releases everyone, so the
    barrier opens ``N-1`` arrivals early every round.  Under skewed
    block timing this must be flagged as ``premature-release`` (and
    shows up as ``round-overlap`` in the trace).
    """

    name = "broken-simple-undercount"

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator:
        mutex = self._mutex
        n = ctx.num_blocks
        goal = round_idx * n + 1  # BUG: not (round_idx + 1) * n  # repro: noqa SC005
        yield from ctx.atomic_add(mutex, 0, 1)
        yield from ctx.spin_until(
            mutex, lambda: mutex.data[0] >= goal, f"g_mutex>={goal} (broken)", spec=WaitSpec(goal, lo=0)
        )
        yield from ctx.syncthreads()


class BrokenSimpleSkipRound(GpuSimpleSync):
    """Simple barrier that one block skips in round 0.

    Models the divergence bug the paper's Fig. 4 structure forbids: the
    last block takes a branch with no ``__gpu_sync`` call in the first
    round, so the grid disagrees on how many rounds were synchronized
    and the accumulating mutex count is permanently short.  Must be
    flagged as ``barrier-divergence`` (with the ensuing
    ``barrier-deadlock`` once the count deficit starves the grid).
    """

    name = "broken-simple-skipround"

    def instrumented_barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator:
        if round_idx == 0 and ctx.block_id == ctx.num_blocks - 1:  # repro: noqa SC001
            return  # BUG: this block never synchronizes round 0
        yield from super().instrumented_barrier(ctx, round_idx)


register_strategy("broken-lockfree-noscatter", BrokenLockFreeNoScatter)
register_strategy("broken-simple-undercount", BrokenSimpleUndercount)
register_strategy("broken-simple-skipround", BrokenSimpleSkipRound)
