"""The instrumentation probe: live observation of a sanitized run.

A :class:`SanitizerProbe` registers on ``Device.probes`` and receives
two event streams while the simulation runs:

* **barrier events** from
  :meth:`repro.sync.base.SyncStrategy.instrumented_barrier` — every
  block's entry into and exit from each barrier round, timestamped in
  virtual time;
* **global-memory accesses** from :class:`repro.gpu.context.BlockCtx` —
  every ``gread``/``gwrite``/``atomic_add``/``spin_until``, tagged with
  the issuing block, the touched cells, and the block's current barrier
  *epoch* (completed rounds).

Collecting live (rather than post-hoc from the trace) matters for the
deadlock cases: a block stuck inside a barrier never records its trace
span, but its enter event is already here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["AccessEvent", "BarrierEvent", "SanitizerProbe"]


@dataclass(frozen=True)
class BarrierEvent:
    """One block entering or exiting one barrier round."""

    kernel: str
    block: int
    round: int
    kind: str  #: ``"enter"`` or ``"exit"``
    time: int  #: virtual ns


@dataclass(frozen=True)
class AccessEvent:
    """One global-memory access by one block."""

    kernel: str
    block: int
    array: str
    cells: Tuple[int, ...]  #: flattened element indices touched
    kind: str  #: ``"read"``, ``"write"``, ``"atomic"`` or ``"spin"``
    time: int  #: virtual ns
    epoch: int  #: barrier rounds the block had completed at access time
    in_barrier: bool  #: issued from inside a barrier protocol


def _flatten_cells(array, index: Any) -> Tuple[int, ...]:
    """Flattened element ids an index expression touches.

    Indexing an array of element ids with the caller's expression makes
    every NumPy index form (scalar, slice, tuple, fancy) resolve to the
    exact cell set without re-implementing indexing semantics.
    """
    if index is None:
        return ()
    ids = np.arange(array.data.size).reshape(array.data.shape)
    return tuple(int(c) for c in np.atleast_1d(ids[index]).ravel())


class SanitizerProbe:
    """Collects barrier and access events for one simulated run."""

    def __init__(self) -> None:
        self.barrier_events: List[BarrierEvent] = []
        self.accesses: List[AccessEvent] = []
        #: (kernel, block) → completed barrier rounds.
        self._epoch: Dict[Tuple[str, int], int] = {}
        #: (kernel, block) → round currently inside (None when outside).
        self._inside: Dict[Tuple[str, int], Optional[int]] = {}

    # -- hooks called by the device model ------------------------------------

    def on_barrier_enter(self, ctx, strategy, round_idx: int) -> None:
        key = (ctx.kernel_name, ctx.block_id)
        self._inside[key] = round_idx
        self.barrier_events.append(
            BarrierEvent(ctx.kernel_name, ctx.block_id, round_idx, "enter", ctx.now)
        )

    def on_barrier_exit(self, ctx, strategy, round_idx: int) -> None:
        key = (ctx.kernel_name, ctx.block_id)
        self._inside[key] = None
        self._epoch[key] = self._epoch.get(key, 0) + 1
        self.barrier_events.append(
            BarrierEvent(ctx.kernel_name, ctx.block_id, round_idx, "exit", ctx.now)
        )

    def on_access(self, ctx, array, index: Any, kind: str) -> None:
        key = (ctx.kernel_name, ctx.block_id)
        self.accesses.append(
            AccessEvent(
                kernel=ctx.kernel_name,
                block=ctx.block_id,
                array=array.name,
                cells=_flatten_cells(array, index),
                kind=kind,
                time=ctx.now,
                epoch=self._epoch.get(key, 0),
                in_barrier=self._inside.get(key) is not None,
            )
        )

    # -- post-run introspection ----------------------------------------------

    def entered_rounds(self) -> Dict[int, List[int]]:
        """Block id → sorted list of barrier rounds the block entered."""
        seen: Dict[int, set] = {}
        for ev in self.barrier_events:
            if ev.kind == "enter":
                seen.setdefault(ev.block, set()).add(ev.round)
        return {b: sorted(rounds) for b, rounds in sorted(seen.items())}

    def stuck_blocks(self) -> List[Tuple[int, int]]:
        """``(block, round)`` pairs that entered a barrier but never exited."""
        pending: Dict[Tuple[str, int], int] = {}
        for ev in self.barrier_events:
            key = (ev.kernel, ev.block)
            if ev.kind == "enter":
                pending[key] = ev.round
            else:
                pending.pop(key, None)
        return sorted((block, rnd) for (_k, block), rnd in pending.items())

    def round_window(self, round_idx: int) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Per-block enter and exit times of one barrier round."""
        enters: Dict[int, int] = {}
        exits: Dict[int, int] = {}
        for ev in self.barrier_events:
            if ev.round != round_idx:
                continue
            target = enters if ev.kind == "enter" else exits
            target.setdefault(ev.block, ev.time)
        return enters, exits

    def rounds_seen(self) -> List[int]:
        """All barrier round indices any block entered, sorted."""
        return sorted({ev.round for ev in self.barrier_events if ev.kind == "enter"})
