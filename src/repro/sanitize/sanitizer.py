"""``sanitize_run``: replay a configuration under fuzzed schedules.

The top of the sanitizer stack.  One call:

1. statically checks the §5 occupancy rule (and reports instead of
   starving the engine);
2. replays the configuration under ``schedules`` seeded adversarial
   interleavings (:class:`~repro.sanitize.fuzzer.ScheduleFuzzer`), each
   with instrumented execution
   (:class:`~repro.sanitize.probe.SanitizerProbe`);
3. runs every detector (:mod:`repro.sanitize.analysis`) on each
   schedule's event streams and trace;
4. aggregates everything into one deterministic
   :class:`~repro.sanitize.report.SanitizeReport` — same seed, same
   configuration ⇒ byte-identical report, and every finding carries the
   schedule seed that replays it.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.microbench import MeanMicrobench
from repro.errors import DeadlockError, KernelTimeoutError, ReproError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.sanitize.analysis import (
    barrier_findings,
    check_occupancy,
    race_findings,
    round_ordering_violations,
)
from repro.sanitize.fuzzer import ScheduleFuzzer, derive_seeds, seed_payloads
from repro.sanitize.probe import SanitizerProbe
from repro.sanitize.report import Finding, SanitizeReport
from repro.serialization import device_config_from_dict, device_config_to_dict, plain
from repro.sync.base import SyncStrategy, get_strategy

__all__ = ["DEFAULT_SEED", "SkewedMicrobench", "sanitize_run"]

#: default base seed (the paper's publication year, for memorability).
DEFAULT_SEED = 2010


class SkewedMicrobench(MeanMicrobench):
    """The micro-benchmark with deliberately uneven per-block rounds.

    Block ``b``'s round costs ``(1 + b % 3)×`` the base, so blocks reach
    each barrier at well-separated times.  Uniform-cost workloads keep
    blocks in accidental lockstep, which masks premature-release bugs —
    the schedule fuzzer permutes *order*, not *time*, so the sanitizer's
    default workload builds the time skew in.
    """

    name = "micro-skewed"

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        return super().round_cost(round_idx, block_id, num_blocks) * (
            1 + block_id % 3
        )


def _run_one_schedule(
    algorithm: RoundAlgorithm,
    strategy: Union[str, SyncStrategy],
    named: bool,
    num_blocks: int,
    threads_per_block: Optional[int],
    cfg: DeviceConfig,
    schedule_seed: int,
    jitter_pct: float,
    verify: bool,
) -> Tuple[List[Finding], int, int]:
    """One fuzzed schedule → (findings in detection order, event counts)."""
    from repro.harness.runner import run  # late: harness imports sanitize types

    strat = get_strategy(strategy) if named else strategy
    fuzzer = ScheduleFuzzer(schedule_seed)
    probe = SanitizerProbe()
    findings: List[Finding] = []
    deadlocked = False
    result = None
    try:
        result = run(
            algorithm,
            strat,
            num_blocks,
            threads_per_block=threads_per_block,
            config=cfg,
            verify=False,
            monitor_races=True,
            keep_device=True,
            jitter_pct=jitter_pct,
            jitter_seed=schedule_seed,
            fuzzer=fuzzer,
            probe=probe,
        )
    except (DeadlockError, KernelTimeoutError) as exc:
        deadlocked = True
        if isinstance(exc, KernelTimeoutError):
            findings.append(
                Finding(
                    kind="simulation-error",
                    message=f"watchdog fired: {exc}",
                    seed=schedule_seed,
                )
            )
    except ReproError as exc:
        findings.append(
            Finding(
                kind="simulation-error",
                message=f"{type(exc).__name__}: {exc}",
                seed=schedule_seed,
            )
        )

    findings.extend(
        barrier_findings(
            probe, num_blocks, seed=schedule_seed, deadlocked=deadlocked
        )
    )
    findings.extend(race_findings(probe, seed=schedule_seed))

    if result is not None:
        for violation in round_ordering_violations(result.device.trace):
            findings.append(
                Finding(
                    kind="round-overlap",
                    message=(
                        f"round {violation['round'] + 1} work began at "
                        f"{violation['next_round_start_ns']} ns, before "
                        f"round {violation['round']} finished at "
                        f"{violation['latest_end_ns']} ns"
                    ),
                    seed=schedule_seed,
                    details={
                        **violation,
                        "monitor_violations": result.violations,
                    },
                )
            )
        if verify and strat.name != "null":
            try:
                algorithm.verify()
            except VerificationError as exc:
                findings.append(
                    Finding(
                        kind="verification-failed",
                        message=str(exc).splitlines()[0],
                        seed=schedule_seed,
                    )
                )

    return findings, len(probe.barrier_events), len(probe.accesses)


def schedule_result_from_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The ``sanitize-schedule`` worker body: payload dict → result dict.

    The algorithm arrives as a spec (rebuilt seeded in the worker) and
    the strategy as a registered name — the same restriction that gates
    the parallel path in :func:`sanitize_run`.
    """
    from repro.parallel.workers import build_algorithm

    algorithm = build_algorithm(payload["algorithm"])
    cfg = (
        device_config_from_dict(payload["device"])
        if payload.get("device")
        else get_preset("gtx280")
    )
    findings, barrier_events, access_events = _run_one_schedule(
        algorithm,
        payload["strategy"],
        True,
        payload["num_blocks"],
        payload.get("threads_per_block"),
        cfg,
        payload["seed"],
        payload["jitter_pct"],
        payload["verify"],
    )
    return plain(
        {
            "findings": [asdict(f) for f in findings],
            "barrier_events": barrier_events,
            "access_events": access_events,
        }
    )


def sanitize_run(
    algorithm: Optional[RoundAlgorithm] = None,
    strategy: Union[str, SyncStrategy] = "gpu-lockfree",
    num_blocks: int = 8,
    *,
    config: Optional[DeviceConfig] = None,
    seed: int = DEFAULT_SEED,
    schedules: int = 25,
    threads_per_block: Optional[int] = None,
    jitter_pct: float = 25.0,
    verify: bool = True,
    fail_fast: bool = False,
    executor=None,
    resume: Optional[str] = None,
) -> SanitizeReport:
    """Sanitize one (algorithm × strategy × grid) configuration.

    ``algorithm`` defaults to a :class:`SkewedMicrobench` sized to the
    grid.  ``strategy`` may be a registered name (a fresh instance is
    built per schedule) or an instance (re-``prepare``\\ d per schedule).
    ``schedules`` fuzzed interleavings run, each with a seed derived
    from ``seed`` and additional compute-time skew from the runner's
    jitter model (``jitter_pct``, same derived seed).  ``fail_fast``
    stops after the first flagged schedule.

    ``executor`` (:class:`repro.parallel.Executor`) shards the campaign
    per schedule seed; schedule results merge back in seed order, so the
    report — findings, occurrence counts, flagged tally — is identical
    to the serial run's.  The parallel path needs a portable
    configuration: the default algorithm and a strategy *name*.  A
    custom algorithm instance or strategy instance keeps the run serial.

    ``resume`` replays a journaled earlier invocation of the same
    parallel campaign (docs/resilience.md).  Under an
    ``on_poison="mark"`` executor, a schedule whose payload repeatedly
    killed its worker surfaces as a ``simulation-error`` finding (the
    schedule was quarantined, not silently skipped); the report's
    ``retries``/``quarantined``/``resumed_from`` fields carry the
    batch's partial-failure provenance.

    Never raises for bugs it detects — deadlocks, divergence, races and
    verification failures all come back as findings in the report.
    """
    cfg = config or get_preset("gtx280")
    named = isinstance(strategy, str)
    resolved = get_strategy(strategy) if named else strategy
    spec: Optional[Dict[str, Any]] = None
    if algorithm is None:
        spec = {
            "name": "micro-skewed",
            "rounds": 4,
            "num_blocks_hint": num_blocks,
            "threads_per_block": threads_per_block or 64,
        }
        algorithm = SkewedMicrobench(
            **{k: v for k, v in spec.items() if k != "name"}
        )

    report = SanitizeReport(
        algorithm=algorithm.name,
        strategy=resolved.name,
        num_blocks=num_blocks,
        seed=seed,
        schedules_requested=schedules,
    )

    threads = threads_per_block or algorithm.default_threads
    for finding in check_occupancy(resolved, cfg, num_blocks, threads):
        report.add(finding)
    if not report.clean:
        # Running would only starve the engine; the point is to say so first.
        return report

    if executor is not None and spec is not None and named:
        base = {
            "algorithm": spec,
            "strategy": strategy,
            "num_blocks": num_blocks,
            "threads_per_block": threads_per_block,
            "device": device_config_to_dict(cfg),
            "jitter_pct": jitter_pct,
            "verify": verify,
        }
        from repro.parallel import Quarantined

        schedule_seeds = list(derive_seeds(seed, schedules))
        results = executor.map(
            "sanitize-schedule",
            seed_payloads(seed, schedules, base),
            resume=resume,
        )
        for i, sched in enumerate(results):
            before = sum(report.occurrences.values())
            if isinstance(sched, Quarantined):
                # The schedule's worker died repeatedly; report it as a
                # finding rather than silently dropping the schedule.
                report.add(
                    Finding(
                        kind="simulation-error",
                        message=f"schedule quarantined: {sched.error}",
                        seed=schedule_seeds[i],
                    )
                )
                report.schedules_flagged += 1
                if fail_fast:
                    break
                continue
            report.schedules_run += 1
            report.barrier_events += sched["barrier_events"]
            report.access_events += sched["access_events"]
            for f in sched["findings"]:
                report.add(
                    Finding(
                        kind=f["kind"],
                        message=f["message"],
                        seed=f["seed"],
                        details=f["details"],
                    )
                )
            if sum(report.occurrences.values()) > before:
                report.schedules_flagged += 1
                if fail_fast:
                    break
        stats = executor.last_batch
        if stats is not None:
            report.retries = stats.retries
            report.quarantined = list(stats.quarantined)
            report.resumed_from = stats.resumed_from
        return report

    for schedule_seed in derive_seeds(seed, schedules):
        before = sum(report.occurrences.values())
        findings, barrier_events, access_events = _run_one_schedule(
            algorithm,
            strategy,
            named,
            num_blocks,
            threads_per_block,
            cfg,
            schedule_seed,
            jitter_pct,
            verify,
        )
        report.schedules_run += 1
        report.barrier_events += barrier_events
        report.access_events += access_events
        for finding in findings:
            report.add(finding)

        # Flagged = any finding this schedule, new site or a repeat of one.
        if sum(report.occurrences.values()) > before:
            report.schedules_flagged += 1
            if fail_fast:
                break
    return report
