"""``sanitize_run``: replay a configuration under fuzzed schedules.

The top of the sanitizer stack.  One call:

1. statically checks the §5 occupancy rule (and reports instead of
   starving the engine);
2. replays the configuration under ``schedules`` seeded adversarial
   interleavings (:class:`~repro.sanitize.fuzzer.ScheduleFuzzer`), each
   with instrumented execution
   (:class:`~repro.sanitize.probe.SanitizerProbe`);
3. runs every detector (:mod:`repro.sanitize.analysis`) on each
   schedule's event streams and trace;
4. aggregates everything into one deterministic
   :class:`~repro.sanitize.report.SanitizeReport` — same seed, same
   configuration ⇒ byte-identical report, and every finding carries the
   schedule seed that replays it.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.microbench import MeanMicrobench
from repro.errors import DeadlockError, KernelTimeoutError, ReproError
from repro.gpu.config import DeviceConfig, gtx280
from repro.sanitize.analysis import (
    barrier_findings,
    check_occupancy,
    race_findings,
    round_ordering_violations,
)
from repro.sanitize.fuzzer import ScheduleFuzzer, derive_seeds
from repro.sanitize.probe import SanitizerProbe
from repro.sanitize.report import Finding, SanitizeReport
from repro.sync.base import SyncStrategy, get_strategy

__all__ = ["DEFAULT_SEED", "SkewedMicrobench", "sanitize_run"]

#: default base seed (the paper's publication year, for memorability).
DEFAULT_SEED = 2010


class SkewedMicrobench(MeanMicrobench):
    """The micro-benchmark with deliberately uneven per-block rounds.

    Block ``b``'s round costs ``(1 + b % 3)×`` the base, so blocks reach
    each barrier at well-separated times.  Uniform-cost workloads keep
    blocks in accidental lockstep, which masks premature-release bugs —
    the schedule fuzzer permutes *order*, not *time*, so the sanitizer's
    default workload builds the time skew in.
    """

    name = "micro-skewed"

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        return super().round_cost(round_idx, block_id, num_blocks) * (
            1 + block_id % 3
        )


def sanitize_run(
    algorithm: Optional[RoundAlgorithm] = None,
    strategy: Union[str, SyncStrategy] = "gpu-lockfree",
    num_blocks: int = 8,
    *,
    config: Optional[DeviceConfig] = None,
    seed: int = DEFAULT_SEED,
    schedules: int = 25,
    threads_per_block: Optional[int] = None,
    jitter_pct: float = 25.0,
    verify: bool = True,
    fail_fast: bool = False,
) -> SanitizeReport:
    """Sanitize one (algorithm × strategy × grid) configuration.

    ``algorithm`` defaults to a :class:`SkewedMicrobench` sized to the
    grid.  ``strategy`` may be a registered name (a fresh instance is
    built per schedule) or an instance (re-``prepare``\\ d per schedule).
    ``schedules`` fuzzed interleavings run, each with a seed derived
    from ``seed`` and additional compute-time skew from the runner's
    jitter model (``jitter_pct``, same derived seed).  ``fail_fast``
    stops after the first flagged schedule.

    Never raises for bugs it detects — deadlocks, divergence, races and
    verification failures all come back as findings in the report.
    """
    from repro.harness.runner import run  # late: harness imports sanitize types

    cfg = config or gtx280()
    named = isinstance(strategy, str)
    resolved = get_strategy(strategy) if named else strategy
    if algorithm is None:
        algorithm = SkewedMicrobench(
            rounds=4,
            num_blocks_hint=num_blocks,
            threads_per_block=threads_per_block or 64,
        )

    report = SanitizeReport(
        algorithm=algorithm.name,
        strategy=resolved.name,
        num_blocks=num_blocks,
        seed=seed,
        schedules_requested=schedules,
    )

    threads = threads_per_block or algorithm.default_threads
    for finding in check_occupancy(resolved, cfg, num_blocks, threads):
        report.add(finding)
    if not report.clean:
        # Running would only starve the engine; the point is to say so first.
        return report

    for schedule_seed in derive_seeds(seed, schedules):
        strat = get_strategy(strategy) if named else strategy
        fuzzer = ScheduleFuzzer(schedule_seed)
        probe = SanitizerProbe()
        before = sum(report.occurrences.values())
        deadlocked = False
        result = None
        try:
            result = run(
                algorithm,
                strat,
                num_blocks,
                threads_per_block=threads_per_block,
                config=cfg,
                verify=False,
                monitor_races=True,
                keep_device=True,
                jitter_pct=jitter_pct,
                jitter_seed=schedule_seed,
                fuzzer=fuzzer,
                probe=probe,
            )
        except (DeadlockError, KernelTimeoutError) as exc:
            deadlocked = True
            if isinstance(exc, KernelTimeoutError):
                report.add(
                    Finding(
                        kind="simulation-error",
                        message=f"watchdog fired: {exc}",
                        seed=schedule_seed,
                    )
                )
        except ReproError as exc:
            report.add(
                Finding(
                    kind="simulation-error",
                    message=f"{type(exc).__name__}: {exc}",
                    seed=schedule_seed,
                )
            )

        report.schedules_run += 1
        report.barrier_events += len(probe.barrier_events)
        report.access_events += len(probe.accesses)

        for finding in barrier_findings(
            probe, num_blocks, seed=schedule_seed, deadlocked=deadlocked
        ):
            report.add(finding)
        for finding in race_findings(probe, seed=schedule_seed):
            report.add(finding)

        if result is not None:
            for violation in round_ordering_violations(result.device.trace):
                report.add(
                    Finding(
                        kind="round-overlap",
                        message=(
                            f"round {violation['round'] + 1} work began at "
                            f"{violation['next_round_start_ns']} ns, before "
                            f"round {violation['round']} finished at "
                            f"{violation['latest_end_ns']} ns"
                        ),
                        seed=schedule_seed,
                        details={
                            **violation,
                            "monitor_violations": result.violations,
                        },
                    )
                )
            if verify and strat.name != "null":
                try:
                    algorithm.verify()
                except VerificationError as exc:
                    report.add(
                        Finding(
                            kind="verification-failed",
                            message=str(exc).splitlines()[0],
                            seed=schedule_seed,
                        )
                    )

        # Flagged = any finding this schedule, new site or a repeat of one.
        if sum(report.occurrences.values()) > before:
            report.schedules_flagged += 1
            if fail_fast:
                break
    return report
