"""Sanitizer findings and the deterministic sanitize report.

A finding is one detected bug instance; a report aggregates the
findings of every fuzzed schedule of one configuration.  Rendering is
deterministic — same seed, same configuration ⇒ byte-identical text —
so reports can be diffed, committed, and replayed from the seed they
print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.findings import DYNAMIC_CODES, FINDING_CODES, by_name, format_finding

__all__ = ["Finding", "SanitizeReport", "BUG_CLASSES"]

#: the sanitizer's bug taxonomy → one-line description.  Derived from
#: the shared static/dynamic registry (:mod:`repro.findings`) so the
#: sanitizer and the static linter can never drift apart on vocabulary.
BUG_CLASSES: Dict[str, str] = {
    FINDING_CODES[code].name: FINDING_CODES[code].summary
    for code in DYNAMIC_CODES
}


@dataclass(frozen=True)
class Finding:
    """One detected correctness problem.

    ``fingerprint`` identifies the *site* of the bug (kind + stable
    details) so the same defect found under many schedules aggregates to
    one reported finding with an occurrence count.
    """

    kind: str  #: one of :data:`BUG_CLASSES`
    message: str  #: human-readable one-liner
    seed: Optional[int] = None  #: schedule seed that exposed it
    details: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in BUG_CLASSES:
            raise ValueError(
                f"unknown finding kind {self.kind!r}; "
                f"known: {', '.join(sorted(BUG_CLASSES))}"
            )

    @property
    def fingerprint(self) -> str:
        """Stable identity of the defect site across schedules."""
        return f"{self.kind}:{self.message}"


@dataclass
class SanitizeReport:
    """Everything the sanitizer observed for one configuration."""

    algorithm: str
    strategy: str
    num_blocks: int
    seed: int  #: base seed; schedule i's seed derives from it
    schedules_requested: int
    schedules_run: int = 0
    schedules_flagged: int = 0
    findings: List[Finding] = field(default_factory=list)
    #: fingerprint → occurrence count across schedules.
    occurrences: Dict[str, int] = field(default_factory=dict)
    #: total barrier / access events observed (instrumentation volume).
    barrier_events: int = 0
    access_events: int = 0
    # -- partial-failure provenance (supervised executor campaigns) --
    #: process-level re-executions the parallel supervisor forced.
    retries: int = 0
    #: schedule indices whose payload was quarantined as poison
    #: (surfaced as ``simulation-error`` findings).
    quarantined: List[int] = field(default_factory=list)
    #: run-id this campaign was resumed from, if any.  In-memory only:
    #: excluded from serialization and equality so a resumed campaign
    #: stays bit-identical to an uninterrupted one.
    resumed_from: Optional[str] = field(default=None, compare=False)

    @property
    def clean(self) -> bool:
        """True when no schedule produced any finding."""
        return not self.findings

    def add(self, finding: Finding) -> None:
        """Record a finding, aggregating repeats by fingerprint."""
        fp = finding.fingerprint
        if fp in self.occurrences:
            self.occurrences[fp] += 1
            return
        self.occurrences[fp] = 1
        self.findings.append(finding)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (stable key order)."""
        return {
            "algorithm": self.algorithm,
            "strategy": self.strategy,
            "num_blocks": self.num_blocks,
            "seed": self.seed,
            "schedules_requested": self.schedules_requested,
            "schedules_run": self.schedules_run,
            "schedules_flagged": self.schedules_flagged,
            "clean": self.clean,
            "barrier_events": self.barrier_events,
            "access_events": self.access_events,
            "retries": self.retries,
            "quarantined": list(self.quarantined),
            "findings": [
                {
                    "kind": f.kind,
                    "message": f.message,
                    "seed": f.seed,
                    "occurrences": self.occurrences[f.fingerprint],
                    "details": f.details or {},
                }
                for f in self.findings
            ],
        }

    def to_json(self) -> str:
        """Deterministic JSON in the shared versioned envelope.

        Equal reports render byte-identical text (the property the
        sanitizer's determinism tests and the parallel-parity tests
        assert), and the envelope's schema/kind stamps make stored
        reports fail loudly on format drift.
        """
        from repro.serialization import dump_result

        return dump_result("sanitize-report", self.to_dict())

    @classmethod
    def from_json(
        cls, text: str, *, source: str = "<string>"
    ) -> "SanitizeReport":
        """Rebuild a report from :meth:`to_json` output (typed failures)."""
        from repro.serialization import parse_result, require

        payload = parse_result(text, kind="sanitize-report", source=source)
        report = cls(
            algorithm=require(payload, "algorithm", source),
            strategy=require(payload, "strategy", source),
            num_blocks=require(payload, "num_blocks", source),
            seed=require(payload, "seed", source),
            schedules_requested=require(payload, "schedules_requested", source),
            schedules_run=require(payload, "schedules_run", source),
            schedules_flagged=require(payload, "schedules_flagged", source),
            barrier_events=require(payload, "barrier_events", source),
            access_events=require(payload, "access_events", source),
            retries=int(payload.get("retries", 0)),
            quarantined=list(payload.get("quarantined", [])),
        )
        for entry in require(payload, "findings", source):
            finding = Finding(
                kind=entry["kind"],
                message=entry["message"],
                seed=entry["seed"],
                details=entry["details"] or None,
            )
            report.findings.append(finding)
            report.occurrences[finding.fingerprint] = entry["occurrences"]
        return report

    def render(self) -> str:
        """Deterministic plain-text report."""
        verdict = "CLEAN" if self.clean else f"{len(self.findings)} finding(s)"
        lines = [
            f"sanitize: {self.algorithm} × {self.strategy} × "
            f"{self.num_blocks} blocks — {verdict}",
            f"  seed {self.seed}, schedules {self.schedules_run}/"
            f"{self.schedules_requested} run, {self.schedules_flagged} flagged; "
            f"{self.barrier_events} barrier events, "
            f"{self.access_events} access events",
        ]
        for f in self.findings:
            count = self.occurrences[f.fingerprint]
            seed = f"seed {f.seed}" if f.seed is not None else "pre-run check"
            lines.append(
                "  "
                + format_finding(
                    by_name(f.kind),
                    f.message,
                    suffix=f"first at {seed}; seen in {count} schedule(s)",
                )
            )
        if self.clean and self.schedules_run:
            lines.append(
                "  no divergence, races, premature releases or deadlocks "
                "under any fuzzed schedule"
            )
        return "\n".join(lines)
