"""repro.sanitize — barrier sanitizer and schedule fuzzer.

Correctness tooling for the simulated GPU: replay a kernel under
seeded adversarial schedules with instrumented execution and flag
barrier divergence, premature releases, inter-block data races,
barrier deadlocks and §5 occupancy deadlocks — each finding carrying
the schedule seed that reproduces it.

Entry points: :func:`sanitize_run` (library), ``repro sanitize`` (CLI),
and the pytest plugin (:mod:`repro.sanitize.pytest_plugin`).  The
``broken-*`` strategies in :mod:`repro.sanitize.mutants` are seeded
bugs that keep the detectors honest.
"""

from repro.sanitize.analysis import (
    barrier_findings,
    check_occupancy,
    race_findings,
    round_ordering_violations,
)
from repro.sanitize.fuzzer import ScheduleFuzzer, derive_seeds, fuzz_schedules
from repro.sanitize.mutants import (
    BrokenLockFreeNoScatter,
    BrokenSimpleSkipRound,
    BrokenSimpleUndercount,
)
from repro.sanitize.probe import AccessEvent, BarrierEvent, SanitizerProbe
from repro.sanitize.report import BUG_CLASSES, Finding, SanitizeReport
from repro.sanitize.sanitizer import DEFAULT_SEED, SkewedMicrobench, sanitize_run

__all__ = [
    "AccessEvent",
    "BUG_CLASSES",
    "BarrierEvent",
    "BrokenLockFreeNoScatter",
    "BrokenSimpleSkipRound",
    "BrokenSimpleUndercount",
    "DEFAULT_SEED",
    "Finding",
    "SanitizeReport",
    "SanitizerProbe",
    "ScheduleFuzzer",
    "SkewedMicrobench",
    "barrier_findings",
    "check_occupancy",
    "derive_seeds",
    "fuzz_schedules",
    "race_findings",
    "round_ordering_violations",
    "sanitize_run",
]
