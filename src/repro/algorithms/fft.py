"""Iterative radix-2 Cooley–Tukey FFT with one barrier per stage (§6.1).

"For an N-point input sequence, FFT is computed in log(N) iterations.
Within each iteration, computation of different points is independent
... on the other hand, computation of an iteration cannot start until
that of its previous iteration completes, which makes a barrier
necessary."

Layout: decimation-in-time with an up-front bit-reversal permutation
(performed during kernel staging, like the cudaMemcpy of inputs), then
``log2(n)`` butterfly stages.  Stage ``s`` (1-based) works on spans of
``m = 2**s``: butterfly ``b`` pairs indices ``i1 = (b // h)·m + (b % h)``
and ``i2 = i1 + h`` with ``h = m/2``, combining them through the twiddle
``exp(-2πi·(b % h)/m)``.  Distinct butterflies touch disjoint pairs, so a
round partitions the ``n/2`` butterflies across blocks; every stage reads
values the *previous* stage wrote — other blocks' writes included —
which is what makes the inter-block barrier load-bearing.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.costs import FFT_BUTTERFLY_NS, block_cost, block_items
from repro.errors import ConfigError

__all__ = ["FFT", "bit_reverse_permutation"]


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses ``log2(n)``-bit positions."""
    if n < 1 or n & (n - 1):
        raise ConfigError(f"FFT size must be a power of two, got {n}")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


class FFT(RoundAlgorithm):
    """Radix-2 DIT FFT over a complex input vector."""

    name = "fft"
    default_threads = 448  # paper §7.2

    def __init__(self, n: int = 2**15, seed: int = 0, inverse: bool = False):
        if n < 2 or n & (n - 1):
            raise ConfigError(f"FFT size must be a power of two >= 2, got {n}")
        self.n = n
        self.stages = n.bit_length() - 1
        #: compute the inverse DFT (unnormalized; verify() accounts for
        #: the 1/N factor, matching the paper's §6.1 definition).
        self.inverse = inverse
        rng = np.random.default_rng(seed)
        self.input = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(
            np.complex128
        )
        self._rev = bit_reverse_permutation(n)
        self.buf = np.empty(n, dtype=np.complex128)
        self.reset()

    def num_rounds(self) -> int:
        return self.stages

    def reset(self) -> None:
        # Bit-reversal happens at staging time (host side), like the
        # input copy; the barrier-separated rounds are the stages.
        self.buf[:] = self.input[self._rev]

    def _butterflies(self) -> int:
        return self.n // 2

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        items = len(block_items(self._butterflies(), block_id, num_blocks))
        return block_cost(items, FFT_BUTTERFLY_NS)

    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        span = block_items(self._butterflies(), block_id, num_blocks)
        if len(span) == 0:
            return None
        stage = round_idx + 1
        m = 1 << stage
        h = m >> 1

        sign = 2j if self.inverse else -2j

        def work() -> None:
            b = np.arange(span.start, span.stop, dtype=np.int64)
            j = b % h
            i1 = (b // h) * m + j
            i2 = i1 + h
            w = np.exp(sign * np.pi * j / m)
            t = w * self.buf[i2]
            u = self.buf[i1]
            self.buf[i1] = u + t
            self.buf[i2] = u - t

        return work

    def verify(self) -> None:
        if self.inverse:
            expected = np.fft.ifft(self.input) * self.n
        else:
            expected = np.fft.fft(self.input)
        if not np.allclose(self.buf, expected, rtol=1e-9, atol=1e-6):
            err = float(np.max(np.abs(self.buf - expected)))
            raise VerificationError(
                f"fft: max deviation {err:.3e} from numpy "
                f"({'ifft' if self.inverse else 'fft'}, n={self.n})"
            )
