"""Bitonic sort with one barrier per compare-exchange step (§6.3).

"In each iteration, the numbers to be sorted are divided into pairs and
a compare-and-swap operation is applied, which can be executed in
parallel for different pairs ... the data dependency across adjacent
iterations makes it necessary for a barrier to be used."

Batcher's network over ``n = 2**k`` keys runs ``k(k+1)/2`` steps,
enumerated by ``(size, stride)`` with ``size = 2,4,..,n`` and
``stride = size/2, size/4, .., 1``.  In a step, index ``i`` is paired
with ``i ^ stride``; the lower index owns the pair and orders it
ascending when ``i & size == 0``, descending otherwise.  Pairs are
disjoint, so blocks take contiguous index ranges; each step reads
positions the previous step (possibly another block) wrote.

The CUDA SDK version the paper contrasts against (§3) is limited to one
512-thread block — at most 512 keys — precisely because it only has
``__syncthreads()``; a grid-wide barrier lifts that limit, which is the
motivating example for this whole line of work.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.costs import BITONIC_PAIR_NS, block_cost, block_items
from repro.errors import ConfigError

__all__ = ["BitonicSort", "bitonic_steps"]


def bitonic_steps(n: int) -> List[Tuple[int, int]]:
    """The network's ``(size, stride)`` step sequence for ``n`` keys."""
    if n < 2 or n & (n - 1):
        raise ConfigError(f"bitonic sort size must be a power of two >= 2, got {n}")
    steps: List[Tuple[int, int]] = []
    size = 2
    while size <= n:
        stride = size >> 1
        while stride >= 1:
            steps.append((size, stride))
            stride >>= 1
        size <<= 1
    return steps


class BitonicSort(RoundAlgorithm):
    """Batcher's bitonic sorting network over float keys."""

    name = "bitonic"
    default_threads = 512  # paper §7.2

    def __init__(self, n: int = 2**14, seed: int = 0):
        self.n = n
        self._steps = bitonic_steps(n)
        rng = np.random.default_rng(seed)
        self.input = rng.random(n)
        self.keys = np.empty(n)
        self.reset()

    def num_rounds(self) -> int:
        return len(self._steps)

    def reset(self) -> None:
        self.keys[:] = self.input

    def _pairs(self) -> int:
        return self.n // 2

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        items = len(block_items(self._pairs(), block_id, num_blocks))
        return block_cost(items, BITONIC_PAIR_NS)

    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        span = block_items(self._pairs(), block_id, num_blocks)
        if len(span) == 0:
            return None
        size, stride = self._steps[round_idx]

        def work() -> None:
            # Enumerate this block's pairs by their lower index: pair p
            # owns lower index i = (p // stride)·2·stride + (p % stride).
            p = np.arange(span.start, span.stop, dtype=np.int64)
            i = (p // stride) * (stride << 1) + (p % stride)
            partner = i | stride
            ascending = (i & size) == 0
            a, b = self.keys[i], self.keys[partner]
            swap = np.where(ascending, a > b, a < b)
            lo = np.where(swap, b, a)
            hi = np.where(swap, a, b)
            self.keys[i] = lo
            self.keys[partner] = hi

        return work

    def verify(self) -> None:
        expected = np.sort(self.input)
        if not np.array_equal(self.keys, expected):
            bad = int(np.argmax(self.keys != expected))
            raise VerificationError(
                f"bitonic: position {bad} holds {self.keys[bad]!r}, "
                f"expected {expected[bad]!r} (n={self.n})"
            )
