"""Parallel inclusive prefix sum (Hillis–Steele scan) — extension workload.

Not one of the paper's three evaluation algorithms, but the canonical
"needs a grid barrier" kernel: in step ``d`` every element ``i ≥ 2^d``
reads ``x[i - 2^d]`` — an element another block wrote in the *previous*
step — so the ``log2(n)`` steps must be separated by grid-wide barriers.
Included to demonstrate the framework on a fourth round-structured
algorithm (see ``examples/`` and ``benchmarks/bench_extensions.py``).

Uses double buffering: step ``d`` reads buffer ``d % 2`` and writes
buffer ``1 - d % 2``, which keeps intra-step block slices write-disjoint
and makes every cross-step read a previous-round value (the barrier is
load-bearing, as with the paper's workloads).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.costs import STAGE_OVERHEAD_NS, block_items
from repro.errors import ConfigError

__all__ = ["PrefixSum"]

#: One scan element update (one add + two global accesses).
SCAN_ELEMENT_NS = 8


class PrefixSum(RoundAlgorithm):
    """Hillis–Steele inclusive scan over float keys."""

    name = "scan"
    default_threads = 256

    def __init__(self, n: int = 2**14, seed: int = 0):
        if n < 2 or n & (n - 1):
            raise ConfigError(f"scan size must be a power of two >= 2, got {n}")
        self.n = n
        self.steps = n.bit_length() - 1
        rng = np.random.default_rng(seed)
        self.input = rng.random(n)
        self._bufs = [np.empty(n), np.empty(n)]
        self.reset()

    def num_rounds(self) -> int:
        return self.steps

    def reset(self) -> None:
        self._bufs[0][:] = self.input
        self._bufs[1][:] = 0.0

    @property
    def result(self) -> np.ndarray:
        """The buffer holding the final scan after all rounds ran."""
        return self._bufs[self.steps % 2]

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        items = len(block_items(self.n, block_id, num_blocks))
        return STAGE_OVERHEAD_NS + items * SCAN_ELEMENT_NS

    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        span = block_items(self.n, block_id, num_blocks)
        if len(span) == 0:
            return None
        src = self._bufs[round_idx % 2]
        dst = self._bufs[1 - round_idx % 2]
        stride = 1 << round_idx
        lo, hi = span.start, span.stop

        def work() -> None:
            i = np.arange(lo, hi, dtype=np.int64)
            shifted = np.where(i >= stride, src[i - stride], 0.0)
            dst[lo:hi] = src[lo:hi] + shifted

        return work

    def verify(self) -> None:
        expected = np.cumsum(self.input)
        if not np.allclose(self.result, expected, rtol=1e-10, atol=1e-9):
            bad = int(np.argmax(~np.isclose(self.result, expected)))
            raise VerificationError(
                f"scan: element {bad} is {self.result[bad]!r}, "
                f"expected {expected[bad]!r} (n={self.n})"
            )
