"""Smith-Waterman wavefront matrix filling with affine gaps (§6.2).

"the alignment matrix M is filled in a wavefront pattern ... elements in
the same anti-diagonal are independent of each other and can be
calculated in parallel; while barriers are needed across the computation
of different anti-diagonals."

We fill the three dynamic-programming matrices of the affine-gap
formulation (H: best score, E: gap-in-query, F: gap-in-subject):

.. code-block:: text

    E[i,j] = max(H[i,j-1] - o, E[i,j-1] - e)
    F[i,j] = max(H[i-1,j] - o, F[i-1,j] - e)
    H[i,j] = max(0, H[i-1,j-1] + s(a_i, b_j), E[i,j], F[i,j])

Anti-diagonal ``d = i + j`` only reads diagonals ``d-1`` and ``d-2``, so
one barrier per diagonal suffices; blocks take contiguous runs of the
diagonal's cells.  Per the paper, only the matrix-filling phase is
parallelized/timed (trace-back is sequential and >99 % of time is
filling); :meth:`verify` checks the full H matrix (and thus the optimal
local-alignment score) against an independent reference.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.costs import SWAT_CELL_NS, block_cost, block_items
from repro.errors import ConfigError

__all__ = ["SmithWaterman", "random_sequence", "swat_reference"]

_ALPHABET = np.frombuffer(b"ACGT", dtype=np.uint8)


def random_sequence(length: int, seed: int) -> np.ndarray:
    """A random DNA sequence as a uint8 array."""
    if length < 1:
        raise ConfigError(f"sequence length must be >= 1, got {length}")
    rng = np.random.default_rng(seed)
    return _ALPHABET[rng.integers(0, 4, size=length)]


def swat_reference(
    query: np.ndarray,
    subject: np.ndarray,
    match: int = 2,
    mismatch: int = -1,
    gap_open: int = 3,
    gap_extend: int = 1,
) -> Tuple[np.ndarray, int]:
    """Independent row-by-row affine-gap fill; returns (H, best score).

    Row-ordered rather than wavefront-ordered, so it shares no traversal
    logic with the class under test.
    """
    n, m = len(query), len(subject)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    E = np.zeros((n + 1, m + 1), dtype=np.int64)
    F = np.zeros((n + 1, m + 1), dtype=np.int64)
    neg = np.iinfo(np.int64).min // 4
    E[:, 0] = neg
    F[0, :] = neg
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if query[i - 1] == subject[j - 1] else mismatch
            E[i, j] = max(H[i, j - 1] - gap_open, E[i, j - 1] - gap_extend)
            F[i, j] = max(H[i - 1, j] - gap_open, F[i - 1, j] - gap_extend)
            H[i, j] = max(0, H[i - 1, j - 1] + s, E[i, j], F[i, j])
    return H, int(H.max())


class SmithWaterman(RoundAlgorithm):
    """Wavefront affine-gap local-alignment matrix fill."""

    name = "swat"
    default_threads = 256  # paper §7.2

    def __init__(
        self,
        query_len: int = 1024,
        subject_len: int = 1024,
        match: int = 2,
        mismatch: int = -1,
        gap_open: int = 3,
        gap_extend: int = 1,
        seed: int = 0,
    ):
        self.query = random_sequence(query_len, seed)
        self.subject = random_sequence(subject_len, seed + 1)
        self.match = match
        self.mismatch = mismatch
        self.gap_open = gap_open
        self.gap_extend = gap_extend
        n, m = query_len, subject_len
        self.H = np.zeros((n + 1, m + 1), dtype=np.int64)
        self.E = np.zeros((n + 1, m + 1), dtype=np.int64)
        self.F = np.zeros((n + 1, m + 1), dtype=np.int64)
        self._neg = np.iinfo(np.int64).min // 4
        self._expected: Optional[Tuple[np.ndarray, int]] = None
        self.reset()

    @property
    def n(self) -> int:
        return len(self.query)

    @property
    def m(self) -> int:
        return len(self.subject)

    def num_rounds(self) -> int:
        # Diagonals d = 2 .. n+m hold the interior cells.
        return self.n + self.m - 1

    def reset(self) -> None:
        self.H[...] = 0
        self.E[...] = 0
        self.F[...] = 0
        self.E[:, 0] = self._neg
        self.F[0, :] = self._neg

    def _diag_rows(self, round_idx: int) -> Tuple[int, int]:
        """Interior row range [ilo, ihi) of anti-diagonal ``round_idx + 2``."""
        d = round_idx + 2
        ilo = max(1, d - self.m)
        ihi = min(self.n, d - 1) + 1
        return ilo, ihi

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        ilo, ihi = self._diag_rows(round_idx)
        items = len(block_items(ihi - ilo, block_id, num_blocks))
        return block_cost(items, SWAT_CELL_NS)

    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        ilo, ihi = self._diag_rows(round_idx)
        span = block_items(ihi - ilo, block_id, num_blocks)
        if len(span) == 0:
            return None
        d = round_idx + 2
        lo, hi = ilo + span.start, ilo + span.stop

        def work() -> None:
            i = np.arange(lo, hi, dtype=np.int64)
            j = d - i
            s = np.where(
                self.query[i - 1] == self.subject[j - 1],
                self.match,
                self.mismatch,
            )
            e = np.maximum(
                self.H[i, j - 1] - self.gap_open,
                self.E[i, j - 1] - self.gap_extend,
            )
            f = np.maximum(
                self.H[i - 1, j] - self.gap_open,
                self.F[i - 1, j] - self.gap_extend,
            )
            h = np.maximum(self.H[i - 1, j - 1] + s, 0)
            self.E[i, j] = e
            self.F[i, j] = f
            self.H[i, j] = np.maximum(h, np.maximum(e, f))

        return work

    @property
    def best_score(self) -> int:
        """The optimal local-alignment score found so far."""
        return int(self.H.max())

    def verify(self) -> None:
        # The reference fill is a slow scalar loop; inputs are immutable,
        # so compute it once per instance and reuse across sweep runs.
        if self._expected is None:
            self._expected = swat_reference(
                self.query,
                self.subject,
                self.match,
                self.mismatch,
                self.gap_open,
                self.gap_extend,
            )
        expected_H, expected_best = self._expected
        if not np.array_equal(self.H, expected_H):
            bad = np.argwhere(self.H != expected_H)[0]
            raise VerificationError(
                f"swat: H[{bad[0]},{bad[1]}] = {self.H[bad[0], bad[1]]}, "
                f"expected {expected_H[bad[0], bad[1]]} "
                f"(best score {self.best_score} vs {expected_best})"
            )
