"""Per-algorithm computation-cost calibration.

Per-work-item costs (ns) are chosen so that, at the paper's best
configuration (30 blocks, CPU implicit synchronization, default problem
sizes), the share of kernel time spent on inter-block communication
matches **Table 1**: FFT 19.6 %, SWat 49.7 %, bitonic sort 59.6 %.

Derivations (implicit barrier = 6 000 ns/round, see
:mod:`repro.model.calibration`):

* **FFT**, n = 2¹⁵, 15 rounds: sync = 15·6 000 = 90 000 ns; a 19.6 % sync
  share needs compute ≈ 369 000 ns ⇒ 24 600 ns/round; 16 384 butterflies
  over 30 blocks is 547/block ⇒ ≈ **45 ns per butterfly** (~10 flops + a
  32-byte working set — consistent with real hardware).
* **SWat**, 1 024×1 024 matrix, 2 047 diagonals: a 49.7 % share needs
  ≈ 6 076 ns/round against ~18 cells/block on the average diagonal ⇒
  **330 ns per cell**.  The paper's sequences are much longer; shrinking
  the matrix while scaling the per-cell cost preserves every ratio the
  paper reports while keeping simulations tractable (DESIGN.md §2).
* **Bitonic sort**, n = 2¹⁴, 105 steps: a 59.6 % share needs
  ≈ 4 070 ns/round against 274 pairs/block ⇒ **14 ns per
  compare-exchange**.
* Every round also pays a fixed **200 ns** stage overhead (loop and
  pipeline bookkeeping).
* The micro-benchmark is weak-scaled at a flat
  :data:`~repro.model.calibration.MICRO_ROUND_COMPUTE_NS` (500 ns).
"""

from __future__ import annotations

import math

__all__ = [
    "STAGE_OVERHEAD_NS",
    "FFT_BUTTERFLY_NS",
    "SWAT_CELL_NS",
    "BITONIC_PAIR_NS",
    "block_items",
    "block_cost",
]

#: Fixed per-round, per-block bookkeeping cost.
STAGE_OVERHEAD_NS = 200
#: One radix-2 butterfly (complex twiddle multiply + add/sub).
FFT_BUTTERFLY_NS = 45
#: One Smith-Waterman cell (affine-gap H/E/F update).
SWAT_CELL_NS = 330
#: One bitonic compare-exchange.
BITONIC_PAIR_NS = 14


def block_items(total_items: int, block_id: int, num_blocks: int) -> range:
    """Contiguous partition of ``total_items`` work items across blocks.

    Blocks get ``ceil(total/num_blocks)`` items except possibly the last;
    blocks past the end receive an empty range.
    """
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    per = math.ceil(total_items / num_blocks) if total_items else 0
    lo = min(block_id * per, total_items)
    hi = min(lo + per, total_items)
    return range(lo, hi)


def block_cost(num_items: int, per_item_ns: float) -> float:
    """Per-round compute cost for one block: overhead + items × unit cost.

    Empty slices still pay the stage overhead — the block executes the
    round's loop iteration even when its partition is empty.
    """
    return STAGE_OVERHEAD_NS + num_items * per_item_ns
