"""Jacobi relaxation on a 1-D Poisson problem — iterative-solver workload.

Stencil sweeps are the PDE community's version of the paper's pattern:
sweep ``s+1`` reads neighbor values sweep ``s`` wrote — including the
halo cells owned by *other* blocks — so every sweep needs a grid-wide
barrier.  Unlike the paper's three workloads, the round count here is a
*solver* parameter (more sweeps → smaller residual), which makes this
the natural demonstration for the Eq. 2 story: the barrier bill scales
with iterations while the answer quality does too.

Solves ``-u'' = f`` on (0,1) with zero boundaries via damped Jacobi and
verifies against the direct tridiagonal solution within the tolerance
implied by the sweep count (plus an exact fixed-point check: one more
serial sweep must reproduce the parallel result).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.costs import STAGE_OVERHEAD_NS, block_items
from repro.errors import ConfigError

__all__ = ["JacobiPoisson"]

#: One Jacobi point update (two neighbor loads + add + store).
JACOBI_POINT_NS = 7


class JacobiPoisson(RoundAlgorithm):
    """Damped Jacobi sweeps for the 1-D Poisson equation."""

    name = "jacobi"
    default_threads = 256

    def __init__(self, n: int = 512, sweeps: int = 200, seed: int = 0):
        if n < 2:
            raise ConfigError(f"need at least 2 grid points, got {n}")
        if sweeps < 1:
            raise ConfigError(f"need at least 1 sweep, got {sweeps}")
        self.n = n
        self.sweeps = sweeps
        self.h = 1.0 / (n + 1)
        rng = np.random.default_rng(seed)
        self.f = rng.random(n) + 0.5  # strictly positive forcing
        #: double buffer with boundary cells at [0] and [-1].
        self._bufs = [np.zeros(n + 2), np.zeros(n + 2)]
        self.reset()

    def num_rounds(self) -> int:
        return self.sweeps

    def reset(self) -> None:
        self._bufs[0][:] = 0.0
        self._bufs[1][:] = 0.0

    @property
    def solution(self) -> np.ndarray:
        """Interior values after all sweeps."""
        return self._bufs[self.sweeps % 2][1:-1]

    def exact(self) -> np.ndarray:
        """Direct tridiagonal solve of the discretized system."""
        A = (
            np.diag(np.full(self.n, 2.0))
            + np.diag(np.full(self.n - 1, -1.0), 1)
            + np.diag(np.full(self.n - 1, -1.0), -1)
        )
        return np.linalg.solve(A, self.h * self.h * self.f)

    def residual(self) -> float:
        """Max-norm distance from the exact discrete solution."""
        return float(np.max(np.abs(self.solution - self.exact())))

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        items = len(block_items(self.n, block_id, num_blocks))
        return STAGE_OVERHEAD_NS + items * JACOBI_POINT_NS

    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        span = block_items(self.n, block_id, num_blocks)
        if len(span) == 0:
            return None
        src = self._bufs[round_idx % 2]
        dst = self._bufs[1 - round_idx % 2]
        lo, hi = span.start + 1, span.stop + 1  # interior offsets

        def sweep() -> None:
            dst[lo:hi] = 0.5 * (
                src[lo - 1 : hi - 1]
                + src[lo + 1 : hi + 1]
                + self.h * self.h * self.f[lo - 1 : hi - 1]
            )

        return sweep

    def verify(self) -> None:
        # Independent serial reference: replay all sweeps with plain
        # whole-array NumPy (no per-block partitioning) and compare
        # exactly — any barrier/halo corruption in any sweep shows up.
        u = np.zeros(self.n + 2)
        v = np.zeros(self.n + 2)
        for _ in range(self.sweeps):
            v[1:-1] = 0.5 * (u[:-2] + u[2:] + self.h * self.h * self.f)
            u, v = v, u
        if not np.allclose(self.solution, u[1:-1], rtol=1e-13, atol=1e-13):
            bad = int(np.argmax(~np.isclose(self.solution, u[1:-1])))
            raise VerificationError(
                f"jacobi: point {bad} diverged from the serial reference "
                "(barrier or halo corruption)"
            )
        # Convergence sanity: the damped-Jacobi spectral bound must hold.
        rho = np.cos(np.pi * self.h)
        bound = (rho**self.sweeps) * float(np.max(np.abs(self.exact())))
        if self.residual() > 2.0 * bound + 1e-9:
            raise VerificationError(
                f"jacobi: residual {self.residual():.3e} exceeds the "
                f"theoretical bound {bound:.3e}"
            )
