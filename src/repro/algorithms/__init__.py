"""The paper's evaluation workloads (§5.4, §6).

Every workload is a :class:`~repro.algorithms.base.RoundAlgorithm`: a
sequence of *rounds* (parallel computation steps) separated by grid-wide
barriers.  Within a round, blocks own disjoint slices of the data; across
rounds, a block's slice depends on other blocks' previous-round writes —
which is precisely why the barrier is required and why a broken barrier
produces wrong FFTs, alignments and sort orders (tests rely on this).

* :class:`MeanMicrobench` — §5.4's micro-benchmark (mean of two floats,
  weak scaling).
* :class:`FFT` — iterative radix-2 Cooley–Tukey; one barrier per stage.
* :class:`SmithWaterman` — affine-gap wavefront matrix filling; one
  barrier per anti-diagonal.
* :class:`BitonicSort` — Batcher's network; one barrier per
  compare-exchange step.
* :class:`PrefixSum` — Hillis–Steele scan (extension workload, not in
  the paper's evaluation).
"""

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.bitonic import BitonicSort
from repro.algorithms.fft import FFT
from repro.algorithms.microbench import MeanMicrobench
from repro.algorithms.reduce import Reduction
from repro.algorithms.scan import PrefixSum
from repro.algorithms.stencil import JacobiPoisson
from repro.algorithms.swat import SmithWaterman
from repro.algorithms.traceback import Alignment, traceback

__all__ = [
    "Alignment",
    "BitonicSort",
    "FFT",
    "JacobiPoisson",
    "MeanMicrobench",
    "PrefixSum",
    "Reduction",
    "RoundAlgorithm",
    "SmithWaterman",
    "VerificationError",
    "traceback",
]
