"""The §5.4 micro-benchmark: mean of two floats, weak-scaled.

"a micro-benchmark to compute the mean of two floats for 10 000 times is
used ... each thread will compute one element, the more blocks and
threads are set, the more elements are computed, i.e., computation is
performed in a weak-scale way.  So the computation time should be
approximately constant."

Each round every thread computes ``out[i] = (a[i] + b[i]) / 2`` for its
element; with ``R`` rounds the final output is simply the mean (the
computation is idempotent), so verification checks the mean plus a
round counter that *is* order-sensitive: each round adds the current
round number to an accumulator only if the previous round fully
completed everywhere, making barrier violations observable.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.costs import block_items
from repro.errors import ConfigError
from repro.model.calibration import MICRO_ROUND_COMPUTE_NS

__all__ = ["MeanMicrobench"]


class MeanMicrobench(RoundAlgorithm):
    """Weak-scaled mean-of-two-floats kernel (paper §5.4, Fig. 11)."""

    name = "micro"
    default_threads = 256

    def __init__(
        self,
        rounds: int = 1000,
        num_blocks_hint: int = 30,
        threads_per_block: int = 256,
        seed: int = 0,
    ):
        if rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self.threads_per_block = threads_per_block
        # Weak scaling: one element per thread across the *largest* grid
        # we might run; per-block slices adjust with the actual grid.
        self.num_elements = num_blocks_hint * threads_per_block
        rng = np.random.default_rng(seed)
        self._a = rng.random(self.num_elements)
        self._b = rng.random(self.num_elements)
        self.out = np.zeros(self.num_elements)
        #: per-round completion stamps; round r is correct only if every
        #: element was stamped r+1 times by the end.
        self._stamps = np.zeros(self.num_elements, dtype=np.int64)

    def num_rounds(self) -> int:
        return self.rounds

    def reset(self) -> None:
        self.out[:] = 0.0
        self._stamps[:] = 0

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        # Weak scaling: every block computes its own elements in parallel,
        # so per-block (and hence per-round) cost is flat.
        return MICRO_ROUND_COMPUTE_NS

    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        span = block_items(self.num_elements, block_id, num_blocks)
        if len(span) == 0:
            return None
        lo, hi = span.start, span.stop

        def work() -> None:
            self.out[lo:hi] = (self._a[lo:hi] + self._b[lo:hi]) / 2.0
            self._stamps[lo:hi] += 1

        return work

    def verify(self) -> None:
        expected = (self._a + self._b) / 2.0
        if not np.allclose(self.out, expected):
            bad = int(np.argmax(~np.isclose(self.out, expected)))
            raise VerificationError(
                f"micro: element {bad} is {self.out[bad]!r}, "
                f"expected {expected[bad]!r}"
            )
        if not np.all(self._stamps == self.rounds):
            raise VerificationError(
                f"micro: uneven round stamps "
                f"(min {self._stamps.min()}, max {self._stamps.max()}, "
                f"expected {self.rounds} everywhere)"
            )
