"""The round-structured algorithm interface shared by all workloads."""

from __future__ import annotations

import abc
from typing import Callable, Optional

__all__ = ["RoundAlgorithm", "VerificationError"]


class VerificationError(AssertionError):
    """An algorithm's output failed verification against its reference."""


class RoundAlgorithm(abc.ABC):
    """A computation structured as rounds separated by grid-wide barriers.

    The contract with the runner (:mod:`repro.harness.runner`):

    * :meth:`reset` (re)initializes all working state from the inputs —
      called before every run, so one instance can be swept over many
      strategies and block counts;
    * rounds are numbered ``0 .. num_rounds()-1``; in each round every
      block ``b`` of ``B`` executes :meth:`round_work` on its disjoint
      slice, at a simulated cost of :meth:`round_cost` nanoseconds;
    * :meth:`round_work` is applied *after* its cost elapses, so
      out-of-order execution under a broken barrier really does read
      stale data;
    * :meth:`verify` checks the final state against an independent
      reference and raises :class:`VerificationError` on mismatch.
    """

    #: algorithm identifier, e.g. ``"fft"``.
    name: str = "abstract"
    #: threads per block the paper used for this workload (§7.2).
    default_threads: int = 256

    @abc.abstractmethod
    def num_rounds(self) -> int:
        """Number of barrier-separated rounds."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Reinitialize working state from the immutable inputs."""

    @abc.abstractmethod
    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        """Simulated computation cost (ns) of this block's round slice."""

    @abc.abstractmethod
    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        """The block's actual computation for this round (or ``None``).

        The returned callable mutates the algorithm's working arrays for
        the block's slice.  Slices of concurrent blocks must be
        write-disjoint within a round.
        """

    @abc.abstractmethod
    def verify(self) -> None:
        """Raise :class:`VerificationError` unless the output is correct."""

    # -- conveniences ----------------------------------------------------------

    def describe(self) -> str:
        """One-line description for reports."""
        return f"{self.name}: {self.num_rounds()} rounds"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"
