"""Smith-Waterman trace-back: from filled matrices to the alignment.

The paper parallelizes only the matrix *filling* ("the trace back ... is
essentially a sequential process", §6.2) and so do we; but a user
aligning sequences wants the alignment, not a score matrix.  This module
implements the sequential trace-back over the affine-gap matrices the
wavefront fill produced, with the standard three-state (H/E/F) walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigError

__all__ = ["Alignment", "score_alignment", "traceback"]


@dataclass(frozen=True)
class Alignment:
    """One local alignment with its coordinates and score."""

    query: str  #: aligned query with '-' gaps
    subject: str  #: aligned subject with '-' gaps
    score: int
    query_span: Tuple[int, int]  #: [start, end) in the query (0-based)
    subject_span: Tuple[int, int]  #: [start, end) in the subject

    @property
    def length(self) -> int:
        """Alignment columns (matches + mismatches + gaps)."""
        return len(self.query)

    @property
    def identity(self) -> float:
        """Fraction of columns that are exact matches."""
        if not self.query:
            return 0.0
        matches = sum(a == b != "-" for a, b in zip(self.query, self.subject))
        return matches / len(self.query)

    def pretty(self) -> str:
        """Three-line rendering with a match rail."""
        rail = "".join(
            "|" if a == b != "-" else " " for a, b in zip(self.query, self.subject)
        )
        return f"{self.query}\n{rail}\n{self.subject}"


def score_alignment(
    query: str,
    subject: str,
    match: int,
    mismatch: int,
    gap_open: int,
    gap_extend: int,
) -> int:
    """Score an explicit alignment under affine-gap scoring.

    Independent of the DP matrices, so it can *verify* a trace-back: the
    emitted alignment must score exactly ``H.max()``.
    """
    if len(query) != len(subject):
        raise ConfigError("aligned strings must have equal length")
    score = 0
    in_gap_q = in_gap_s = False
    for a, b in zip(query, subject):
        if a == "-" and b == "-":
            raise ConfigError("a column cannot gap both sequences")
        if a == "-":
            score -= gap_open if not in_gap_q else gap_extend
            in_gap_q, in_gap_s = True, False
        elif b == "-":
            score -= gap_open if not in_gap_s else gap_extend
            in_gap_s, in_gap_q = True, False
        else:
            score += match if a == b else mismatch
            in_gap_q = in_gap_s = False
    return score


def traceback(swat) -> Alignment:
    """Trace the optimal local alignment out of a filled SmithWaterman.

    ``swat`` is a :class:`repro.algorithms.swat.SmithWaterman` whose
    rounds have all executed.  State preference on ties is diagonal >
    E (gap in query) > F (gap in subject), a standard, score-preserving
    convention.
    """
    H, E, F = swat.H, swat.E, swat.F
    q = swat.query.tobytes().decode("ascii")
    s = swat.subject.tobytes().decode("ascii")
    i, j = np.unravel_index(int(np.argmax(H)), H.shape)
    i, j = int(i), int(j)
    best = int(H[i, j])
    end_i, end_j = i, j
    if best == 0:
        return Alignment("", "", 0, (0, 0), (0, 0))

    out_q: list = []
    out_s: list = []
    state = "H"
    while i > 0 and j > 0:
        if state == "H":
            if H[i, j] == 0:
                break
            sub = swat.match if q[i - 1] == s[j - 1] else swat.mismatch
            if H[i, j] == H[i - 1, j - 1] + sub:
                out_q.append(q[i - 1])
                out_s.append(s[j - 1])
                i -= 1
                j -= 1
            elif H[i, j] == E[i, j]:
                state = "E"
            elif H[i, j] == F[i, j]:
                state = "F"
            else:  # pragma: no cover - would mean corrupted matrices
                raise ConfigError("inconsistent DP matrices in traceback")
        elif state == "E":
            out_q.append("-")
            out_s.append(s[j - 1])
            came_from_open = E[i, j] == H[i, j - 1] - swat.gap_open
            j -= 1
            if came_from_open:
                state = "H"
        else:  # state == "F"
            out_q.append(q[i - 1])
            out_s.append("-")
            came_from_open = F[i, j] == H[i - 1, j] - swat.gap_open
            i -= 1
            if came_from_open:
                state = "H"

    return Alignment(
        query="".join(reversed(out_q)),
        subject="".join(reversed(out_s)),
        score=best,
        query_span=(i, end_i),
        subject_span=(j, end_j),
    )
