"""Parallel tree reduction — the minimal grid-barrier workload.

Sum ``n`` values in two kinds of rounds:

1. **round 0**: each block reduces its slice to one partial (intra-block
   reduction uses ``__syncthreads()`` only — no grid sync needed);
2. **rounds 1..ceil(log2 B)**: the partials array is halved each round
   (``partials[i] += partials[i + stride]``), and because round ``r``
   reads partials other blocks wrote in round ``r-1``, every halving
   needs a grid-wide barrier.

This is the smallest real workload in the library (a handful of rounds)
and the one with the most extreme compute/sync ratio: nearly all the
time is barriers, making it the best showcase for the lock-free barrier
and the worst case for CPU relaunch synchronization.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.algorithms.base import RoundAlgorithm, VerificationError
from repro.algorithms.costs import STAGE_OVERHEAD_NS, block_items
from repro.errors import ConfigError

__all__ = ["Reduction"]

#: One accumulate (load + add) during the reduction.
REDUCE_ELEMENT_NS = 6


class Reduction(RoundAlgorithm):
    """Grid-wide sum of ``n`` float64 values."""

    name = "reduce"
    default_threads = 256

    def __init__(self, n: int = 2**16, num_blocks_hint: int = 30, seed: int = 0):
        if n < 1:
            raise ConfigError(f"reduction size must be >= 1, got {n}")
        if num_blocks_hint < 1:
            raise ConfigError("num_blocks_hint must be >= 1")
        self.n = n
        self.num_blocks_hint = num_blocks_hint
        rng = np.random.default_rng(seed)
        self.input = rng.random(n)
        self.partials = np.zeros(num_blocks_hint)
        self.reset()

    def num_rounds(self) -> int:
        # One partial-producing round, then halvings of the hint-sized
        # partials array.
        return 1 + max(1, math.ceil(math.log2(self.num_blocks_hint)))

    def reset(self) -> None:
        self.partials[:] = 0.0

    @property
    def result(self) -> float:
        """The reduced sum (valid after all rounds ran)."""
        return float(self.partials[0])

    def round_cost(self, round_idx: int, block_id: int, num_blocks: int) -> float:
        if round_idx == 0:
            items = len(block_items(self.n, block_id, num_blocks))
            return STAGE_OVERHEAD_NS + items * REDUCE_ELEMENT_NS
        stride = self._stride(round_idx)
        items = len(block_items(stride, block_id, num_blocks))
        return STAGE_OVERHEAD_NS + items * REDUCE_ELEMENT_NS

    def _stride(self, round_idx: int) -> int:
        """Active pair count in halving round ``round_idx`` (>= 1)."""
        width = self.num_blocks_hint
        for _ in range(round_idx):
            width = max(1, -(-width // 2))  # ceil halving
        return width

    def round_work(
        self, round_idx: int, block_id: int, num_blocks: int
    ) -> Optional[Callable[[], None]]:
        if round_idx == 0:
            span = block_items(self.n, block_id, num_blocks)
            if len(span) == 0:
                return None
            # Partials are indexed by *data slice*, so the result does not
            # depend on how many blocks execute (the runner may use fewer
            # blocks than the hint).
            slot = block_id % self.num_blocks_hint

            def produce(span=span, slot=slot) -> None:
                self.partials[slot] += float(
                    self.input[span.start : span.stop].sum()
                )

            return produce

        prev_width = self._stride(round_idx - 1) if round_idx > 1 else self.num_blocks_hint
        width = max(1, -(-prev_width // 2))
        span = block_items(width, block_id, num_blocks)
        if len(span) == 0:
            return None

        def halve(span=span, width=width, prev_width=prev_width) -> None:
            for i in range(span.start, span.stop):
                j = i + width
                if j < prev_width:
                    self.partials[i] += self.partials[j]
                    self.partials[j] = 0.0

        return halve

    def verify(self) -> None:
        expected = float(self.input.sum())
        if not math.isclose(self.result, expected, rel_tol=1e-9):
            raise VerificationError(
                f"reduce: sum is {self.result!r}, expected {expected!r} "
                f"(n={self.n})"
            )
        if not np.allclose(self.partials[1:], 0.0):
            raise VerificationError("reduce: partials not fully folded")
