"""GPU lock-free synchronization (paper §5.3, Fig. 9) — no atomics at all.

Protocol per round (``goalVal`` accumulates, as in §5.1):

1. block *i*'s leading thread stores ``goalVal`` into ``Arrayin[i]`` and
   then busy-waits on ``Arrayout[i]``;
2. the *checking block* (block 1, as in the paper's Fig. 9) uses its
   first N threads to watch the N ``Arrayin`` slots **in parallel**; when
   all are set it calls ``__syncthreads()`` and the same N threads store
   ``goalVal`` into all of ``Arrayout`` in parallel;
3. every leading thread sees its ``Arrayout[i]`` set and releases its
   block with ``__syncthreads()``.

Because nothing contends, the cost (Eq. 9) is a constant independent of
the number of blocks — the flat line in Fig. 11.

The paper highlights the N-parallel-checker design choice ("turns out to
save considerable synchronization overhead"); ``serial_gather=True``
builds the rejected single-thread variant for the ablation bench, whose
cost grows linearly with N.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Generator, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import SyncProtocolError
from repro.simcore.effects import WaitSpec
from repro.sync.base import SyncStrategy, register_strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx
    from repro.gpu.device import Device
    from repro.gpu.memory import GlobalArray
    from repro.gpu.warps import WarpCtx

__all__ = ["GpuLockFreeSync"]

_INSTANCES = count()


class GpuLockFreeSync(SyncStrategy):
    """The two-array, atomic-free device barrier."""

    name = "gpu-lockfree"
    mode = "device"
    #: degrade target when the barrier repeatedly stalls (resilient runtime).
    fallback = "cpu-implicit"

    def __init__(self, serial_gather: bool = False, detailed: bool = False) -> None:
        #: ablation flag: one checker thread scans Arrayin serially
        #: instead of N threads in parallel (paper §5.3 step 2 note).
        self.serial_gather = serial_gather
        #: execute the checking block at warp granularity (real agents,
        #: real __syncthreads) instead of the folded cost model — see
        #: :mod:`repro.gpu.warps`. Timing-equivalent by construction;
        #: tests assert it.
        self.detailed = detailed
        if serial_gather and detailed:
            raise SyncProtocolError(
                "serial_gather and detailed are mutually exclusive"
            )
        if serial_gather:
            self.name = "gpu-lockfree-serial"
        elif detailed:
            self.name = "gpu-lockfree-detailed"
        self._uid = next(_INSTANCES)
        self._num_blocks = 0
        self._array_in: Optional["GlobalArray"] = None
        self._array_out: Optional["GlobalArray"] = None

    def prepare(self, device: "Device", num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)
        self._num_blocks = num_blocks
        self._array_in = device.memory.alloc(
            f"Arrayin#{self._uid}", num_blocks, dtype=np.int64, reuse=True
        )
        self._array_out = device.memory.alloc(
            f"Arrayout#{self._uid}", num_blocks, dtype=np.int64, reuse=True
        )

    @property
    def checker_block(self) -> int:
        """The block whose threads gather/scatter (block 1, per Fig. 9)."""
        return 1 if self._num_blocks > 1 else 0

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        arr_in, arr_out = self._array_in, self._array_out
        if arr_in is None or arr_out is None:
            raise SyncProtocolError("gpu-lockfree barrier used before prepare()")
        if ctx.num_blocks != self._num_blocks:
            raise SyncProtocolError(
                f"gpu-lockfree prepared for {self._num_blocks} blocks, "
                f"called with {ctx.num_blocks}"
            )
        if ctx.block_threads < self._num_blocks:
            raise SyncProtocolError(
                f"gpu-lockfree needs >= {self._num_blocks} threads in the "
                f"checking block to watch Arrayin in parallel; kernel has "
                f"{ctx.block_threads} threads/block"
            )
        start = ctx.now
        bid = ctx.block_id
        goal = round_idx + 1
        n = ctx.num_blocks

        # Entry bookkeeping (index math, branch setup).
        yield from ctx.compute(
            ctx.timings.lockfree_overhead_ns, phase="sync-overhead"
        )

        # Step 1: publish arrival.
        yield from ctx.gwrite(arr_in, bid, goal)

        # Step 2: the checking block gathers and scatters.
        if bid == self.checker_block:
            if self.detailed:
                # Warp-granular execution of Fig. 9: thread i (grouped
                # into warps) watches Arrayin[i], real __syncthreads(),
                # then stores Arrayout[i].
                from repro.gpu.warps import run_warps

                def checker_warp(wctx: "WarpCtx") -> Generator[Any, Any, Any]:
                    lo, hi = wctx.lanes
                    yield from wctx.spin_until(
                        arr_in,
                        lambda a=arr_in, lo=lo, hi=hi, g=goal: bool(
                            (a.data[lo:hi] >= g).all()
                        ),
                        f"Arrayin[{lo}:{hi}] (round {round_idx})",
                        spec=WaitSpec(goal, lo=lo, hi=hi),
                    )
                    yield from wctx.syncthreads()
                    yield from wctx.gwrite(arr_out, slice(lo, hi), goal)

                yield from run_warps(ctx, checker_warp, n)
            elif self.serial_gather:
                # Rejected design: thread 0 walks Arrayin one slot at a time.
                for i in range(n):
                    yield from ctx.spin_until(
                        arr_in,
                        lambda a=arr_in, i=i, g=goal: a.data[i] >= g,
                        f"Arrayin[{i}] (serial, round {round_idx})",
                        spec=WaitSpec(goal, lo=i),
                    )
                yield from ctx.syncthreads()
                for i in range(n):
                    yield from ctx.gwrite(arr_out, i, goal)
            else:
                # Paper's design: thread i watches Arrayin[i]; the N checks
                # proceed in parallel, so one observation latency covers all.
                yield from ctx.spin_until(
                    arr_in,
                    lambda a=arr_in, g=goal: bool((a.data >= g).all()),
                    f"Arrayin all set (round {round_idx})",
                    spec=WaitSpec(goal),
                )
                yield from ctx.syncthreads()
                # N threads store in parallel: one coalesced write latency.
                yield from ctx.gwrite(arr_out, slice(None), goal)

        # Step 3: wait for the release flag.
        yield from ctx.spin_until(
            arr_out,
            lambda a=arr_out, b=bid, g=goal: a.data[b] >= g,
            f"Arrayout[{bid}] (round {round_idx})",
            spec=WaitSpec(goal, lo=bid),
        )
        yield from ctx.syncthreads()
        ctx.record("sync", start, round=round_idx, strategy=self.name)


register_strategy("gpu-lockfree", GpuLockFreeSync)
register_strategy("gpu-lockfree-serial", lambda: GpuLockFreeSync(serial_gather=True))
register_strategy("gpu-lockfree-detailed", lambda: GpuLockFreeSync(detailed=True))
