"""The no-op barrier used for compute-only timing runs (paper §7.3).

The paper measures synchronization time as *total kernel time minus the
time of the same kernel with* ``__gpu_sync()`` *removed*.  ``NullSync``
is that removed-barrier configuration: a single-kernel device run whose
barrier does nothing.  Results computed under it are generally **wrong**
(blocks race freely); it exists purely to measure computation time, and
the harness never verifies its output.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.sync.base import SyncStrategy, register_strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx
    from repro.gpu.device import Device

__all__ = ["NullSync"]


class NullSync(SyncStrategy):
    """Barrier removed — compute-only timing (never use for results)."""

    name = "null"
    mode = "device"

    def prepare(self, device: "Device", num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        return
        yield  # pragma: no cover - makes this a generator function


register_strategy("null", NullSync)
