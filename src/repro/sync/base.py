"""The common interface every synchronization strategy implements."""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Generator, List, TYPE_CHECKING

from repro.errors import ConfigError, OccupancyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.config import DeviceConfig
    from repro.gpu.context import BlockCtx
    from repro.gpu.device import Device

__all__ = ["SyncStrategy", "register_strategy", "get_strategy", "strategy_names"]


def _hang_forever(ctx: "BlockCtx", strategy_name: str, round_idx: int) -> Generator[Any, Any, Any]:
    """Park a block forever (the injected ``hang`` fault).

    The block waits on a signal nothing ever fires — the simulated
    analogue of a block that died or spun off into the weeds before
    reaching the barrier.  Only a watchdog kill (or the engine's
    deadlock detection) ends the wait; the reason string names the
    fault so :class:`repro.errors.BarrierTimeoutError` reports it.
    """
    from repro.simcore.effects import WaitUntil
    from repro.simcore.signal import Signal

    tombstone = Signal(f"fault-hang:{ctx.owner}")
    yield WaitUntil(
        tombstone,
        lambda: False,
        f"injected hang: block {ctx.block_id} never reaches the "
        f"{strategy_name} barrier of round {round_idx}",
    )


class SyncStrategy(abc.ABC):
    """One way of implementing the inter-block barrier.

    Two modes exist:

    * ``mode == "host"`` — the barrier *is* the kernel boundary.  The
      runner launches one kernel per round; :attr:`explicit` selects
      whether the host calls ``cudaThreadSynchronize()`` between launches
      (paper §4.1) or lets launches pipeline (§4.2).  :meth:`prepare` and
      :meth:`barrier` are unused.
    * ``mode == "device"`` — a single kernel runs all rounds, and every
      block calls :meth:`barrier` between rounds (paper §4.3, §5).
      :meth:`prepare` allocates the strategy's device state;
      :meth:`shared_mem_request` and :meth:`max_blocks` enforce the
      one-block-per-SM co-residency rule.
    """

    #: strategy identifier, e.g. ``"gpu-lockfree"``.
    name: str = "abstract"
    #: ``"host"`` or ``"device"``.
    mode: str = "device"
    #: host mode only: call cudaThreadSynchronize() between launches.
    explicit: bool = False
    #: registered name of the strategy to degrade to when this barrier
    #: repeatedly times out (or its grid is rejected).  ``None`` means
    #: "use the mode default": device barriers fall back to the host-side
    #: barrier (paper §4.1 — the kernel boundary always synchronizes, so
    #: it can never deadlock); host barriers have nothing safer to
    #: fall back to.
    fallback: "str | None" = None

    # -- device-mode API ------------------------------------------------------

    def prepare(self, device: "Device", num_blocks: int) -> None:
        """Allocate device state for a grid of ``num_blocks`` blocks."""
        raise NotImplementedError(f"{self.name} is a host-side strategy")

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        """The device barrier; called by every block, once per round."""
        raise NotImplementedError(f"{self.name} is a host-side strategy")

    def instrumented_barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        """:meth:`barrier` bracketed by sanitizer notifications.

        Every registered probe on the device sees this block *enter* the
        round's barrier before the protocol runs and *exit* it after —
        the per-strategy instrumentation point the barrier sanitizer
        (:mod:`repro.sanitize`) derives divergence, premature-release
        and stuck-round findings from.  With no probes registered this
        is exactly :meth:`barrier`: enter/exit dispatch is skipped, so
        measured runs pay nothing.

        This is also the ``hang`` fault's injection point
        (:mod:`repro.faults`): a hung block parks *before* the enter
        notification, so the probe sees exactly what hardware would —
        every other block stuck inside the round, the hung one absent.
        """
        faults = ctx.device.faults
        if faults is not None and faults.should_hang(ctx.block_id, round_idx):
            yield from _hang_forever(ctx, self.name, round_idx)
        probes = ctx.device.probes
        for probe in probes:
            probe.on_barrier_enter(ctx, self, round_idx)
        yield from self.barrier(ctx, round_idx)
        for probe in probes:
            probe.on_barrier_exit(ctx, self, round_idx)

    def fallback_strategy(self) -> "str | None":
        """Name of the barrier to degrade to, or ``None`` (no fallback).

        Device-side barriers degrade to ``cpu-implicit`` by default:
        relaunching per round is slower but structurally immune to the
        spin-barrier failure modes (a block that dies takes one kernel
        down, not the grid's liveness).  Override via the
        :attr:`fallback` class attribute.
        """
        if self.fallback is not None:
            return self.fallback
        return "cpu-implicit" if self.mode == "device" else None

    def shared_mem_request(self, config: "DeviceConfig") -> int:
        """Shared memory per block to request at launch.

        Resolved through the device topology: under exclusive
        co-residency device barriers claim the whole SM (paper §5) so
        occupancy is one block per SM; under cooperative co-residency
        they claim nothing.  Host strategies claim nothing either way.
        """
        if self.mode == "device":
            return config.topology.shared_mem_claim(config)
        return 0

    def max_blocks(self, config: "DeviceConfig") -> int:
        """Largest grid this strategy can synchronize on ``config``.

        Resolved through the device topology: one block per SM under
        exclusive co-residency (the paper's bound), up to the per-SM
        block cap under cooperative scheduling (the runner additionally
        validates against the launched shape's actual occupancy).
        """
        if self.mode == "device":
            return config.topology.max_co_resident_blocks(config)
        # Host barriers restart the grid each round, so any size works.
        return 2**31 - 1

    def validate_grid(self, config: "DeviceConfig", num_blocks: int) -> None:
        """Raise :class:`~repro.errors.OccupancyError` on unsafe grids."""
        if num_blocks < 1:
            raise ConfigError(f"num_blocks must be >= 1, got {num_blocks}")
        limit = self.max_blocks(config)
        if num_blocks > limit:
            raise OccupancyError(
                f"{self.name}: {num_blocks} blocks exceed the "
                f"{limit}-block co-residency limit; a device-side barrier "
                "would deadlock (non-preemptive blocks, paper §5)"
            )

    def describe(self) -> str:
        """One-line human description (reports, CLI)."""
        return f"{self.name} ({self.mode}-side barrier)"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: Dict[str, Callable[[], SyncStrategy]] = {}


def register_strategy(name: str, factory: Callable[[], SyncStrategy]) -> None:
    """Register a strategy factory under ``name`` (overwrites allowed)."""
    _REGISTRY[name] = factory


def get_strategy(name: str) -> SyncStrategy:
    """Instantiate a registered strategy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown strategy {name!r}; known: {', '.join(strategy_names())}"
        ) from None
    return factory()


def strategy_names() -> List[str]:
    """All registered strategy names, sorted."""
    return sorted(_REGISTRY)
