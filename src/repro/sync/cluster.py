"""Hierarchical tree-over-clusters barrier for clustered topologies.

The many-core cluster machines (arXiv 2307.10248 — 1024 RISC-V cores in
clusters with cheap local synchronization and an expensive global
interconnect) want a barrier shaped like the hardware: synchronize
*locally* first, send one representative per cluster group across the
interconnect, then release locally.  This strategy does exactly that on
top of the device topology (:mod:`repro.gpu.topology`):

1. **Local phase** — every block atomically increments its domain's
   arrival counter, which is *homed in that domain* so the add is cheap.
2. **Global phase** — each domain's representative (its first block)
   waits for its domain to fill, then increments one global counter;
   only these ``num_domains`` arrivals cross the interconnect.
3. **Release** — once the global counter shows every domain arrived,
   each representative stores the round number into its domain's local
   release flag; its blocks observe the store locally.

On a single-domain topology the tree degenerates to one local group plus
a trivial global phase — correct, just not the barrier you'd choose
(use ``gpu-simple``/``gpu-tree-*`` there).  All counters accumulate
monotonically across rounds (goal ``= (round+1) × size``), the same
reset-free idiom as :class:`~repro.sync.gpu_simple.GpuSimpleSync`, so
rounds can never observe each other's state.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, Generator, List, TYPE_CHECKING

import numpy as np

from repro.errors import SyncProtocolError
from repro.simcore.effects import WaitSpec
from repro.sync.base import SyncStrategy, register_strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx
    from repro.gpu.device import Device
    from repro.gpu.memory import GlobalArray

__all__ = ["GpuClusterTreeSync"]

_INSTANCES = count()


class GpuClusterTreeSync(SyncStrategy):
    """Local arrive → one crossing per domain → local release."""

    name = "gpu-cluster-tree"
    mode = "device"
    #: degrade target when the barrier repeatedly stalls (resilient runtime).
    fallback = "cpu-implicit"

    def __init__(self) -> None:
        self._uid = next(_INSTANCES)
        self._num_blocks = 0
        #: occupied domain → sorted member block ids.
        self._members: Dict[int, List[int]] = {}
        #: occupied domain → locally-homed arrival counter.
        self._arrive: Dict[int, "GlobalArray"] = {}
        #: occupied domain → locally-homed release flag.
        self._release: Dict[int, "GlobalArray"] = {}
        self._global: "GlobalArray | None" = None

    # -- setup ---------------------------------------------------------------

    def prepare(self, device: "Device", num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)
        self._num_blocks = num_blocks
        topology = device.config.topology
        self._members = topology.members_by_domain(num_blocks)
        self._arrive = {}
        self._release = {}
        for domain in self._members:
            self._arrive[domain] = device.memory.alloc(
                f"cluster_arrive#{self._uid}_d{domain}",
                1,
                dtype=np.int64,
                reuse=True,
                home_domain=domain,
            )
            self._release[domain] = device.memory.alloc(
                f"cluster_release#{self._uid}_d{domain}",
                1,
                dtype=np.int64,
                reuse=True,
                home_domain=domain,
            )
        self._global = device.memory.alloc(
            f"cluster_global#{self._uid}",
            1,
            dtype=np.int64,
            reuse=True,
            home_domain=min(self._members),
        )

    # -- the barrier -----------------------------------------------------------

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        if self._global is None:
            raise SyncProtocolError(f"{self.name} barrier used before prepare()")
        if ctx.num_blocks != self._num_blocks:
            raise SyncProtocolError(
                f"{self.name} prepared for {self._num_blocks} blocks, "
                f"called with {ctx.num_blocks}"
            )
        start = ctx.now
        timings = ctx.timings
        domain = ctx.domain
        members = self._members[domain]
        arrive = self._arrive[domain]
        release = self._release[domain]

        # Two tree levels of bookkeeping: domain-id arithmetic plus the
        # representative branch (same accounting as GpuTreeSync).
        yield from ctx.compute(
            2 * timings.tree_level_overhead_ns, phase="sync-overhead"
        )

        # Local phase: arrive at the domain's own counter (cheap — the
        # counter is homed here, so no interconnect crossing).
        yield from ctx.atomic_add(arrive, 0, 1)

        if ctx.block_id == members[0]:
            # Representative: wait for the local group, carry one arrival
            # across the interconnect, wait for the other domains, then
            # release the local group.
            local_goal = (round_idx + 1) * len(members)
            yield from ctx.spin_until(
                arrive,
                lambda a=arrive, t=local_goal: bool(a.data[0] >= t),
                f"domain {domain} full (round {round_idx})",
                spec=WaitSpec(local_goal, lo=0),
            )
            glob = self._global
            yield from ctx.atomic_add(glob, 0, 1)
            global_goal = (round_idx + 1) * len(self._members)
            yield from ctx.spin_until(
                glob,
                lambda g=glob, t=global_goal: bool(g.data[0] >= t),
                f"all domains arrived (round {round_idx})",
                spec=WaitSpec(global_goal, lo=0),
            )
            yield from ctx.gwrite(release, 0, round_idx + 1)
        else:
            # Non-representative: the release flag is local, and it only
            # ever moves forward — a late spinner sees a value >= its
            # round and falls straight through.
            yield from ctx.spin_until(
                release,
                lambda r=release, t=round_idx + 1: bool(r.data[0] >= t),
                f"domain {domain} release (round {round_idx})",
                spec=WaitSpec(round_idx + 1, lo=0),
            )
        yield from ctx.syncthreads()
        ctx.record("sync", start, round=round_idx, strategy=self.name)


register_strategy("gpu-cluster-tree", GpuClusterTreeSync)
