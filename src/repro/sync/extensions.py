"""Extension barriers beyond the paper's three proposals.

The paper's related-work section (§3) points at the classic
shared-memory barrier literature [8, 11, 17] but only adapts the
centralized-counter idea. Two more of those classics are implemented
here on the same device model, both safe under CUDA's non-preemptive
blocks because they never require a waiting block to yield:

* :class:`GpuSenseReversalSync` (``gpu-sense-reversal``) — the textbook
  centralized sense-reversing barrier: an atomic arrival counter whose
  *last* arriver resets the count and publishes a new epoch ("flips the
  sense"); everyone else spins on the epoch word. Structurally the
  paper's GPU simple synchronization is this barrier with the
  reset-and-flip replaced by an accumulating goal value — comparing the
  two quantifies what that §5.1 optimization buys.
* :class:`GpuDisseminationSync` (``gpu-dissemination``) — the
  Hensgen/Finney/Manber dissemination barrier: ``ceil(log2 N)`` rounds
  in which block ``i`` signals block ``(i + 2^k) mod N`` and waits for
  block ``(i - 2^k) mod N``. No atomics, no central hot spot, no
  designated checking block; depth O(log N) instead of the lock-free
  barrier's O(1)-with-a-coordinator. This is the shape later grid-sync
  implementations (and the cooperative-groups literature) converged on
  for large block counts.

Analytic costs (same style as Eqs. 6–9) live in
:func:`sense_reversal_cost` and :func:`dissemination_cost`;
``benchmarks/bench_extensions.py`` compares all five device barriers.
"""

from __future__ import annotations

import math
from itertools import count
from typing import Any, Generator, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import SyncProtocolError
from repro.model.calibration import CalibratedTimings, default_timings
from repro.simcore.effects import WaitSpec
from repro.sync.base import SyncStrategy, register_strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx
    from repro.gpu.device import Device
    from repro.gpu.memory import GlobalArray

__all__ = [
    "GpuDisseminationSync",
    "GpuSenseReversalSync",
    "dissemination_cost",
    "sense_reversal_cost",
]

_INSTANCES = count()


def sense_reversal_cost(
    num_blocks: int, timings: Optional[CalibratedTimings] = None
) -> int:
    """Analytic cost of the centralized sense-reversing barrier.

    ``N·t_a`` serialized arrivals, then the last arriver's two stores
    (counter reset, then the sense flip — ordered, so both are exposed),
    then one observation and the closing ``__syncthreads()`` — i.e. the
    paper's Eq. 6 plus two global writes, which is exactly what the
    §5.1 goal-accumulation optimization saves.
    """
    t = timings or default_timings()
    return (
        num_blocks * t.atomic_ns
        + 2 * t.global_write_ns
        + t.spin_read_ns
        + t.syncthreads_ns
    )


def dissemination_cost(
    num_blocks: int, timings: Optional[CalibratedTimings] = None
) -> int:
    """Analytic cost of the dissemination barrier.

    ``ceil(log2 N)`` rounds, each a remote store plus one observation of
    the incoming flag; all blocks proceed in lock-step so the critical
    path is the per-round cost times the round count, plus the closing
    ``__syncthreads()``.
    """
    t = timings or default_timings()
    rounds = max(1, math.ceil(math.log2(num_blocks))) if num_blocks > 1 else 0
    return rounds * (t.global_write_ns + t.spin_read_ns) + t.syncthreads_ns


class GpuSenseReversalSync(SyncStrategy):
    """Centralized sense-reversing barrier (classic, for comparison)."""

    name = "gpu-sense-reversal"
    mode = "device"

    def __init__(self) -> None:
        self._uid = next(_INSTANCES)
        self._num_blocks = 0
        self._count: Optional["GlobalArray"] = None
        self._sense: Optional["GlobalArray"] = None

    def prepare(self, device: "Device", num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)
        self._num_blocks = num_blocks
        self._count = device.memory.alloc(
            f"sr_count#{self._uid}", 1, dtype=np.int64, reuse=True
        )
        self._sense = device.memory.alloc(
            f"sr_sense#{self._uid}", 1, dtype=np.int64, reuse=True
        )

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        if self._count is None or self._sense is None:
            raise SyncProtocolError(
                "gpu-sense-reversal barrier used before prepare()"
            )
        if ctx.num_blocks != self._num_blocks:
            raise SyncProtocolError(
                f"gpu-sense-reversal prepared for {self._num_blocks} blocks, "
                f"called with {ctx.num_blocks}"
            )
        start = ctx.now
        n = ctx.num_blocks
        epoch = round_idx + 1
        old = yield from ctx.atomic_add(self._count, 0, 1)
        if old == n - 1:
            # Last arriver: reset the counter for the next epoch, then
            # publish the new sense. The reset must land before the
            # sense flip so no block of the next epoch races the counter.
            # Sense reversal *is* the counter-reset design; the sense
            # flip (not an accumulating goalVal) closes the race SC005
            # warns about, so the reset is deliberate here.
            yield from ctx.gwrite(self._count, 0, 0)  # repro: noqa SC005
            yield from ctx.gwrite(self._sense, 0, epoch)
        else:
            yield from ctx.spin_until(
                self._sense,
                lambda s=self._sense, e=epoch: s.data[0] >= e,
                f"sense epoch {epoch}", spec=WaitSpec(epoch, lo=0),
            )
        yield from ctx.syncthreads()
        ctx.record("sync", start, round=round_idx, strategy=self.name)


class GpuDisseminationSync(SyncStrategy):
    """Hensgen/Finney/Manber dissemination barrier on global memory."""

    name = "gpu-dissemination"
    mode = "device"

    def __init__(self) -> None:
        self._uid = next(_INSTANCES)
        self._num_blocks = 0
        self._rounds = 0
        self._flags: Optional["GlobalArray"] = None  # shape (rounds, N)

    def prepare(self, device: "Device", num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)
        self._num_blocks = num_blocks
        self._rounds = (
            max(1, math.ceil(math.log2(num_blocks))) if num_blocks > 1 else 0
        )
        shape = (max(1, self._rounds), num_blocks)
        self._flags = device.memory.alloc(
            f"dissem_flags#{self._uid}", shape, dtype=np.int64, reuse=True
        )

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        flags = self._flags
        if flags is None:
            raise SyncProtocolError(
                "gpu-dissemination barrier used before prepare()"
            )
        if ctx.num_blocks != self._num_blocks:
            raise SyncProtocolError(
                f"gpu-dissemination prepared for {self._num_blocks} blocks, "
                f"called with {ctx.num_blocks}"
            )
        start = ctx.now
        n = ctx.num_blocks
        bid = ctx.block_id
        epoch = round_idx + 1
        for k in range(self._rounds):
            partner = (bid + (1 << k)) % n
            # Epochs accumulate in the flag words, so no reset round is
            # needed and a fast block's next-epoch store can never be
            # confused with this epoch's.
            yield from ctx.gwrite(flags, (k, partner), epoch)
            yield from ctx.spin_until(
                flags,
                lambda f=flags, k=k, b=bid, e=epoch: f.data[k, b] >= e,
                f"dissemination round {k} epoch {epoch}",
            )
        yield from ctx.syncthreads()
        ctx.record("sync", start, round=round_idx, strategy=self.name)


register_strategy("gpu-sense-reversal", GpuSenseReversalSync)
register_strategy("gpu-dissemination", GpuDisseminationSync)
