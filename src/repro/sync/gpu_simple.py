"""GPU simple synchronization — one global mutex (paper §5.1, Fig. 6).

Each block's leading thread does ``atomicAdd(&g_mutex, 1)`` and spins
until the mutex reaches ``goalVal``; a closing ``__syncthreads()``
releases the block.  ``goalVal`` *accumulates* (``(round+1) · N``) rather
than resetting the mutex each round — the paper's §5.1 optimization.  The
optional ``reset_mutex=True`` variant implements the rejected
reset-per-round design for the ablation bench: it needs an extra store
and an extra spin phase per round, which is exactly the overhead the
paper avoided.

Cost: all N atomics hit one cell and serialize through its FIFO atomic
unit, so the barrier takes ``N·t_a + t_c`` (Eq. 6) — measured, not
scripted.

A note on the spin predicate: the paper's CUDA code tests
``g_mutex != goalVal``.  With an accumulating goal the mutex is
monotonic, so we test ``>=``; this is semantically identical when the
equality window is observed (the simulator evaluates spin predicates at
every store, mirroring the sub-microsecond poll granularity that makes
the ``!=`` test safe on hardware) and robust if it is not.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Generator, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import SyncProtocolError
from repro.simcore.effects import WaitSpec
from repro.sync.base import SyncStrategy, register_strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx
    from repro.gpu.device import Device
    from repro.gpu.memory import GlobalArray

__all__ = ["GpuSimpleSync"]

_INSTANCES = count()


class GpuSimpleSync(SyncStrategy):
    """The single-mutex device barrier."""

    name = "gpu-simple"
    mode = "device"
    #: degrade target when the barrier repeatedly stalls (resilient runtime).
    fallback = "cpu-implicit"

    def __init__(self, reset_mutex: bool = False) -> None:
        #: ablation flag: reset ``g_mutex`` each round instead of
        #: accumulating ``goalVal`` (paper §5.1 calls this less efficient).
        self.reset_mutex = reset_mutex
        if reset_mutex:
            self.name = "gpu-simple-reset"
        self._uid = next(_INSTANCES)
        self._mutex: Optional["GlobalArray"] = None
        self._num_blocks = 0

    def prepare(self, device: "Device", num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)
        self._num_blocks = num_blocks
        self._mutex = device.memory.alloc(
            f"g_mutex#{self._uid}", 1, dtype=np.int64, reuse=True
        )

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        mutex = self._mutex
        if mutex is None:
            raise SyncProtocolError("gpu-simple barrier used before prepare()")
        if ctx.num_blocks != self._num_blocks:
            raise SyncProtocolError(
                f"gpu-simple prepared for {self._num_blocks} blocks, "
                f"called with {ctx.num_blocks}"
            )
        start = ctx.now
        n = ctx.num_blocks
        if self.reset_mutex:
            yield from self._barrier_with_reset(ctx, mutex, n)
        else:
            goal = (round_idx + 1) * n
            yield from ctx.atomic_add(mutex, 0, 1)
            # The accumulating goal makes the mutex monotonic, so the wait
            # is declarable: cell 0 reaching `goal` (fast-engine indexable).
            yield from ctx.spin_until(
                mutex,
                lambda: mutex.data[0] >= goal,
                f"g_mutex>={goal}",
                spec=WaitSpec(goal, lo=0),
            )
        yield from ctx.syncthreads()
        ctx.record("sync", start, round=round_idx, strategy=self.name)

    def _barrier_with_reset(
        self, ctx: "BlockCtx", mutex: "GlobalArray", n: int
    ) -> Generator[Any, Any, Any]:
        """Ablation: constant goal, mutex reset by block 0 every round.

        All blocks must additionally observe the reset before leaving,
        otherwise a fast block's next-round ``atomicAdd`` could race the
        reset and lose an increment — the conditional-branching overhead
        the paper's accumulating design avoids.
        """
        yield from ctx.atomic_add(mutex, 0, 1)
        yield from ctx.spin_until(
            mutex, lambda: mutex.data[0] >= n or mutex.data[0] == 0,
            f"g_mutex=={n} (reset variant)",
        )
        if ctx.block_id == 0:
            # This variant deliberately measures the reset design the
            # paper rejects (§5.1); SC005's warning is the point.
            yield from ctx.gwrite(mutex, 0, 0)  # repro: noqa SC005
        yield from ctx.spin_until(
            mutex, lambda: mutex.data[0] == 0, "g_mutex reset observed"
        )


register_strategy("gpu-simple", GpuSimpleSync)
register_strategy("gpu-simple-reset", lambda: GpuSimpleSync(reset_mutex=True))
