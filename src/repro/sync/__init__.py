"""Inter-block barrier synchronization strategies — the paper's contribution.

Five strategies (paper §4–5), all behind one interface
(:class:`~repro.sync.base.SyncStrategy`):

====================  ======  =====================================================
name                  mode    mechanism
====================  ======  =====================================================
``cpu-explicit``      host    relaunch per round + ``cudaThreadSynchronize()``
``cpu-implicit``      host    relaunch per round, launches pipeline (baseline)
``gpu-simple``        device  one global mutex: ``atomicAdd`` + spin (Eq. 6)
``gpu-tree-2/3/n``    device  tree of mutexes, groups of ``ceil(sqrt(N))`` (Eq. 7/8)
``gpu-lockfree``      device  ``Arrayin``/``Arrayout``, no atomics (Eq. 9)
``null``              device  no barrier — compute-only timing runs (§7.3)
====================  ======  =====================================================

Device strategies enforce the paper's safety rule: at most one block per
SM (they request an SM's full shared memory and validate the grid against
``num_sms``), because blocks are non-preemptive and an over-subscribed
grid would spin forever (see ``examples/deadlock_demo.py``).
"""

from repro.sync.base import SyncStrategy, get_strategy, strategy_names
from repro.sync.cpu import CpuExplicitSync, CpuImplicitSync
from repro.sync.extensions import GpuDisseminationSync, GpuSenseReversalSync
from repro.sync.gpu_lockfree import GpuLockFreeSync
from repro.sync.gpu_simple import GpuSimpleSync
from repro.sync.gpu_tree import GpuTreeSync
from repro.sync.null import NullSync

__all__ = [
    "CpuExplicitSync",
    "CpuImplicitSync",
    "GpuDisseminationSync",
    "GpuLockFreeSync",
    "GpuSenseReversalSync",
    "GpuSimpleSync",
    "GpuTreeSync",
    "NullSync",
    "SyncStrategy",
    "get_strategy",
    "strategy_names",
]
