"""Inter-block barrier synchronization strategies — the paper's contribution.

Five strategies (paper §4–5), all behind one interface
(:class:`~repro.sync.base.SyncStrategy`):

====================  ======  =====================================================
name                  mode    mechanism
====================  ======  =====================================================
``cpu-explicit``      host    relaunch per round + ``cudaThreadSynchronize()``
``cpu-implicit``      host    relaunch per round, launches pipeline (baseline)
``gpu-simple``        device  one global mutex: ``atomicAdd`` + spin (Eq. 6)
``gpu-tree-2/3/n``    device  tree of mutexes, groups of ``ceil(sqrt(N))`` (Eq. 7/8)
``gpu-lockfree``      device  ``Arrayin``/``Arrayout``, no atomics (Eq. 9)
``gpu-cluster-tree``  device  local arrive per domain, one crossing per domain
``null``              device  no barrier — compute-only timing runs (§7.3)
====================  ======  =====================================================

Device strategies enforce the safety rule through the device topology
(:mod:`repro.gpu.topology`): under the paper's exclusive co-residency
they request an SM's full shared memory and validate the grid against
``num_sms`` (at most one block per SM), because blocks are
non-preemptive and an over-subscribed grid would spin forever (see
``examples/deadlock_demo.py``); under cooperative co-residency the grid
is validated against the launched shape's actual co-resident capacity.
"""

from repro.sync.base import SyncStrategy, get_strategy, strategy_names
from repro.sync.cluster import GpuClusterTreeSync
from repro.sync.cpu import CpuExplicitSync, CpuImplicitSync
from repro.sync.extensions import GpuDisseminationSync, GpuSenseReversalSync
from repro.sync.gpu_lockfree import GpuLockFreeSync
from repro.sync.gpu_simple import GpuSimpleSync
from repro.sync.gpu_tree import GpuTreeSync
from repro.sync.null import NullSync

__all__ = [
    "CpuExplicitSync",
    "CpuImplicitSync",
    "GpuClusterTreeSync",
    "GpuDisseminationSync",
    "GpuLockFreeSync",
    "GpuSenseReversalSync",
    "GpuSimpleSync",
    "GpuTreeSync",
    "NullSync",
    "SyncStrategy",
    "get_strategy",
    "strategy_names",
]
