"""GPU tree-based synchronization (paper §5.2, Fig. 8).

Blocks are partitioned into groups (2-level: ``m = ceil(sqrt(N))`` groups,
Eq. 8); each block atomically increments its *group's* mutex, the group's
representative (its first block) waits for the group to fill and then
increments the next level's mutex, and so on up to a single top-level
mutex that every block spins on.  Atomics to different group mutexes
proceed concurrently — that is the whole point — so the serialized chain
is ``n̂`` at each level plus the representatives at the top (Eq. 7).

The implementation is level-generic: ``levels=2`` and ``levels=3`` are
the paper's variants, and deeper trees (a future-work extension) come for
free.  The group plan is shared with the analytic model
(:func:`repro.model.barrier_costs.tree_level_plan`), so protocol and
prediction cannot drift apart.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, Generator, List, TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import SyncProtocolError
from repro.model.barrier_costs import tree_level_plan
from repro.simcore.effects import WaitSpec
from repro.sync.base import SyncStrategy, register_strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import BlockCtx
    from repro.gpu.device import Device
    from repro.gpu.memory import GlobalArray

__all__ = ["GpuTreeSync"]

_INSTANCES = count()


class GpuTreeSync(SyncStrategy):
    """The multi-level mutex-tree device barrier."""

    mode = "device"
    #: degrade target when the barrier repeatedly stalls (resilient runtime).
    fallback = "cpu-implicit"

    def __init__(self, levels: int = 2) -> None:
        if levels < 2:
            raise SyncProtocolError(f"tree barrier needs >= 2 levels, got {levels}")
        self.levels = levels
        self.name = f"gpu-tree-{levels}"
        self._uid = next(_INSTANCES)
        self._num_blocks = 0
        self._mutexes: List["GlobalArray"] = []
        #: per level: group sizes.
        self._plan: List[List[int]] = []
        #: per level: participant block id → (group index, is_representative).
        self._roles: List[Dict[int, Tuple[int, bool]]] = []
        #: participants (block ids) at each level.
        self._participants: List[List[int]] = []

    # -- setup ---------------------------------------------------------------

    def prepare(self, device: "Device", num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)
        self._num_blocks = num_blocks
        self._plan = tree_level_plan(num_blocks, self.levels)
        self._mutexes = []
        self._roles = []
        self._participants = []

        participants = list(range(num_blocks))
        for level, sizes in enumerate(self._plan):
            mutex = device.memory.alloc(
                f"tree_mutex#{self._uid}_L{level}", len(sizes), dtype=np.int64, reuse=True
            )
            self._mutexes.append(mutex)
            roles: Dict[int, Tuple[int, bool]] = {}
            reps: List[int] = []
            offset = 0
            for group, size in enumerate(sizes):
                members = participants[offset : offset + size]
                for i, block in enumerate(members):
                    roles[block] = (group, i == 0)
                reps.append(members[0])
                offset += size
            self._roles.append(roles)
            self._participants.append(participants)
            participants = reps

    # -- the barrier -----------------------------------------------------------

    def barrier(self, ctx: "BlockCtx", round_idx: int) -> Generator[Any, Any, Any]:
        if not self._mutexes:
            raise SyncProtocolError(f"{self.name} barrier used before prepare()")
        if ctx.num_blocks != self._num_blocks:
            raise SyncProtocolError(
                f"{self.name} prepared for {self._num_blocks} blocks, "
                f"called with {ctx.num_blocks}"
            )
        start = ctx.now
        bid = ctx.block_id
        timings = ctx.timings

        # Per-level bookkeeping overhead: group-id arithmetic and the extra
        # divergent branches every thread executes (the reason the paper's
        # tree threshold is "larger than 4", §5.2).
        yield from ctx.compute(
            len(self._plan) * timings.tree_level_overhead_ns,
            phase="sync-overhead",
        )

        # Climb: add to this level's group mutex; only representatives
        # continue upward after their group fills.
        for level, sizes in enumerate(self._plan):
            roles = self._roles[level]
            if bid not in roles:
                break
            group, is_rep = roles[bid]
            mutex = self._mutexes[level]
            yield from ctx.atomic_add(mutex, group, 1)
            is_top = level == len(self._plan) - 1
            if is_top:
                break
            if not is_rep:
                break
            goal = (round_idx + 1) * sizes[group]
            yield from ctx.spin_until(
                mutex,
                lambda m=mutex, g=group, t=goal: m.data[g] >= t,
                f"L{level} group {group} full (round {round_idx})",
                spec=WaitSpec(goal, lo=group),
            )

        # Everyone waits on the top-level mutex.
        top = self._mutexes[-1]
        top_goal = (round_idx + 1) * self._plan[-1][0]
        yield from ctx.spin_until(
            top,
            lambda m=top, t=top_goal: m.data[0] >= t,
            f"top mutex (round {round_idx})",
            spec=WaitSpec(top_goal, lo=0),
        )
        yield from ctx.syncthreads()
        ctx.record("sync", start, round=round_idx, strategy=self.name)


register_strategy("gpu-tree-2", lambda: GpuTreeSync(levels=2))
register_strategy("gpu-tree-3", lambda: GpuTreeSync(levels=3))
