"""CPU-side synchronization: the barrier is the kernel boundary (paper §4.1–4.2)."""

from __future__ import annotations

from repro.sync.base import SyncStrategy, register_strategy

__all__ = ["CpuExplicitSync", "CpuImplicitSync"]


class CpuExplicitSync(SyncStrategy):
    """Relaunch per round with ``cudaThreadSynchronize()`` in between.

    Every round pays the full, un-pipelined host launch latency on top of
    the kernel boundary (Eq. 3).  The paper notes this approach is never
    worth using in practice; it exists as the worst-case baseline.
    """

    name = "cpu-explicit"
    mode = "host"
    explicit = True


class CpuImplicitSync(SyncStrategy):
    """Relaunch per round with pipelined asynchronous launches.

    Launch ``i+1`` overlaps computation ``i`` (Eq. 4), so only the first
    launch is exposed.  This is the paper's baseline ("the current state
    of the art") against which the GPU barriers are measured.
    """

    name = "cpu-implicit"
    mode = "host"
    explicit = False


register_strategy("cpu-explicit", CpuExplicitSync)
register_strategy("cpu-implicit", CpuImplicitSync)
