"""Sensitivity of the paper's conclusions to the hardware constants.

Every crossover the paper reports (simple/implicit at 24 blocks,
tree/simple at 11) is a function of the timing constants — chiefly the
atomic service time.  This module computes, from the closed-form models,
where those crossovers move as a constant varies; the cross-generation
bench (`bench_generations.py`) shows the simulated version of the same
story, and `bench_sensitivity.py` tabulates it.

Example::

    >>> crossover_blocks(simple_vs_implicit, timings)   # ≈ 24 on GT200
    >>> sweep_parameter("atomic_ns", [80, 160, 240, 320])
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.model.barrier_costs import lockfree_cost, simple_cost, tree_cost
from repro.model.calibration import CalibratedTimings, default_timings

__all__ = [
    "crossover_blocks",
    "simple_vs_implicit",
    "tree2_vs_simple",
    "lockfree_vs_simple",
    "sweep_parameter",
]

#: A comparison: f(n, timings) -> True when the *second* strategy wins.
Comparison = Callable[[int, CalibratedTimings], bool]


def simple_vs_implicit(n: int, t: CalibratedTimings) -> bool:
    """True when CPU implicit beats GPU simple at ``n`` blocks."""
    return t.cpu_implicit_barrier_ns < simple_cost(n, t)


def tree2_vs_simple(n: int, t: CalibratedTimings) -> bool:
    """True when the 2-level tree beats GPU simple at ``n`` blocks."""
    return tree_cost(n, 2, t) < simple_cost(n, t)


def lockfree_vs_simple(n: int, t: CalibratedTimings) -> bool:
    """True when lock-free beats GPU simple at ``n`` blocks."""
    return lockfree_cost(n, t) < simple_cost(n, t)


def crossover_blocks(
    comparison: Comparison,
    timings: Optional[CalibratedTimings] = None,
    max_blocks: int = 1024,
) -> Optional[int]:
    """Smallest N at which the comparison flips (None if it never does).

    Assumes the comparison is monotone in N — true for every pair above,
    whose cost difference is monotone in N by construction.
    """
    t = timings or default_timings()
    if max_blocks < 1:
        raise ConfigError(f"max_blocks must be >= 1, got {max_blocks}")
    for n in range(1, max_blocks + 1):
        if comparison(n, t):
            return n
    return None


def sweep_parameter(
    param: str,
    values: Sequence[float],
    base: Optional[CalibratedTimings] = None,
    max_blocks: int = 1024,
) -> List[Dict[str, object]]:
    """Crossover positions as one timing constant sweeps through values.

    Returns one row per value: ``{param, simple_vs_implicit,
    tree2_vs_simple, lockfree_vs_simple}`` — each a block count or None.
    """
    base = base or default_timings()
    if not hasattr(base, param):
        raise ConfigError(f"unknown timing parameter {param!r}")
    rows: List[Dict[str, object]] = []
    for value in values:
        t = dataclasses.replace(base, **{param: int(value)})
        rows.append(
            {
                param: value,
                "simple_vs_implicit": crossover_blocks(
                    simple_vs_implicit, t, max_blocks
                ),
                "tree2_vs_simple": crossover_blocks(
                    tree2_vs_simple, t, max_blocks
                ),
                "lockfree_vs_simple": crossover_blocks(
                    lockfree_vs_simple, t, max_blocks
                ),
            }
        )
    return rows
