"""The paper's reported numbers, as structured data.

Single source of truth for "what the paper says", consumed by the
shape-assertion benches, EXPERIMENTS.md tooling and tests — so a claim
like "Table 1 says SWat spends 49.7 % synchronizing" exists in exactly
one place.  Values are transcribed from the IPDPS 2010 paper (preprint
2009/9/19); section references are attached to each item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "PaperClaim",
    "TABLE1_SYNC_PCT",
    "HEADLINE",
    "CROSSOVERS",
    "THREADS_PER_BLOCK",
    "GTX280",
    "claims",
]


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative claim and where the paper makes it."""

    value: float
    where: str
    note: str = ""


#: Table 1 — percent of kernel time spent on inter-block communication
#: under CPU implicit synchronization.
TABLE1_SYNC_PCT: Dict[str, PaperClaim] = {
    "fft": PaperClaim(19.6, "Table 1"),
    "swat": PaperClaim(49.7, "Table 1"),
    "bitonic": PaperClaim(59.6, "Table 1"),
}

#: Abstract / §7.2 headline results.
HEADLINE: Dict[str, PaperClaim] = {
    "micro_lockfree_vs_explicit": PaperClaim(
        7.8, "abstract", "micro-benchmark synchronization-time ratio"
    ),
    "micro_lockfree_vs_implicit": PaperClaim(
        3.7, "abstract", "micro-benchmark synchronization-time ratio"
    ),
    "fft_improvement_pct": PaperClaim(
        8.0, "abstract / §7.2", "kernel time, lock-free vs CPU implicit"
    ),
    "swat_improvement_pct": PaperClaim(24.0, "abstract / §7.2"),
    "bitonic_improvement_pct": PaperClaim(39.0, "abstract / §7.2"),
}

#: Block-count crossovers the paper reports (§5.4, §7.2).  Each entry is
#: (first N where the second strategy wins, where stated).
CROSSOVERS: Dict[Tuple[str, str], PaperClaim] = {
    ("cpu-implicit", "gpu-simple"): PaperClaim(
        24.0, "§5.4 obs. 3", "simple cheaper below 24 blocks, dearer at 24+"
    ),
    ("gpu-simple", "gpu-tree-2"): PaperClaim(
        11.0, "§5.4 obs. 4", "2-level tree wins from 11 blocks"
    ),
    ("gpu-tree-2", "gpu-tree-3"): PaperClaim(
        29.0, "§5.4 obs. 4", "stated threshold; not observed in our model"
    ),
    ("gpu-simple", "gpu-lockfree"): PaperClaim(
        4.0, "§5.4 obs. 5", "lock-free best for more than 3 blocks"
    ),
    ("gpu-simple", "gpu-tree-2-fig13-fft"): PaperClaim(
        24.0, "§7.2", "kernel-time crossover for FFT"
    ),
    ("gpu-simple", "gpu-tree-2-fig13-swat"): PaperClaim(20.0, "§7.2"),
    ("gpu-simple", "gpu-tree-2-fig13-bitonic"): PaperClaim(20.0, "§7.2"),
}

#: Threads per block used in the algorithm studies (§7.2).
THREADS_PER_BLOCK: Dict[str, int] = {
    "fft": 448,
    "swat": 256,
    "bitonic": 512,
}

#: The testbed GPU (§2, §7.1).
GTX280: Dict[str, PaperClaim] = {
    "num_sms": PaperClaim(30, "§2"),
    "sps": PaperClaim(240, "§2"),
    "clock_mhz": PaperClaim(1296, "§2"),
    "shared_mem_kb": PaperClaim(16, "§2"),
    "global_mem_gb": PaperClaim(1, "§2"),
    "bandwidth_gbps": PaperClaim(141.7, "§2"),
    "max_items_single_block_bitonic": PaperClaim(
        512, "§3", "CUDA SDK bitonic sort limit the paper motivates against"
    ),
}


def claims() -> Dict[str, Dict]:
    """Every claim group, keyed by name (for reports and docs tooling)."""
    return {
        "table1_sync_pct": TABLE1_SYNC_PCT,
        "headline": HEADLINE,
        "crossovers": CROSSOVERS,
        "threads_per_block": THREADS_PER_BLOCK,
        "gtx280": GTX280,
    }
