"""Inverse calibration: recover the model constants from measurements.

The forward direction (constants → predicted barrier cost) lives in
:mod:`repro.model.barrier_costs`.  This module closes the loop: given a
measured cost-vs-blocks sweep, least-squares-fit the model's parameters
— the atomic service time ``t_a`` and fixed tail ``t_c`` of Eq. 6, or
the constant of Eq. 9 — the way one would characterize an *unknown* GPU
from micro-benchmark data.  On the simulator the fits recover the
calibration exactly (a strong end-to-end consistency check, asserted in
``tests/model/test_fit.py``); on real hardware they would produce that
hardware's constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = ["LinearFit", "fit_constant", "fit_simple", "characterize"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``cost = slope · N + intercept``."""

    slope: float
    intercept: float
    residual_rms: float

    def predict(self, num_blocks: float) -> float:
        """Evaluate the fitted line."""
        return self.slope * num_blocks + self.intercept


def _check(xs: Sequence[float], ys: Sequence[float], minimum: int) -> None:
    if len(xs) != len(ys):
        raise ConfigError(
            f"mismatched sweep: {len(xs)} block counts, {len(ys)} costs"
        )
    if len(xs) < minimum:
        raise ConfigError(f"need at least {minimum} points, got {len(xs)}")


def fit_simple(
    block_counts: Sequence[float], costs_ns: Sequence[float]
) -> LinearFit:
    """Fit Eq. 6's line: slope = ``t_a``, intercept = ``t_c``."""
    _check(block_counts, costs_ns, 2)
    x = np.asarray(block_counts, dtype=float)
    y = np.asarray(costs_ns, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    rms = float(np.sqrt(np.mean((slope * x + intercept - y) ** 2)))
    return LinearFit(float(slope), float(intercept), rms)


def fit_constant(costs_ns: Sequence[float]) -> LinearFit:
    """Fit Eq. 9's constant (slope pinned to zero)."""
    if len(costs_ns) < 1:
        raise ConfigError("need at least 1 point")
    y = np.asarray(costs_ns, dtype=float)
    c = float(y.mean())
    rms = float(np.sqrt(np.mean((y - c) ** 2)))
    return LinearFit(0.0, c, rms)


def characterize(
    sweeps: Dict[str, Dict[int, float]],
) -> Dict[str, LinearFit]:
    """Characterize a device from per-strategy cost sweeps.

    ``sweeps`` maps strategy name → {block count: per-round cost (ns)}.
    Linear strategies (``gpu-simple``, ``gpu-sense-reversal``) get a
    line fit; everything else gets a constant fit — crude for trees, but
    exactly what a black-box measurement campaign would start with.
    """
    out: Dict[str, LinearFit] = {}
    for strategy, points in sweeps.items():
        ns = sorted(points)
        costs = [points[n] for n in ns]
        if strategy in ("gpu-simple", "gpu-sense-reversal"):
            out[strategy] = fit_simple(ns, costs)
        else:
            out[strategy] = fit_constant(costs)
    return out
