"""Kernel execution-time models — Eqs. 1, 3, 4 and 5 of the paper.

Each function predicts total kernel execution time (ns) for ``M`` rounds
of computation separated by barriers, given per-round computation times
and a synchronization approach.  ``benchmarks/bench_models.py`` compares
these predictions to simulator measurements.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import ConfigError
from repro.model.calibration import CalibratedTimings, default_timings

__all__ = [
    "total_time",
    "cpu_explicit_time",
    "cpu_implicit_time",
    "gpu_sync_time",
]

Number = Union[int, float]


def _per_round(compute_ns: Union[Number, Sequence[Number]], rounds: int) -> list:
    """Normalize a scalar or per-round sequence of compute times."""
    if rounds < 1:
        raise ConfigError(f"rounds must be >= 1, got {rounds}")
    if isinstance(compute_ns, (int, float)):
        return [compute_ns] * rounds
    seq = list(compute_ns)
    if len(seq) != rounds:
        raise ConfigError(
            f"got {len(seq)} per-round compute times for {rounds} rounds"
        )
    return seq


def total_time(
    launch_ns: Sequence[Number],
    compute_ns: Sequence[Number],
    sync_ns: Sequence[Number],
) -> float:
    """Eq. 1: ``T = Σ_i (t_O(i) + t_C(i) + t_S(i))`` — the generic sum.

    All three sequences must have equal length ``M``.
    """
    if not (len(launch_ns) == len(compute_ns) == len(sync_ns)):
        raise ConfigError("launch/compute/sync sequences must have equal length")
    return float(sum(launch_ns) + sum(compute_ns) + sum(sync_ns))


def cpu_explicit_time(
    rounds: int,
    compute_ns: Union[Number, Sequence[Number]],
    timings: Optional[CalibratedTimings] = None,
) -> float:
    """Eq. 3: every round pays launch, compute and boundary serially."""
    t = timings or default_timings()
    per = _per_round(compute_ns, rounds)
    return float(
        sum(per)
        + rounds * (t.host_launch_ns + t.cpu_implicit_barrier_ns)
    )


def cpu_implicit_time(
    rounds: int,
    compute_ns: Union[Number, Sequence[Number]],
    timings: Optional[CalibratedTimings] = None,
) -> float:
    """Eq. 4: only the first launch is exposed; later launches pipeline.

    ``T = t_O(1) + Σ_i (t_C(i) + t_CIS(i))``.
    """
    t = timings or default_timings()
    per = _per_round(compute_ns, rounds)
    return float(
        t.host_launch_ns
        + sum(per)
        + rounds * t.cpu_implicit_barrier_ns
    )


def gpu_sync_time(
    rounds: int,
    compute_ns: Union[Number, Sequence[Number]],
    barrier_ns: Number,
    timings: Optional[CalibratedTimings] = None,
) -> float:
    """Eq. 5: one launch, then ``M`` rounds of compute + device barrier.

    ``T = t_O + Σ_i (t_C(i) + t_GS(i))``.  The single kernel still pays
    its setup/teardown once.
    """
    t = timings or default_timings()
    per = _per_round(compute_ns, rounds)
    return float(
        t.host_launch_ns
        + t.cpu_implicit_barrier_ns  # one kernel's setup + teardown
        + sum(per)
        + rounds * barrier_ns
    )
