"""Performance models from the paper (§4, §5).

* :mod:`repro.model.calibration` — the timing constants of the simulated
  GTX 280, with derivations from the paper's own measurements.
* :mod:`repro.model.kernel_time` — Eqs. 1, 3, 4, 5 (kernel execution time
  under each synchronization family).
* :mod:`repro.model.speedup` — Eq. 2 (Amdahl-style bound on kernel speedup
  from accelerating synchronization only).
* :mod:`repro.model.barrier_costs` — Eqs. 6, 7, 9 (analytic barrier costs)
  and Eq. 8 (optimal tree grouping).
* :mod:`repro.model.advisor` — strategy recommendation from the models
  (the paper's future-work item).
"""

from repro.model.barrier_costs import (
    lockfree_cost,
    simple_cost,
    tree_cost,
    tree_group_sizes,
    tree_num_groups,
)
from repro.model.calibration import CalibratedTimings, default_timings
from repro.model.kernel_time import (
    cpu_explicit_time,
    cpu_implicit_time,
    gpu_sync_time,
    total_time,
)
from repro.model.speedup import kernel_speedup, max_speedup, rho

__all__ = [
    "CalibratedTimings",
    "cpu_explicit_time",
    "cpu_implicit_time",
    "default_timings",
    "gpu_sync_time",
    "kernel_speedup",
    "lockfree_cost",
    "max_speedup",
    "rho",
    "simple_cost",
    "total_time",
    "tree_cost",
    "tree_group_sizes",
    "tree_num_groups",
]
