"""Strategy advisor — the paper's future-work item, built from its models.

The conclusion sketches "a general model to characterize algorithms'
parallelism properties, based on which better performance can be obtained".
This module realizes the obvious version of that: given an algorithm's
per-round computation time, its number of rounds and a block count, use
Eqs. 3–9 to predict the total kernel time under every synchronization
strategy and recommend the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.gpu.topology import Topology
from repro.model.barrier_costs import lockfree_cost, simple_cost, tree_cost
from repro.model.calibration import CalibratedTimings, default_timings
from repro.model.kernel_time import (
    cpu_explicit_time,
    cpu_implicit_time,
    gpu_sync_time,
)

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.gpu.config import DeviceConfig

__all__ = ["Recommendation", "predict_all", "recommend"]

Number = Union[int, float]


@dataclass(frozen=True)
class Recommendation:
    """Outcome of :func:`recommend`."""

    strategy: str  #: name of the predicted-fastest strategy
    predicted_ns: float  #: its predicted total time
    ranking: List[tuple]  #: all (strategy, predicted_ns) sorted ascending
    rho: float  #: compute fraction under the CPU-implicit baseline


def _resolve(
    timings: Optional[CalibratedTimings],
    config: Optional["DeviceConfig"],
) -> tuple:
    """(timings, topology) for a prediction — explicit args win."""
    if timings is None and config is not None:
        timings = config.timings
    topology: Optional[Topology] = config.topology if config else None
    return timings or default_timings(), topology


def predict_all(
    rounds: int,
    compute_ns: Union[Number, Sequence[Number]],
    num_blocks: int,
    timings: Optional[CalibratedTimings] = None,
    *,
    config: Optional["DeviceConfig"] = None,
) -> Dict[str, float]:
    """Predicted total time (ns) for every strategy at this configuration.

    ``config`` predicts for a concrete device: its calibrated timings
    (unless ``timings`` is given explicitly) *and* its topology, so
    multi-domain presets (``dual_gpu``, ``riscv_cluster_1024``) charge
    the interconnect crossings their barriers would really pay.
    """
    if num_blocks < 1:
        raise ConfigError(f"num_blocks must be >= 1, got {num_blocks}")
    t, topo = _resolve(timings, config)
    return {
        "cpu-explicit": cpu_explicit_time(rounds, compute_ns, t),
        "cpu-implicit": cpu_implicit_time(rounds, compute_ns, t),
        "gpu-simple": gpu_sync_time(
            rounds, compute_ns, simple_cost(num_blocks, t, topology=topo), t
        ),
        "gpu-tree-2": gpu_sync_time(
            rounds, compute_ns, tree_cost(num_blocks, 2, t, topology=topo), t
        ),
        "gpu-tree-3": gpu_sync_time(
            rounds, compute_ns, tree_cost(num_blocks, 3, t, topology=topo), t
        ),
        "gpu-lockfree": gpu_sync_time(
            rounds, compute_ns, lockfree_cost(num_blocks, t, topology=topo), t
        ),
    }


def recommend(
    rounds: int,
    compute_ns: Union[Number, Sequence[Number]],
    num_blocks: int,
    timings: Optional[CalibratedTimings] = None,
    *,
    config: Optional["DeviceConfig"] = None,
) -> Recommendation:
    """Recommend the predicted-fastest synchronization strategy.

    ``config`` resolves timings and topology from a concrete device,
    exactly as in :func:`predict_all`.
    """
    t, _ = _resolve(timings, config)
    predictions = predict_all(rounds, compute_ns, num_blocks, t, config=config)
    ranking = sorted(predictions.items(), key=lambda kv: kv[1])
    baseline = predictions["cpu-implicit"]
    total_compute = (
        compute_ns * rounds
        if isinstance(compute_ns, (int, float))
        else float(sum(compute_ns))
    )
    return Recommendation(
        strategy=ranking[0][0],
        predicted_ns=ranking[0][1],
        ranking=ranking,
        rho=total_compute / baseline,
    )
