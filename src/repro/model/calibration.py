"""Calibrated timing constants for the simulated GTX 280.

Every constant below is in **nanoseconds** and is derived from numbers the
paper itself reports, so the simulator's behaviour is anchored to the
paper's testbed rather than invented.  Derivations:

**CPU-side / per-kernel costs** (paper §5.4, Fig. 11):

* The micro-benchmark's computation takes ~5 ms per 10 000 rounds
  → **500 ns of computation per round**.
* CPU *implicit* synchronization costs ~60 ms per 10 000 rounds
  → **6 000 ns per kernel boundary**.  We model this as device-side
  per-kernel overhead (block dispatch at kernel start + drain/teardown at
  kernel end: ``KERNEL_SETUP_NS + KERNEL_TEARDOWN_NS = 6 000``) because it
  is paid even when launches are pipelined.
* The headline result says GPU lock-free is **7.8×** faster than CPU
  explicit and **3.7×** faster than CPU implicit.  With implicit at
  6 000 ns that puts lock-free at ~1 600 ns and explicit at ~12 500 ns per
  round; the explicit surplus (~6 500 ns) is the *unpipelined* host launch
  command, so **HOST_LAUNCH_NS = 6 500**.
* The asynchronous launch call itself occupies the host CPU briefly
  (driver work before the call returns); 2 000 ns keeps the host from
  ever being the pipeline bottleneck, matching Fig. 3's geometry.

**GPU barrier primitive costs** (paper §5.1–5.4, Fig. 11):

* GPU simple sync crosses CPU implicit between 23 and 24 blocks and is
  linear: ``N·t_a + t_c = 6 000`` near ``N ≈ 23.5``.  A GTX 280 global
  atomic costs roughly 300+ clocks at 1.296 GHz ≈ 240 ns, so
  **ATOMIC_NS = 240**; the residual fixed cost (one successful spin read
  + the closing ``__syncthreads()``) must then land in (240, 480) ns for
  the crossover to sit between 23 and 24, giving **SPIN_READ_NS = 200**
  and **SYNCTHREADS_NS = 150** (350 total: simple(23) = 5 870 < 6 000 <
  simple(24) = 6 110).
* GPU 2-level tree sync overtakes simple sync at 11 blocks.  Each tree
  level adds bookkeeping beyond the raw atomics (group-id computation, a
  second spin loop): with per-level overhead ``L``, the 10/11-block
  crossover requires ``260 < L < 380``; **TREE_LEVEL_OVERHEAD_NS = 320**.
* GPU lock-free sync is flat at ~1 600 ns.  Its critical path is
  store(Arrayin) → observe → __syncthreads → store(Arrayout) → observe →
  __syncthreads: ``300 + 200 + 150 + 300 + 200 + 150 + fixed``.  With
  **GLOBAL_WRITE_NS = 300** and **GLOBAL_READ_NS = 200** that is 1 300 ns;
  a **LOCKFREE_OVERHEAD_NS = 300** entry/bookkeeping term lands it at
  1 600 ns.

**Per-algorithm computation costs** (paper Table 1 and §7):

Per-item costs are chosen so that, with CPU implicit synchronization and
the default problem sizes, the share of time spent synchronizing matches
Table 1 (FFT 19.6 %, SWat 49.7 %, bitonic sort 59.6 %).  See
:mod:`repro.algorithms` for how items map to threads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CalibratedTimings",
    "default_timings",
    # raw constants (re-exported for documentation/tests)
    "HOST_LAUNCH_NS",
    "HOST_ASYNC_CALL_NS",
    "KERNEL_SETUP_NS",
    "KERNEL_TEARDOWN_NS",
    "ATOMIC_NS",
    "SPIN_READ_NS",
    "GLOBAL_READ_NS",
    "GLOBAL_WRITE_NS",
    "SYNCTHREADS_NS",
    "TREE_LEVEL_OVERHEAD_NS",
    "LOCKFREE_OVERHEAD_NS",
    "MICRO_ROUND_COMPUTE_NS",
    "MEMCPY_OVERHEAD_NS",
    "SHARED_ACCESS_NS",
]

#: Host→device launch command when it cannot be pipelined (CPU explicit).
HOST_LAUNCH_NS = 6_500
#: Host CPU time occupied by an asynchronous launch call before it returns.
HOST_ASYNC_CALL_NS = 2_000
#: Device-side block dispatch when a kernel starts.
KERNEL_SETUP_NS = 3_000
#: Device-side drain/teardown when a kernel ends.
KERNEL_TEARDOWN_NS = 3_000
#: Service time of one global-memory atomic operation (serialized per cell).
ATOMIC_NS = 240
#: Cost of the successful observation ending a spin loop.
SPIN_READ_NS = 200
#: Latency of an ordinary (non-spin) global-memory read.
GLOBAL_READ_NS = 200
#: Latency of a global-memory write becoming visible to other blocks.
GLOBAL_WRITE_NS = 300
#: Cost of one intra-block __syncthreads().
SYNCTHREADS_NS = 150
#: Extra bookkeeping per tree level (group-id math, extra spin loop).
TREE_LEVEL_OVERHEAD_NS = 320
#: Fixed entry/bookkeeping cost of the lock-free barrier.
LOCKFREE_OVERHEAD_NS = 300
#: Computation per micro-benchmark round (mean of two floats, weak scaled).
MICRO_ROUND_COMPUTE_NS = 500
#: Fixed driver overhead of one cudaMemcpy call (typical ~10 µs in the
#: CUDA 2.x era; the paper's measurements exclude transfers, so this only
#: feeds the staging API, not the reproduced figures).
MEMCPY_OVERHEAD_NS = 10_000
#: One shared-memory transaction (a few cycles, bank-conflict-free —
#: roughly an order of magnitude below a global read, paper §2).
SHARED_ACCESS_NS = 30


@dataclass(frozen=True)
class CalibratedTimings:
    """The full timing parameter set consumed by the device model.

    All fields are nanoseconds.  Instances are immutable; use
    :func:`dataclasses.replace` to derive variants (the ablation benches
    do this, e.g. zeroing pipelining or widening the atomic unit).
    """

    host_launch_ns: int = HOST_LAUNCH_NS
    host_async_call_ns: int = HOST_ASYNC_CALL_NS
    kernel_setup_ns: int = KERNEL_SETUP_NS
    kernel_teardown_ns: int = KERNEL_TEARDOWN_NS
    atomic_ns: int = ATOMIC_NS
    spin_read_ns: int = SPIN_READ_NS
    global_read_ns: int = GLOBAL_READ_NS
    global_write_ns: int = GLOBAL_WRITE_NS
    syncthreads_ns: int = SYNCTHREADS_NS
    tree_level_overhead_ns: int = TREE_LEVEL_OVERHEAD_NS
    lockfree_overhead_ns: int = LOCKFREE_OVERHEAD_NS
    micro_round_compute_ns: int = MICRO_ROUND_COMPUTE_NS
    memcpy_overhead_ns: int = MEMCPY_OVERHEAD_NS
    shared_access_ns: int = SHARED_ACCESS_NS

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"timing {name} must be non-negative, got {value}")

    @property
    def cpu_implicit_barrier_ns(self) -> int:
        """Per-round cost of a CPU implicit barrier (kernel boundary)."""
        return self.kernel_setup_ns + self.kernel_teardown_ns

    @property
    def cpu_explicit_barrier_ns(self) -> int:
        """Per-round cost of a CPU explicit barrier (boundary + serial launch)."""
        return self.cpu_implicit_barrier_ns + self.host_launch_ns


def default_timings() -> CalibratedTimings:
    """The GTX 280 calibration described in this module's docstring."""
    return CalibratedTimings()
