"""Analytic barrier cost models — Eqs. 6, 7, 8 and 9 of the paper.

These are the *predictions*; the simulator produces *measurements*.
``benchmarks/bench_models.py`` and ``tests/model/test_barrier_costs.py``
check that the two agree (paper §5.4: "the time needed for each GPU
synchronization approach matches the time consumption model well").
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import ConfigError
from repro.model.calibration import CalibratedTimings, default_timings

__all__ = [
    "simple_cost",
    "tree_num_groups",
    "tree_group_sizes",
    "tree_level_plan",
    "tree_cost",
    "lockfree_cost",
]


def _check_blocks(num_blocks: int) -> None:
    if num_blocks < 1:
        raise ConfigError(f"num_blocks must be >= 1, got {num_blocks}")


def simple_cost(
    num_blocks: int, timings: Optional[CalibratedTimings] = None
) -> int:
    """Eq. 6: GPU simple synchronization cost ``t = N·t_a + t_c``.

    ``t_c`` here is the fixed tail: one successful spin observation plus
    the closing ``__syncthreads()``.
    """
    _check_blocks(num_blocks)
    t = timings or default_timings()
    return num_blocks * t.atomic_ns + t.spin_read_ns + t.syncthreads_ns


def tree_num_groups(num_participants: int, levels_remaining: int) -> int:
    """Number of groups at a tree level (Eq. 8 generalized).

    With ``k = levels_remaining`` levels left to resolve ``r``
    participants, a balanced tree uses ``ceil(r ** ((k-1)/k))`` groups.
    For ``k == 2`` this is exactly the paper's ``m = ceil(sqrt(N))``.
    """
    _check_blocks(num_participants)
    if levels_remaining < 2:
        raise ConfigError(
            f"levels_remaining must be >= 2, got {levels_remaining}"
        )
    k = levels_remaining
    m = math.ceil(num_participants ** ((k - 1) / k))
    return max(1, min(m, num_participants))


def tree_group_sizes(num_blocks: int, num_groups: int) -> List[int]:
    """The paper's §5.2 partition of ``N`` blocks into ``m`` groups.

    If ``m**2 == N`` every group holds ``m`` blocks; otherwise the first
    ``m-1`` groups hold ``floor(N/(m-1))`` and the last takes the rest.
    Degenerate partitions (an empty last group, or more groups than
    blocks) are repaired by dropping empty groups, which preserves the
    paper's sizes for every N that matters (1..30) while keeping the
    function total.
    """
    _check_blocks(num_blocks)
    if num_groups < 1:
        raise ConfigError(f"num_groups must be >= 1, got {num_groups}")
    if num_groups == 1:
        return [num_blocks]
    if num_groups >= num_blocks:
        return [1] * num_blocks
    if num_groups * num_groups == num_blocks:
        return [num_groups] * num_groups
    per = num_blocks // (num_groups - 1)
    sizes = [per] * (num_groups - 1)
    rest = num_blocks - per * (num_groups - 1)
    if rest > 0:
        sizes.append(rest)
    return sizes


def tree_level_plan(num_blocks: int, levels: int) -> List[List[int]]:
    """Group sizes for every tree level, bottom-up.

    Returns ``levels`` lists; list ``l`` holds the group sizes at level
    ``l``.  The last list is the single top-level group of
    representatives.  Example: ``tree_level_plan(11, 2)`` →
    ``[[3, 3, 3, 2], [4]]``.

    This plan is shared by the analytic model (:func:`tree_cost`) and the
    executable barrier (:class:`repro.sync.GpuTreeSync`), so the two can
    never drift apart structurally.
    """
    _check_blocks(num_blocks)
    if levels < 2:
        raise ConfigError(f"a tree barrier needs >= 2 levels, got {levels}")
    plan: List[List[int]] = []
    remaining = num_blocks
    for level in range(levels - 1):
        k = levels - level
        m = tree_num_groups(remaining, k)
        sizes = tree_group_sizes(remaining, m)
        plan.append(sizes)
        remaining = len(sizes)
    plan.append([remaining])
    return plan


def tree_cost(
    num_blocks: int,
    levels: int = 2,
    timings: Optional[CalibratedTimings] = None,
) -> int:
    """Eq. 7 generalized to ``levels`` levels.

    2-level: ``t = (n̂·t_a + t_c1) + (m·t_a + t_c2)`` where
    ``n̂ = max_i n_i``.  Each level contributes its largest group's
    serialized atomics plus a spin observation and the per-level
    bookkeeping overhead; the closing ``__syncthreads()`` is charged once.
    """
    t = timings or default_timings()
    plan = tree_level_plan(num_blocks, levels)
    total = 0
    for sizes in plan:
        n_hat = max(sizes)
        total += n_hat * t.atomic_ns + t.spin_read_ns + t.tree_level_overhead_ns
    total += t.syncthreads_ns
    return total


def lockfree_cost(
    num_blocks: int, timings: Optional[CalibratedTimings] = None
) -> int:
    """Eq. 9: ``t = t_SI + t_CI + t_Sync + t_SO + t_CO`` — independent of N.

    Critical path: store into ``Arrayin`` → checker observes →
    ``__syncthreads()`` in the checking block → store into ``Arrayout`` →
    leader observes → closing ``__syncthreads()`` — plus a fixed
    bookkeeping term.
    """
    _check_blocks(num_blocks)
    t = timings or default_timings()
    return (
        t.lockfree_overhead_ns
        + t.global_write_ns  # t_SI
        + t.spin_read_ns  # t_CI
        + t.syncthreads_ns  # t_Sync
        + t.global_write_ns  # t_SO
        + t.spin_read_ns  # t_CO
        + t.syncthreads_ns  # closing barrier in every block
    )
