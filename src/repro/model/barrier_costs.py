"""Analytic barrier cost models — Eqs. 6, 7, 8 and 9 of the paper.

These are the *predictions*; the simulator produces *measurements*.
``benchmarks/bench_models.py`` and ``tests/model/test_barrier_costs.py``
check that the two agree (paper §5.4: "the time needed for each GPU
synchronization approach matches the time consumption model well").

Each cost accepts an optional ``topology``
(:class:`~repro.gpu.topology.Topology`): on multi-domain devices, the
synchronization state (mutex, ``Arrayin``/``Arrayout``) is homed in
domain 0 and every remote arrival or observation pays the interconnect
crossing latency, per strategy's actual traffic pattern (see
``docs/tuning.md`` for the derivations).  A single-device topology (or
``None``) reproduces the paper's equations exactly.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import ConfigError
from repro.gpu.topology import Topology
from repro.model.calibration import CalibratedTimings, default_timings

__all__ = [
    "simple_cost",
    "tree_num_groups",
    "tree_group_sizes",
    "tree_level_plan",
    "tree_cost",
    "lockfree_cost",
]


def _check_blocks(num_blocks: int) -> None:
    if num_blocks < 1:
        raise ConfigError(f"num_blocks must be >= 1, got {num_blocks}")


def _remote_blocks(num_blocks: int, topology: Optional[Topology]) -> int:
    """Blocks homed outside domain 0 (where the sync state lives)."""
    if topology is None or topology.num_domains == 1:
        return 0
    return sum(
        1
        for block_id in range(num_blocks)
        if topology.domain_of(block_id, num_blocks) != 0
    )


def _occupied_domains(num_blocks: int, topology: Optional[Topology]) -> int:
    if topology is None or topology.num_domains == 1:
        return 1
    return len(topology.members_by_domain(num_blocks))


def simple_cost(
    num_blocks: int,
    timings: Optional[CalibratedTimings] = None,
    *,
    topology: Optional[Topology] = None,
) -> int:
    """Eq. 6: GPU simple synchronization cost ``t = N·t_a + t_c``.

    ``t_c`` here is the fixed tail: one successful spin observation plus
    the closing ``__syncthreads()``.

    On a multi-domain topology the mutex is homed in domain 0: every
    remote block's ``atomicAdd`` serializes through the interconnect
    (``remote · crossing_ns``) and, when any block is remote, the
    critical path ends with a remote spin observation (one more
    crossing).  The simple barrier degrades worst under partitioning —
    all of its traffic converges on one cell.
    """
    _check_blocks(num_blocks)
    t = timings or default_timings()
    cost = num_blocks * t.atomic_ns + t.spin_read_ns + t.syncthreads_ns
    remote = _remote_blocks(num_blocks, topology)
    if remote and topology is not None:
        cost += remote * topology.crossing_ns + topology.crossing_ns
    return cost


def tree_num_groups(num_participants: int, levels_remaining: int) -> int:
    """Number of groups at a tree level (Eq. 8 generalized).

    With ``k = levels_remaining`` levels left to resolve ``r``
    participants, a balanced tree uses ``ceil(r ** ((k-1)/k))`` groups.
    For ``k == 2`` this is exactly the paper's ``m = ceil(sqrt(N))``.
    """
    _check_blocks(num_participants)
    if levels_remaining < 2:
        raise ConfigError(
            f"levels_remaining must be >= 2, got {levels_remaining}"
        )
    k = levels_remaining
    m = math.ceil(num_participants ** ((k - 1) / k))
    return max(1, min(m, num_participants))


def tree_group_sizes(num_blocks: int, num_groups: int) -> List[int]:
    """The paper's §5.2 partition of ``N`` blocks into ``m`` groups.

    If ``m**2 == N`` every group holds ``m`` blocks; otherwise the first
    ``m-1`` groups hold ``floor(N/(m-1))`` and the last takes the rest.
    Degenerate partitions (an empty last group, or more groups than
    blocks) are repaired by dropping empty groups, which preserves the
    paper's sizes for every N that matters (1..30) while keeping the
    function total.
    """
    _check_blocks(num_blocks)
    if num_groups < 1:
        raise ConfigError(f"num_groups must be >= 1, got {num_groups}")
    if num_groups == 1:
        return [num_blocks]
    if num_groups >= num_blocks:
        return [1] * num_blocks
    if num_groups * num_groups == num_blocks:
        return [num_groups] * num_groups
    per = num_blocks // (num_groups - 1)
    sizes = [per] * (num_groups - 1)
    rest = num_blocks - per * (num_groups - 1)
    if rest > 0:
        sizes.append(rest)
    return sizes


def tree_level_plan(num_blocks: int, levels: int) -> List[List[int]]:
    """Group sizes for every tree level, bottom-up.

    Returns ``levels`` lists; list ``l`` holds the group sizes at level
    ``l``.  The last list is the single top-level group of
    representatives.  Example: ``tree_level_plan(11, 2)`` →
    ``[[3, 3, 3, 2], [4]]``.

    This plan is shared by the analytic model (:func:`tree_cost`) and the
    executable barrier (:class:`repro.sync.GpuTreeSync`), so the two can
    never drift apart structurally.
    """
    _check_blocks(num_blocks)
    if levels < 2:
        raise ConfigError(f"a tree barrier needs >= 2 levels, got {levels}")
    plan: List[List[int]] = []
    remaining = num_blocks
    for level in range(levels - 1):
        k = levels - level
        m = tree_num_groups(remaining, k)
        sizes = tree_group_sizes(remaining, m)
        plan.append(sizes)
        remaining = len(sizes)
    plan.append([remaining])
    return plan


def tree_cost(
    num_blocks: int,
    levels: int = 2,
    timings: Optional[CalibratedTimings] = None,
    *,
    topology: Optional[Topology] = None,
) -> int:
    """Eq. 7 generalized to ``levels`` levels.

    2-level: ``t = (n̂·t_a + t_c1) + (m·t_a + t_c2)`` where
    ``n̂ = max_i n_i``.  Each level contributes its largest group's
    serialized atomics plus a spin observation and the per-level
    bookkeeping overhead; the closing ``__syncthreads()`` is charged once.

    On a multi-domain topology groups align with domains, so the leaf
    levels stay interconnect-free; only the representatives cross: one
    arrival per occupied remote domain at the combining level, plus one
    remote observation of the top-level release.
    """
    t = timings or default_timings()
    plan = tree_level_plan(num_blocks, levels)
    total = 0
    for sizes in plan:
        n_hat = max(sizes)
        total += n_hat * t.atomic_ns + t.spin_read_ns + t.tree_level_overhead_ns
    total += t.syncthreads_ns
    occupied = _occupied_domains(num_blocks, topology)
    if occupied > 1 and topology is not None:
        total += (occupied - 1) * topology.crossing_ns + topology.crossing_ns
    return total


def lockfree_cost(
    num_blocks: int,
    timings: Optional[CalibratedTimings] = None,
    *,
    topology: Optional[Topology] = None,
) -> int:
    """Eq. 9: ``t = t_SI + t_CI + t_Sync + t_SO + t_CO`` — independent of N.

    Critical path: store into ``Arrayin`` → checker observes →
    ``__syncthreads()`` in the checking block → store into ``Arrayout`` →
    leader observes → closing ``__syncthreads()`` — plus a fixed
    bookkeeping term.

    On a multi-domain topology the arrays are homed with the checker in
    domain 0, so the critical path gains exactly two crossings when any
    block is remote: the slowest remote ``Arrayin`` store and that
    block's ``Arrayout`` observation.  Per-block stores are parallel
    (no ``N``-proportional term), which is why lock-free degrades most
    gracefully under partitioning.
    """
    _check_blocks(num_blocks)
    t = timings or default_timings()
    cost = (
        t.lockfree_overhead_ns
        + t.global_write_ns  # t_SI
        + t.spin_read_ns  # t_CI
        + t.syncthreads_ns  # t_Sync
        + t.global_write_ns  # t_SO
        + t.spin_read_ns  # t_CO
        + t.syncthreads_ns  # closing barrier in every block
    )
    if _remote_blocks(num_blocks, topology) and topology is not None:
        cost += 2 * topology.crossing_ns
    return cost
