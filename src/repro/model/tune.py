"""Workload tuning: cost-model-backed strategy advice (``repro tune``).

The advisor (:mod:`repro.model.advisor`) answers "which strategy is
fastest for this workload?"; this module turns the answer into an
*auditable report* against the strategy a user actually configured.
:func:`tune_workload` predicts every strategy's total time under a
preset's calibrated, topology-resolved timings and — when the
configured strategy diverges from the recommendation — emits an
``SC100 suboptimal-strategy`` advisory as a regular
:class:`~repro.staticcheck.report.StaticFinding`, so CI surfaces tuning
drift through the same finding pipeline as the linter.

With ``measure=True`` the report also validates the model against the
simulator: every modeled strategy runs the workload's microbenchmark
through the cached parallel executor alongside a ``null`` (compute-only)
baseline, and the measured per-round synchronization overheads
(``total - null``) ride along for comparison with the predictions —
the paper's §5.4 model-vs-measurement check, per workload.

Serialization uses the shared schema-3 envelope under the
``tune-report`` kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.gpu.presets import get_preset, resolve_timing_context
from repro.model.advisor import Recommendation, recommend
from repro.staticcheck.report import StaticFinding

__all__ = ["MODELED_STRATEGIES", "TuneReport", "tune_workload"]

#: every strategy the cost model predicts (Eqs. 3–9); all are
#: registered under the same names, so the measured sweep can run each.
MODELED_STRATEGIES = (
    "cpu-explicit",
    "cpu-implicit",
    "gpu-simple",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
)


@dataclass
class TuneReport:
    """One workload tuned against one device preset."""

    rounds: int
    compute_ns: float  #: per-round computation time the model assumes
    num_blocks: int
    preset: str
    configured: str  #: the strategy the user runs today
    recommended: str  #: the model's pick
    predictions: Dict[str, float]  #: strategy → predicted total ns
    rho: float  #: compute fraction under the CPU-implicit baseline
    #: the ``SC100`` advisory; ``None`` when the configuration is optimal.
    advisory: Optional[StaticFinding] = None
    #: measured sync overhead (ns, ``total - null``) per strategy, when
    #: the report was built with ``measure=True``.
    measured_sync_ns: Dict[str, int] = field(default_factory=dict)
    #: compute-only baseline total (ns) of the measured sweep.
    measured_null_ns: Optional[int] = None

    @property
    def optimal(self) -> bool:
        """True when the configured strategy is the model's pick."""
        return self.configured == self.recommended

    @property
    def predicted_speedup(self) -> float:
        """Predicted time ratio configured/recommended (1.0 = optimal)."""
        return self.predictions[self.configured] / self.predictions[self.recommended]

    @property
    def measured_best(self) -> Optional[str]:
        """Strategy with the lowest measured sync overhead, if measured."""
        if not self.measured_sync_ns:
            return None
        return min(self.measured_sync_ns, key=lambda s: self.measured_sync_ns[s])

    def exit_code(self, strict: bool = False) -> int:
        """CLI exit status — advisory by default, gating under strict."""
        if strict and not self.optimal:
            return 1
        return 0

    def ranking(self) -> List[Any]:
        """All ``(strategy, predicted_ns)`` sorted fastest-first."""
        return sorted(self.predictions.items(), key=lambda kv: kv[1])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rounds": self.rounds,
            "compute_ns": self.compute_ns,
            "num_blocks": self.num_blocks,
            "preset": self.preset,
            "configured": self.configured,
            "recommended": self.recommended,
            "optimal": self.optimal,
            "predicted_speedup": self.predicted_speedup,
            "rho": self.rho,
            "predictions": {
                s: self.predictions[s] for s in sorted(self.predictions)
            },
            "advisory": self.advisory.to_dict() if self.advisory else None,
            "measured_sync_ns": {
                s: self.measured_sync_ns[s]
                for s in sorted(self.measured_sync_ns)
            },
            "measured_null_ns": self.measured_null_ns,
            "measured_best": self.measured_best,
        }

    def to_json(self) -> str:
        """Deterministic JSON in the shared schema-3 envelope."""
        from repro.serialization import dump_result

        return dump_result("tune-report", self.to_dict())

    def render(self) -> str:
        """Deterministic plain-text report."""
        lines = [
            f"tune: preset={self.preset}, {self.rounds} round(s) x "
            f"{self.compute_ns:g} ns compute, {self.num_blocks} block(s) "
            f"(rho={self.rho:.3f})",
            f"  configured:  {self.configured} "
            f"(predicted {self.predictions[self.configured]:.0f} ns)",
            f"  recommended: {self.recommended} "
            f"(predicted {self.predictions[self.recommended]:.0f} ns)",
        ]
        for strategy, predicted in self.ranking():
            marker = " <- configured" if strategy == self.configured else ""
            lines.append(f"    {strategy:13s} {predicted:>14.0f} ns{marker}")
        if self.measured_sync_ns:
            lines.append(
                f"  measured sync overhead (null baseline "
                f"{self.measured_null_ns} ns):"
            )
            for strategy in sorted(
                self.measured_sync_ns, key=lambda s: self.measured_sync_ns[s]
            ):
                lines.append(
                    f"    {strategy:13s} "
                    f"{self.measured_sync_ns[strategy]:>14d} ns"
                )
        if self.advisory is not None:
            lines.append("  " + self.advisory.render())
        else:
            lines.append(
                "  configured strategy matches the cost-model recommendation"
            )
        return "\n".join(lines)


def _measure(
    rounds: int, num_blocks: int, preset: str, executor=None
) -> Dict[str, int]:
    """Measured totals: ``null`` baseline plus every modeled strategy.

    Mirrors the Fig. 11 sweep's payload shape so results share the
    executor's content-addressed cache with the benchmarks.
    """
    from repro.parallel import Executor
    from repro.serialization import device_config_to_dict

    device = device_config_to_dict(get_preset(preset))
    spec = {
        "name": "micro",
        "rounds": rounds,
        "num_blocks_hint": num_blocks,
        "threads_per_block": 64,
    }
    names = ["null", *MODELED_STRATEGIES]
    payloads = [
        {
            "algorithm": spec,
            "strategy": name,
            "num_blocks": num_blocks,
            "device": device,
            "threads_per_block": 64,
        }
        for name in names
    ]
    ex = executor if executor is not None else Executor(jobs=1)
    totals = ex.map("run-total", payloads)
    return dict(zip(names, (int(t) for t in totals)))


def tune_workload(
    rounds: int,
    compute_ns: float,
    num_blocks: int,
    configured: str,
    preset: str = "gtx280",
    *,
    measure: bool = False,
    measure_rounds: Optional[int] = None,
    executor=None,
) -> TuneReport:
    """Tune one workload: predictions, recommendation, SC100 advisory.

    ``configured`` is the strategy the workload runs today; it must be
    one of :data:`MODELED_STRATEGIES`.  ``measure=True`` additionally
    runs the workload's microbenchmark under every modeled strategy
    (``measure_rounds`` caps the simulated rounds; default
    ``min(rounds, 50)``) through ``executor`` — or a throwaway inline
    executor — and reports measured sync overheads next to the
    predictions.
    """
    if configured not in MODELED_STRATEGIES:
        raise ConfigError(
            f"cannot tune unmodeled strategy {configured!r}; "
            f"modeled: {', '.join(MODELED_STRATEGIES)}"
        )
    timings, _ = resolve_timing_context(preset)
    config = get_preset(preset)
    rec: Recommendation = recommend(
        rounds, compute_ns, num_blocks, timings, config=config
    )
    predictions = dict(rec.ranking)
    advisory: Optional[StaticFinding] = None
    if configured != rec.strategy:
        ratio = predictions[configured] / predictions[rec.strategy]
        advisory = StaticFinding(
            code="SC100",
            message=(
                f"configured strategy '{configured}' is predicted "
                f"{ratio:.2f}x slower than '{rec.strategy}' for this "
                f"workload on preset '{preset}'"
            ),
            file=f"<workload:{preset}>",
            line=0,
            unit=configured,
        )
    report = TuneReport(
        rounds=rounds,
        compute_ns=compute_ns,
        num_blocks=num_blocks,
        preset=preset,
        configured=configured,
        recommended=rec.strategy,
        predictions=predictions,
        rho=rec.rho,
        advisory=advisory,
    )
    if measure:
        capped = measure_rounds or min(rounds, 50)
        totals = _measure(capped, num_blocks, preset, executor)
        null = totals.pop("null")
        report.measured_null_ns = null
        report.measured_sync_ns = {
            name: total - null for name, total in totals.items()
        }
    return report
