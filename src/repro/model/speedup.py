"""Eq. 2: the Amdahl-style bound on kernel speedup from faster barriers.

``S_T = 1 / (ρ + (1 - ρ)/S_S)`` where ``ρ = t_C / T`` is the compute
fraction under the baseline (CPU implicit) synchronization and ``S_S`` is
the synchronization speedup.  The smaller ρ is, the more total speedup a
faster barrier buys — which is why SWat and bitonic sort (ρ ≈ 0.5) gain
24 % and 39 % while FFT (ρ > 0.8) gains only 8 %.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = ["rho", "kernel_speedup", "max_speedup"]


def rho(compute_ns: float, total_ns: float) -> float:
    """Compute fraction ``ρ = t_C / T`` of the baseline execution."""
    if total_ns <= 0:
        raise ConfigError(f"total time must be positive, got {total_ns}")
    if compute_ns < 0 or compute_ns > total_ns:
        raise ConfigError(
            f"compute time {compute_ns} must lie in [0, total={total_ns}]"
        )
    return compute_ns / total_ns


def kernel_speedup(rho_value: float, sync_speedup: float) -> float:
    """Eq. 2: ``S_T = 1 / (ρ + (1 - ρ)/S_S)``.

    ``sync_speedup`` may be ``math.inf`` (a free barrier), giving the
    Amdahl ceiling ``1/ρ``.
    """
    if not 0.0 <= rho_value <= 1.0:
        raise ConfigError(f"rho must lie in [0, 1], got {rho_value}")
    if sync_speedup <= 0:
        raise ConfigError(f"sync speedup must be positive, got {sync_speedup}")
    if math.isinf(sync_speedup):
        return max_speedup(rho_value)
    return 1.0 / (rho_value + (1.0 - rho_value) / sync_speedup)


def max_speedup(rho_value: float) -> float:
    """The ceiling ``S_S → ∞`` limit of Eq. 2: ``1/ρ`` (``inf`` at ρ=0)."""
    if not 0.0 <= rho_value <= 1.0:
        raise ConfigError(f"rho must lie in [0, 1], got {rho_value}")
    if rho_value == 0.0:
        return math.inf
    return 1.0 / rho_value
