"""A CUDA-flavored front-end, so the paper's pseudocode maps 1:1.

The paper presents its host code as CUDA C (Figs. 2 and 4).  This module
wraps the device model in API names a CUDA programmer already knows, so
the figures can be transliterated line by line (see
``examples/paper_figures.py``)::

    cuda = CudaSession()
    d_data = cuda.cuda_malloc("data", 1024)
    cuda.cuda_memcpy_h2d(d_data, host_data)

    for i in range(num_iterations):            # Fig. 2(b)
        cuda.launch_kernel(kernel_func, grid, block, args=dict(data=d_data))
    cuda.cuda_thread_synchronize()

A :class:`CudaSession` owns a device, a host and a *session process*;
each call drives the simulation forward just far enough to keep the
host's program order, so the API is imperative (no generators in user
code) while the simulation stays event-driven underneath.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.errors import LaunchError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.gpu.device import Device
from repro.gpu.host import Host, KernelHandle
from repro.gpu.kernel import DeviceProgram, KernelSpec
from repro.gpu.memory import GlobalArray
from repro.gpu.stream import Event, Stream

__all__ = ["CudaSession"]


class CudaSession:
    """An imperative, CUDA-named façade over one simulated device.

    Every method runs the underlying host-program step to completion in
    virtual time before returning, so consecutive calls behave like
    consecutive statements in a CUDA host program.  Asynchrony still
    works: ``launch_kernel`` returns as soon as the *call* would (the
    kernel keeps running), and ``cuda_thread_synchronize`` drains the
    device — the Fig. 2(a)/(b) distinction is therefore expressible
    exactly as in the paper.
    """

    def __init__(self, config: Optional[DeviceConfig] = None):
        self.device = Device(config or get_preset("gtx280"))
        self.host = Host(self.device)
        self._kernel_counter = 0

    # -- memory management ---------------------------------------------------

    def cuda_malloc(
        self, name: str, shape, dtype=np.float64
    ) -> GlobalArray:
        """``cudaMalloc``: allocate device global memory."""
        return self.device.memory.alloc(name, shape, dtype)

    def cuda_free(self, array: GlobalArray) -> None:
        """``cudaFree``."""
        self.device.memory.free(array.name)

    def cuda_memcpy_h2d(self, array: GlobalArray, data) -> None:
        """``cudaMemcpy(..., cudaMemcpyHostToDevice)`` — synchronous."""
        self._drive(self.host.memcpy_h2d(array, data))

    def cuda_memcpy_d2h(self, array: GlobalArray) -> np.ndarray:
        """``cudaMemcpy(..., cudaMemcpyDeviceToHost)`` — synchronous."""
        return self._drive(self.host.memcpy_d2h(array))

    # -- kernels ----------------------------------------------------------------

    def launch_kernel(
        self,
        program: DeviceProgram,
        grid_blocks: int,
        block_threads: int,
        shared_mem: int = 0,
        args: Optional[Dict[str, Any]] = None,
        stream: Optional[Stream] = None,
        name: Optional[str] = None,
    ) -> KernelHandle:
        """``kernel<<<grid, block, sharedMem, stream>>>(args...)``.

        Asynchronous, exactly like CUDA: returns once the launch call
        would, with the kernel still executing.
        """
        self._kernel_counter += 1
        spec = KernelSpec(
            name=name or f"{getattr(program, '__name__', 'kernel')}"
            f"#{self._kernel_counter}",
            program=program,
            grid_blocks=grid_blocks,
            block_threads=block_threads,
            shared_mem_per_block=shared_mem,
            params=dict(args or {}),
        )
        return self._drive(self.host.launch(spec, stream=stream))

    def cuda_thread_synchronize(self) -> None:
        """``cudaThreadSynchronize()``: block until the device drains."""
        self._drive(self.host.synchronize())

    def cuda_stream_create(self, name: Optional[str] = None) -> Stream:
        """``cudaStreamCreate``."""
        return Stream(name)

    def cuda_stream_synchronize(self, stream: Stream) -> None:
        """``cudaStreamSynchronize``."""
        self._drive(self.host.stream_synchronize(stream))

    # -- events ---------------------------------------------------------------

    def cuda_event_create(self, name: Optional[str] = None) -> Event:
        """``cudaEventCreate``."""
        return Event(name)

    def cuda_event_record(
        self, event: Event, stream: Optional[Stream] = None
    ) -> None:
        """``cudaEventRecord`` (asynchronous, like CUDA)."""
        self._drive(self.host.record_event(event, stream))

    def cuda_event_synchronize(self, event: Event) -> None:
        """``cudaEventSynchronize``."""
        self._drive(self.host.event_synchronize(event))

    def cuda_event_elapsed_time(self, start: Event, stop: Event) -> float:
        """``cudaEventElapsedTime`` — milliseconds, like CUDA."""
        return stop.elapsed_since(start) / 1e6

    # -- introspection -----------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current virtual time."""
        return self.device.engine.now

    def elapsed_ms(self) -> float:
        """Virtual milliseconds since session start."""
        return self.device.engine.now / 1e6

    # -- internals -------------------------------------------------------------

    def _drive(self, host_step) -> Any:
        """Run one host-program step to completion in virtual time.

        The step is spawned as a process; the engine runs until the step
        itself finishes (device work it merely *started* keeps running
        in the background, preserving launch asynchrony).
        """
        box: Dict[str, Any] = {}

        def wrapper():
            box["result"] = yield from host_step

        process = self.device.engine.spawn(wrapper(), "cuda-api-step")
        # Run until this step's process completes; background device
        # work stays queued in the engine.
        while process.alive:
            when = self.device.engine.next_event_time()
            if when is None:  # pragma: no cover - guard
                raise LaunchError("host step cannot complete (device idle)")
            self.device.engine.run(until=when)
        return box.get("result")
